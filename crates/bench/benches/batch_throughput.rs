//! Service-layer throughput: queries/sec for a 100-pattern `QuerySet`
//! under each scheduler, through the full serving stack (registry lookup,
//! pattern parse, prepared cache, admission control, worker pool).
//!
//! Alongside the criterion timings, a summary in the experiment-report
//! records format (one row per scheduler) is printed once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sge::prelude::*;
use sge_bench::report::Table;
use sge_graph::{generators, io::write_graph};
use sge_service::QueryOutcome;

/// 100 patterns cycling through a small shape zoo.
fn patterns() -> Vec<String> {
    let shapes = [
        generators::directed_cycle(3, 0),
        generators::directed_path(2, 0),
        generators::directed_path(3, 0),
        generators::undirected_cycle(4, 0),
        generators::clique(3, 0),
    ];
    (0..100)
        .map(|i| write_graph(&shapes[i % shapes.len()]))
        .collect()
}

fn build_service() -> Service {
    let service = Service::new(ServiceConfig {
        cache_capacity: 32,
        batch_workers: 4,
        max_in_flight: 8,
        ..ServiceConfig::default()
    });
    service.registry().insert("grid", generators::grid(6, 6));
    service
}

fn query_set(scheduler: Scheduler) -> QuerySet {
    let mut set = QuerySet::new("grid");
    for pattern in patterns() {
        set.push(QuerySpec::new(pattern).with_run(RunConfig::new(scheduler)));
    }
    set
}

fn schedulers() -> Vec<(&'static str, Scheduler)> {
    vec![
        ("sequential", Scheduler::Sequential),
        ("work-stealing-4", Scheduler::work_stealing(4)),
        ("rayon-4", Scheduler::Rayon { workers: 4 }),
    ]
}

fn bench_batch_throughput(c: &mut Criterion) {
    let service = build_service();

    // One-shot summary in the experiment records format.
    let mut table = Table::new(
        "batch_throughput (100-pattern QuerySet, grid-6x6 target)",
        &["scheduler", "queries/s", "matches", "cache hits", "wall s"],
    );
    for (name, scheduler) in schedulers() {
        let outcome = service.run_batch(&query_set(scheduler));
        assert_eq!(outcome.succeeded(), 100, "{name}");
        table.row(vec![
            name.to_string(),
            format!("{:.0}", outcome.queries_per_second()),
            outcome.total_matches().to_string(),
            outcome.cache_hits().to_string(),
            format!("{:.4}", outcome.wall_seconds),
        ]);
    }
    println!("{}", table.render());

    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    for (name, scheduler) in schedulers() {
        let set = query_set(scheduler);
        group.bench_with_input(BenchmarkId::from_parameter(name), &set, |b, set| {
            b.iter(|| {
                let outcome = service.run_batch(set);
                let matches: u64 = outcome
                    .results
                    .iter()
                    .filter_map(|r| r.as_ref().ok())
                    .map(|q: &QueryOutcome| q.outcome.matches)
                    .sum();
                std::hint::black_box(matches)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);

//! Criterion bench for Figs. 10/11/12: parallel RI-DS vs parallel RI-DS-SI-FC
//! vs sequential RI-DS on GRAEMLIN32-like and PPIS32-like instances, through
//! the unified engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sge::{Engine, RunConfig, Scheduler};
use sge_bench::experiments::collection;
use sge_bench::ExperimentConfig;
use sge_datasets::CollectionKind;
use sge_ri::Algorithm;

fn bench_fig10(c: &mut Criterion) {
    let config = ExperimentConfig::smoke();
    let mut group = c.benchmark_group("fig10_parallel_rids");
    group.sample_size(10);
    for kind in [CollectionKind::Graemlin32, CollectionKind::Ppis32] {
        let coll = collection(kind, &config);
        let instance = coll
            .instances
            .iter()
            .max_by_key(|i| i.pattern.num_edges())
            .expect("non-empty collection");
        let target = coll.target_of(instance).clone();
        let pattern = instance.pattern.clone();

        let rids = Engine::prepare(&pattern, &target, Algorithm::RiDs);
        let rids_si_fc = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);

        group.bench_with_input(
            BenchmarkId::new(kind.name(), "sequential_rids"),
            &(),
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(rids.run(&RunConfig::new(Scheduler::Sequential)).matches)
                })
            },
        );
        for (label, engine) in [
            ("parallel_rids", &rids),
            ("parallel_rids_si_fc", &rids_si_fc),
        ] {
            group.bench_with_input(BenchmarkId::new(kind.name(), label), &(), |b, _| {
                b.iter(|| {
                    let run = RunConfig::new(Scheduler::work_stealing(4));
                    std::hint::black_box(engine.run(&run).matches)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);

//! Criterion bench for Figs. 10/11/12: parallel RI-DS vs parallel RI-DS-SI-FC
//! vs sequential RI-DS on GRAEMLIN32-like and PPIS32-like instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sge_bench::experiments::collection;
use sge_bench::ExperimentConfig;
use sge_datasets::CollectionKind;
use sge_parallel::{enumerate_parallel, ParallelConfig};
use sge_ri::{enumerate, Algorithm, MatchConfig};

fn bench_fig10(c: &mut Criterion) {
    let config = ExperimentConfig::smoke();
    let mut group = c.benchmark_group("fig10_parallel_rids");
    group.sample_size(10);
    for kind in [CollectionKind::Graemlin32, CollectionKind::Ppis32] {
        let coll = collection(kind, &config);
        let instance = coll
            .instances
            .iter()
            .max_by_key(|i| i.pattern.num_edges())
            .expect("non-empty collection");
        let target = coll.target_of(instance).clone();
        let pattern = instance.pattern.clone();

        group.bench_with_input(
            BenchmarkId::new(kind.name(), "sequential_rids"),
            &(),
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        enumerate(&pattern, &target, &MatchConfig::new(Algorithm::RiDs)).matches,
                    )
                })
            },
        );
        for (label, algorithm) in [
            ("parallel_rids", Algorithm::RiDs),
            ("parallel_rids_si_fc", Algorithm::RiDsSiFc),
        ] {
            group.bench_with_input(BenchmarkId::new(kind.name(), label), &algorithm, |b, &algo| {
                b.iter(|| {
                    let cfg = ParallelConfig::new(algo).with_workers(4);
                    std::hint::black_box(enumerate_parallel(&pattern, &target, &cfg).matches)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);

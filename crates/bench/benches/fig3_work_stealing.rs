//! Criterion bench for Fig. 3: the paper's scheduler with and without work
//! stealing on a PPIS32-like instance.

use criterion::{criterion_group, criterion_main, Criterion};
use sge_bench::experiments::collection;
use sge_bench::ExperimentConfig;
use sge_datasets::CollectionKind;
use sge_parallel::{enumerate_parallel, ParallelConfig};
use sge_ri::Algorithm;

fn bench_fig3(c: &mut Criterion) {
    let config = ExperimentConfig::smoke();
    let coll = collection(CollectionKind::Ppis32, &config);
    let instance = coll
        .instances
        .iter()
        .max_by_key(|i| i.pattern.num_edges())
        .expect("non-empty collection");
    let target = coll.target_of(instance);

    let mut group = c.benchmark_group("fig3_work_stealing");
    group.sample_size(10);
    for (name, steal) in [("no_stealing", false), ("stealing", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = ParallelConfig::new(Algorithm::RiDs)
                    .with_workers(4)
                    .with_stealing(steal);
                std::hint::black_box(enumerate_parallel(&instance.pattern, target, &cfg).matches)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);

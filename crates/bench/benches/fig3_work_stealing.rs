//! Criterion bench for Fig. 3: the paper's scheduler with and without work
//! stealing on a PPIS32-like instance, through the unified engine.

use criterion::{criterion_group, criterion_main, Criterion};
use sge::{Engine, RunConfig, Scheduler};
use sge_bench::experiments::collection;
use sge_bench::ExperimentConfig;
use sge_datasets::CollectionKind;
use sge_ri::Algorithm;

fn bench_fig3(c: &mut Criterion) {
    let config = ExperimentConfig::smoke();
    let coll = collection(CollectionKind::Ppis32, &config);
    let instance = coll
        .instances
        .iter()
        .max_by_key(|i| i.pattern.num_edges())
        .expect("non-empty collection");
    let target = coll.target_of(instance);
    let engine = Engine::prepare(&instance.pattern, target, Algorithm::RiDs);

    let mut group = c.benchmark_group("fig3_work_stealing");
    group.sample_size(10);
    for (name, steal) in [("no_stealing", false), ("stealing", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let run = RunConfig::new(Scheduler::WorkStealing {
                    workers: 4,
                    task_group_size: 4,
                    stealing: steal,
                });
                std::hint::black_box(engine.run(&run).matches)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);

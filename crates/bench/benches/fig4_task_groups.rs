//! Criterion bench for Fig. 4: the task-group (coalescing) size sweep,
//! through the unified engine (one preparation, many group sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sge::{Engine, RunConfig, Scheduler};
use sge_bench::experiments::collection;
use sge_bench::ExperimentConfig;
use sge_datasets::CollectionKind;
use sge_ri::Algorithm;

fn bench_fig4(c: &mut Criterion) {
    let config = ExperimentConfig::smoke();
    let coll = collection(CollectionKind::Graemlin32, &config);
    let instance = coll
        .instances
        .iter()
        .max_by_key(|i| i.pattern.num_edges())
        .expect("non-empty collection");
    let target = coll.target_of(instance);
    let engine = Engine::prepare(&instance.pattern, target, Algorithm::RiDs);

    let mut group = c.benchmark_group("fig4_task_groups");
    group.sample_size(10);
    for group_size in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(group_size),
            &group_size,
            |b, &size| {
                b.iter(|| {
                    let run = RunConfig::new(Scheduler::WorkStealing {
                        workers: 4,
                        task_group_size: size,
                        stealing: true,
                    });
                    std::hint::black_box(engine.run(&run).matches)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);

//! Criterion bench for Figs. 5/6: sequential vs parallel vs rayon-style RI
//! on the largest (longest-running) PDBSv1-like instance, through the
//! unified engine.

use criterion::{criterion_group, criterion_main, Criterion};
use sge::{Engine, RunConfig, Scheduler};
use sge_bench::experiments::collection;
use sge_bench::ExperimentConfig;
use sge_datasets::CollectionKind;
use sge_ri::Algorithm;

fn bench_fig6(c: &mut Criterion) {
    let config = ExperimentConfig::smoke();
    let coll = collection(CollectionKind::PdbsV1, &config);
    let instance = coll
        .instances
        .iter()
        .max_by_key(|i| i.pattern.num_edges())
        .expect("non-empty collection");
    let target = coll.target_of(instance);
    let engine = Engine::prepare(&instance.pattern, target, Algorithm::Ri);

    let mut group = c.benchmark_group("fig6_long_instances");
    group.sample_size(10);
    for (name, scheduler) in [
        ("sequential_ri", Scheduler::Sequential),
        ("parallel_ri_4_workers", Scheduler::work_stealing(4)),
        ("rayon_style_ri_4_workers", Scheduler::Rayon { workers: 4 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(engine.run(&RunConfig::new(scheduler)).matches))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);

//! Criterion bench for Figs. 5/6: sequential vs parallel RI on the largest
//! (longest-running) PDBSv1-like instance.

use criterion::{criterion_group, criterion_main, Criterion};
use sge_bench::experiments::collection;
use sge_bench::ExperimentConfig;
use sge_datasets::CollectionKind;
use sge_parallel::{enumerate_parallel, ParallelConfig};
use sge_ri::{enumerate, Algorithm, MatchConfig};

fn bench_fig6(c: &mut Criterion) {
    let config = ExperimentConfig::smoke();
    let coll = collection(CollectionKind::PdbsV1, &config);
    let instance = coll
        .instances
        .iter()
        .max_by_key(|i| i.pattern.num_edges())
        .expect("non-empty collection");
    let target = coll.target_of(instance);

    let mut group = c.benchmark_group("fig6_long_instances");
    group.sample_size(10);
    group.bench_function("sequential_ri", |b| {
        b.iter(|| {
            std::hint::black_box(
                enumerate(&instance.pattern, target, &MatchConfig::new(Algorithm::Ri)).matches,
            )
        })
    });
    group.bench_function("parallel_ri_4_workers", |b| {
        b.iter(|| {
            let cfg = ParallelConfig::new(Algorithm::Ri).with_workers(4);
            std::hint::black_box(enumerate_parallel(&instance.pattern, target, &cfg).matches)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);

//! Criterion bench for Figs. 7/8/9: the sequential RI-DS variants (DS, SI,
//! SI-FC) on one instance per collection, through the unified engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sge::{Engine, RunConfig};
use sge_bench::experiments::collection;
use sge_bench::ExperimentConfig;
use sge_datasets::CollectionKind;
use sge_ri::Algorithm;

fn bench_fig7(c: &mut Criterion) {
    let config = ExperimentConfig::smoke();
    let mut group = c.benchmark_group("fig7_rids_variants");
    group.sample_size(10);
    for kind in CollectionKind::ALL {
        let coll = collection(kind, &config);
        let instance = coll
            .instances
            .iter()
            .max_by_key(|i| i.pattern.num_edges())
            .expect("non-empty collection");
        let target = coll.target_of(instance).clone();
        let pattern = instance.pattern.clone();
        for algorithm in [Algorithm::RiDs, Algorithm::RiDsSi, Algorithm::RiDsSiFc] {
            let engine = Engine::prepare(&pattern, &target, algorithm);
            group.bench_with_input(
                BenchmarkId::new(kind.name(), algorithm.name()),
                &algorithm,
                |b, _| b.iter(|| std::hint::black_box(engine.run(&RunConfig::default()).states)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);

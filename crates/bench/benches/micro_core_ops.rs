//! Micro-benchmarks of the core building blocks: the GreatestConstraintFirst
//! ordering, domain assignment (+ forward checking) and the VF2 baseline.
//! These are not tied to a specific figure; they guard the preprocessing costs
//! the paper reports as "negligible" (Fig. 9).

use criterion::{criterion_group, criterion_main, Criterion};
use sge_bench::experiments::collection;
use sge_bench::ExperimentConfig;
use sge_datasets::CollectionKind;
use sge_ri::{greatest_constraint_first, Domains};

fn bench_micro(c: &mut Criterion) {
    let config = ExperimentConfig::smoke();
    let coll = collection(CollectionKind::Graemlin32, &config);
    let instance = coll
        .instances
        .iter()
        .max_by_key(|i| i.pattern.num_edges())
        .expect("non-empty collection");
    let target = coll.target_of(instance).clone();
    let pattern = instance.pattern.clone();

    let mut group = c.benchmark_group("micro_core_ops");
    group.sample_size(20);

    group.bench_function("gcf_ordering", |b| {
        b.iter(|| std::hint::black_box(greatest_constraint_first(&pattern, None, false)))
    });

    group.bench_function("domain_assignment", |b| {
        b.iter(|| std::hint::black_box(Domains::compute(&pattern, &target)))
    });

    group.bench_function("forward_checking", |b| {
        let domains = Domains::compute(&pattern, &target);
        b.iter(|| {
            let mut d = domains.clone();
            std::hint::black_box(d.forward_check())
        })
    });

    group.bench_function("vf2_baseline", |b| {
        b.iter(|| std::hint::black_box(sge_vf2::enumerate_limited(&pattern, &target, Some(100))))
    });

    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);

//! Criterion bench for Table 1: generating the synthetic collections and
//! computing their statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use sge_bench::experiments::collection;
use sge_bench::ExperimentConfig;
use sge_datasets::CollectionKind;

fn bench_table1(c: &mut Criterion) {
    let config = ExperimentConfig::smoke();
    let mut group = c.benchmark_group("table1_collections");
    group.sample_size(10);
    for kind in CollectionKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let coll = collection(kind, &config);
                std::hint::black_box(coll.stats())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);

//! Criterion bench for Table 2: parallel RI on a PDBSv1-like instance across
//! worker counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sge_bench::experiments::collection;
use sge_bench::ExperimentConfig;
use sge_datasets::CollectionKind;
use sge_parallel::{enumerate_parallel, ParallelConfig};
use sge_ri::Algorithm;

fn bench_table2(c: &mut Criterion) {
    let config = ExperimentConfig::smoke();
    let coll = collection(CollectionKind::PdbsV1, &config);
    let instance = coll
        .instances
        .iter()
        .max_by_key(|i| i.pattern.num_edges())
        .expect("non-empty collection");
    let target = coll.target_of(instance);

    let mut group = c.benchmark_group("table2_parallel_ri");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let cfg = ParallelConfig::new(Algorithm::Ri).with_workers(w);
                std::hint::black_box(enumerate_parallel(&instance.pattern, target, &cfg).matches)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);

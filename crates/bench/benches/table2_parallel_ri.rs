//! Criterion bench for Table 2: parallel RI on a PDBSv1-like instance across
//! worker counts.  The instance is prepared once with [`Engine::prepare`];
//! the timed region is pure matching, as in the paper's speedup tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sge::{Engine, RunConfig, Scheduler};
use sge_bench::experiments::collection;
use sge_bench::ExperimentConfig;
use sge_datasets::CollectionKind;
use sge_ri::Algorithm;

fn bench_table2(c: &mut Criterion) {
    let config = ExperimentConfig::smoke();
    let coll = collection(CollectionKind::PdbsV1, &config);
    let instance = coll
        .instances
        .iter()
        .max_by_key(|i| i.pattern.num_edges())
        .expect("non-empty collection");
    let target = coll.target_of(instance);
    let engine = Engine::prepare(&instance.pattern, target, Algorithm::Ri);

    let mut group = c.benchmark_group("table2_parallel_ri");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let run = RunConfig::new(Scheduler::work_stealing(w));
                std::hint::black_box(engine.run(&run).matches)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);

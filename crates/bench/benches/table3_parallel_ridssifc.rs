//! Criterion bench for Table 3: parallel RI-DS-SI-FC across worker counts on
//! GRAEMLIN32-like and PPIS32-like instances, through the unified engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sge::{Engine, RunConfig, Scheduler};
use sge_bench::experiments::collection;
use sge_bench::ExperimentConfig;
use sge_datasets::CollectionKind;
use sge_ri::Algorithm;

fn bench_table3(c: &mut Criterion) {
    let config = ExperimentConfig::smoke();
    let mut group = c.benchmark_group("table3_parallel_ridssifc");
    group.sample_size(10);
    for kind in [CollectionKind::Graemlin32, CollectionKind::Ppis32] {
        let coll = collection(kind, &config);
        let instance = coll
            .instances
            .iter()
            .max_by_key(|i| i.pattern.num_edges())
            .expect("non-empty collection");
        let target = coll.target_of(instance).clone();
        let pattern = instance.pattern.clone();
        let engine = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);
        for workers in [1usize, 2, 4] {
            group.bench_with_input(BenchmarkId::new(kind.name(), workers), &workers, |b, &w| {
                b.iter(|| {
                    let run = RunConfig::new(Scheduler::work_stealing(w));
                    std::hint::black_box(engine.run(&run).matches)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);

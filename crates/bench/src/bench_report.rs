//! The machine-readable perf-trajectory report (`BENCH_pr7.json`).
//!
//! Criterion benches print human-oriented tables; CI and future PRs need a
//! stable, machine-readable record of where the hot path stands.  This module
//! runs a small set of *figures* — named workloads mirroring the criterion
//! benches — and emits one JSON document per run:
//!
//! ```json
//! {
//!   "schema": "sge-bench-report/v1",
//!   "pr": "pr3",
//!   "repeats": 5,
//!   "figures": {
//!     "<figure>": {
//!       "cases": [
//!         {
//!           "name": "<case>",
//!           "intersection_seconds": 0.0123,
//!           "single_parent_seconds": 0.0187,
//!           "speedup_vs_sequential": 1.7,
//!           "speedup_over_single_parent": 1.5,
//!           "observed_states_total": 123456,
//!           "steals_total": 42
//!         }
//!       ]
//!     }
//!   }
//! }
//! ```
//!
//! * `intersection_seconds` — median wall time of the case on the shipping
//!   intersection-based candidate path,
//! * `single_parent_seconds` — the same case on the legacy single-parent
//!   comparator ([`sge::ri::CandidateMode::SingleParent`]),
//! * `speedup_vs_sequential` — the figure's sequential intersection median
//!   divided by this case's intersection median,
//! * `speedup_over_single_parent` — `single_parent_seconds /
//!   intersection_seconds` for the same case,
//! * `observed_states_total` / `steals_total` — since PR 7: the consistency
//!   checks and successful steals a [`sge::obs::TraceSink`] records over one
//!   extra *untimed* instrumented pass of the case's intersection workload
//!   (the timed passes stay sink-free, preserving the zero-overhead
//!   contract).  States are schedule-invariant — identical across the
//!   scheduler cases of a figure — while steals depend on the scheduler, so
//!   the pair documents how much search each figure does and how much of it
//!   moved between workers.
//!
//! Since PR 4 the report also carries a `strategy_comparison` figure: the
//! same count-only workload enumerated once per ordering strategy
//! (`ri-greedy`, `least-frequent-label`, `degree-descending`), each case
//! reporting its median wall seconds, its speedup relative to the RI-greedy
//! baseline, and the cost model's total state estimate — so the planner's
//! predictions can be eyeballed against measured reality.
//!
//! Since PR 10 the report carries a `sharded_throughput` figure: the same
//! triangle-class query mix against a modular clique-community target through
//! the plain single-registry service and through the scatter-gather
//! coordinator at 1, 2 and 4 shards, plus the dense_target workload through
//! each backend as a no-regression guard on the identity partition.
//!
//! Future PRs append comparable records as `BENCH_pr<N>.json` with the same
//! schema string so the trajectory stays diffable.

use crate::experiments::collection;
use crate::report::Table;
use crate::ExperimentConfig;
use sge::obs::TraceSink;
use sge::prelude::*;
use sge::ri::CandidateMode;
use sge_datasets::CollectionKind;
use sge_graph::{generators, io::write_graph, Graph};
use sge_ri::Algorithm;
use sge_service::json::Json;
use sge_service::Coordinator;
use std::sync::Arc;
use std::time::Instant;

/// Figure names every report must contain; CI's `bench-smoke` job validates
/// the emitted document against this list.  (`adaptive_dispatch` is required
/// since PR 8; older committed records are grandfathered.)
pub const EXPECTED_FIGURES: [&str; 7] = [
    "fig3_work_stealing",
    "batch_throughput",
    "dense_target",
    "strategy_comparison",
    "adaptive_dispatch",
    "kernel_comparison",
    "sharded_throughput",
];

/// Knobs of one report run.
#[derive(Clone, Copy, Debug)]
pub struct ReportConfig {
    /// Wall-time samples per case (the report records the median).
    pub repeats: usize,
    /// Shrink workloads to CI-smoke size.
    pub smoke: bool,
}

impl Default for ReportConfig {
    fn default() -> Self {
        ReportConfig {
            repeats: 5,
            smoke: false,
        }
    }
}

/// One measured case of a figure.
struct Case {
    name: &'static str,
    intersection_seconds: f64,
    single_parent_seconds: f64,
    speedup_vs_sequential: f64,
    observed_states_total: u64,
    steals_total: u64,
}

impl Case {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name)),
            ("intersection_seconds", Json::F64(self.intersection_seconds)),
            (
                "single_parent_seconds",
                Json::F64(self.single_parent_seconds),
            ),
            (
                "speedup_vs_sequential",
                Json::F64(self.speedup_vs_sequential),
            ),
            (
                "speedup_over_single_parent",
                Json::F64(self.single_parent_seconds / self.intersection_seconds.max(1e-12)),
            ),
            (
                "observed_states_total",
                Json::U64(self.observed_states_total),
            ),
            ("steals_total", Json::U64(self.steals_total)),
        ])
    }
}

/// Median of `repeats` wall-time samples of `work`.
fn median_seconds(repeats: usize, mut work: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let start = Instant::now();
            work();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The scheduler sweep every figure reports.
fn schedulers() -> Vec<(&'static str, Scheduler)> {
    vec![
        ("sequential", Scheduler::Sequential),
        ("ws4_stealing", Scheduler::work_stealing(4)),
        (
            "ws4_no_stealing",
            Scheduler::WorkStealing {
                workers: 4,
                task_group_size: 4,
                stealing: false,
            },
        ),
    ]
}

/// Runs the scheduler sweep over a workload of prepared engines, once per
/// candidate mode, timing each sweep as one count-only pass over the set.
///
/// All timed passes run first, while every engine is still sink-free — the
/// instrumented counter pass attaches [`TraceSink`]s, and the zero-overhead
/// contract only holds for engines without one.
fn sweep_engine_sets(
    intersection: &mut [Engine<'_>],
    single: &[Engine<'_>],
    repeats: usize,
) -> Vec<Case> {
    let time_set = |engines: &[Engine<'_>], scheduler: Scheduler| {
        median_seconds(repeats, || {
            for engine in engines {
                std::hint::black_box(engine.run(&RunConfig::new(scheduler)).matches);
            }
        })
    };
    let mut timed = Vec::new();
    let mut sequential_median = f64::NAN;
    for (name, scheduler) in schedulers() {
        let inter = time_set(intersection, scheduler);
        let legacy = time_set(single, scheduler);
        if scheduler == Scheduler::Sequential {
            sequential_median = inter;
        }
        timed.push((
            name,
            scheduler,
            inter,
            legacy,
            sequential_median / inter.max(1e-12),
        ));
    }
    timed
        .into_iter()
        .map(|(name, scheduler, inter, legacy, speedup)| {
            let (observed_states_total, steals_total) =
                instrumented_totals(intersection, scheduler);
            Case {
                name,
                intersection_seconds: inter,
                single_parent_seconds: legacy,
                speedup_vs_sequential: speedup,
                observed_states_total,
                steals_total,
            }
        })
        .collect()
}

/// One untimed instrumented pass over the intersection workload: attaches a
/// fresh [`TraceSink`] to every engine, runs the count-only sweep once under
/// `scheduler`, and sums the observed consistency checks and successful
/// steals across the set.
fn instrumented_totals(engines: &mut [Engine<'_>], scheduler: Scheduler) -> (u64, u64) {
    let mut states = 0u64;
    let mut steals = 0u64;
    for engine in engines.iter_mut() {
        let sink = Arc::new(TraceSink::new(engine.plan().num_positions()));
        engine.set_trace_sink(Arc::clone(&sink));
        std::hint::black_box(engine.run(&RunConfig::new(scheduler)).matches);
        states += sink.states_total();
        steals += sink.steals();
    }
    (states, steals)
}

/// Runs the scheduler sweep over one instance in both candidate modes.
fn sweep_instance(
    pattern: &Graph,
    target: &Graph,
    algorithm: Algorithm,
    repeats: usize,
) -> Vec<Case> {
    let mut intersection = [Engine::prepare(pattern, target, algorithm)];
    let single = Engine::prepare_with_mode(pattern, target, algorithm, CandidateMode::SingleParent);
    sweep_engine_sets(&mut intersection, &[single], repeats)
}

/// Figure `fig3_work_stealing`: the PPIS32-like collection under the
/// stealing / no-stealing sweep.  The whole collection is enumerated per
/// sample (single instances of the smoke collection finish in microseconds,
/// below timer resolution).
fn fig3_cases(config: &ReportConfig) -> Vec<Case> {
    let experiment = if config.smoke {
        ExperimentConfig::smoke()
    } else {
        // Large enough that search time dominates the per-run thread-spawn
        // cost of the parallel schedulers, so the mode comparison measures
        // the hot path rather than scheduling overhead.
        ExperimentConfig {
            scale: 1.5,
            max_instances: Some(8),
            ..ExperimentConfig::smoke()
        }
    };
    let coll = collection(CollectionKind::Ppis32, &experiment);
    fn prepare_all<'g>(coll: &'g sge_datasets::Collection, mode: CandidateMode) -> Vec<Engine<'g>> {
        coll.instances
            .iter()
            .map(|i| {
                Engine::prepare_with_mode(&i.pattern, coll.target_of(i), Algorithm::RiDs, mode)
            })
            .collect()
    }
    let mut intersection = prepare_all(&coll, CandidateMode::Intersection);
    let single = prepare_all(&coll, CandidateMode::SingleParent);
    sweep_engine_sets(&mut intersection, &single, config.repeats)
}

/// The grid target the `batch_throughput` figure (engine-level cases *and*
/// the service pass) runs against.
fn batch_target(config: &ReportConfig) -> Graph {
    if config.smoke {
        generators::grid(6, 6)
    } else {
        generators::grid(16, 16)
    }
}

/// The 100-pattern shape zoo used by the `batch_throughput` bench.
fn zoo_patterns() -> Vec<Graph> {
    let shapes = [
        generators::directed_cycle(3, 0),
        generators::directed_path(2, 0),
        generators::directed_path(3, 0),
        generators::undirected_cycle(4, 0),
        generators::clique(3, 0),
    ];
    (0..100).map(|i| shapes[i % shapes.len()].clone()).collect()
}

/// Figure `batch_throughput`: the full 100-pattern query mix against the
/// grid target, engines prepared once (prepared-cache semantics), runs timed.
fn batch_cases(config: &ReportConfig) -> Vec<Case> {
    fn prepare_set<'g>(
        patterns: &'g [Graph],
        target: &'g Graph,
        mode: CandidateMode,
    ) -> Vec<Engine<'g>> {
        patterns
            .iter()
            .map(|p| Engine::prepare_with_mode(p, target, Algorithm::RiDsSiFc, mode))
            .collect()
    }
    let target = batch_target(config);
    let patterns = zoo_patterns();
    let mut intersection = prepare_set(&patterns, &target, CandidateMode::Intersection);
    let single = prepare_set(&patterns, &target, CandidateMode::SingleParent);
    sweep_engine_sets(&mut intersection, &single, config.repeats)
}

/// The 100-pattern batch through the *real* service stack (registry, parse,
/// prepared cache, admission control), reported as the median queries/second
/// over `config.repeats` passes against the same target size the
/// `batch_throughput` engine-level cases use.
fn service_queries_per_second(config: &ReportConfig) -> f64 {
    let service = Service::new(ServiceConfig {
        cache_capacity: 32,
        batch_workers: 4,
        max_in_flight: 8,
        ..ServiceConfig::default()
    });
    service.registry().insert("grid", batch_target(config));
    let mut set = QuerySet::new("grid");
    for pattern in zoo_patterns() {
        set.push(QuerySpec::new(write_graph(&pattern)));
    }
    let mut samples: Vec<f64> = (0..config.repeats.max(1))
        .map(|_| {
            let outcome = service.run_batch(&set);
            assert_eq!(outcome.succeeded(), 100, "batch must fully succeed");
            outcome.queries_per_second()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Figure `dense_target`: small cyclic patterns in cliques — the workload
/// where the multi-parent intersection prunes hardest relative to the
/// single-parent edge probing.
fn dense_cases(config: &ReportConfig) -> Vec<Case> {
    let clique_nodes = if config.smoke { 12 } else { 32 };
    let pattern = generators::directed_cycle(4, 0);
    let target = generators::clique(clique_nodes, 0);
    sweep_instance(&pattern, &target, Algorithm::RiDs, config.repeats)
}

/// One measured case of the `kernel_comparison` figure: the same pairwise
/// adjacency-intersection workload through each of the three kernel paths,
/// plus the candidate-prefilter verdict from one instrumented enumeration of
/// the tier's target.
struct KernelCase {
    name: &'static str,
    scalar_seconds: f64,
    vectorized_seconds: f64,
    bitmap_seconds: f64,
    prefilter_rejected: u64,
    prefilter_reject_rate: f64,
}

impl KernelCase {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name)),
            ("scalar_seconds", Json::F64(self.scalar_seconds)),
            ("vectorized_seconds", Json::F64(self.vectorized_seconds)),
            ("bitmap_seconds", Json::F64(self.bitmap_seconds)),
            (
                "speedup_vectorized_vs_scalar",
                Json::F64(self.scalar_seconds / self.vectorized_seconds.max(1e-12)),
            ),
            (
                "speedup_bitmap_vs_scalar",
                Json::F64(self.scalar_seconds / self.bitmap_seconds.max(1e-12)),
            ),
            ("prefilter_rejected", Json::U64(self.prefilter_rejected)),
            (
                "prefilter_reject_rate",
                Json::F64(self.prefilter_reject_rate),
            ),
        ])
    }
}

/// A dense clique core with degree-1 fringe nodes hanging off it — the
/// workload where the min-degree prefilter visibly rejects candidates (a
/// fringe node can never host a position of a cycle pattern).
fn dense_core_with_fringe(core: usize, fringe: usize) -> Graph {
    let mut builder = sge_graph::GraphBuilder::with_capacity(core + fringe, core * (core - 1));
    for _ in 0..core {
        builder.add_node(0);
    }
    for u in 0..core as u32 {
        for v in 0..core as u32 {
            if u != v {
                builder.add_edge(u, v, 0);
            }
        }
    }
    for _ in 0..fringe {
        let leaf = builder.add_node(0);
        builder.add_edge(leaf, 0, 0);
    }
    builder.build()
}

/// The prefilter verdict of one instrumented sequential enumeration (4-cycle
/// pattern) against `target`: rejected candidates and the reject rate
/// relative to everything the prefilter inspected.  Plain RI is the right
/// probe: RI-DS domains are already arc-consistent and would exclude the
/// infeasible candidates before the prefilter ever sees them, reading 0
/// everywhere.  On targets where the planner never routes to the bitmap
/// kernels the sidecar stays detached and both numbers are zero — that
/// non-decision is part of the figure.
fn prefilter_verdict(target: &Graph) -> (u64, f64) {
    let pattern = generators::directed_cycle(4, 0);
    let mut engine = Engine::prepare(&pattern, target, Algorithm::Ri);
    let sink = Arc::new(TraceSink::new(engine.plan().num_positions()));
    engine.set_trace_sink(Arc::clone(&sink));
    let outcome = engine.run(&RunConfig::new(Scheduler::Sequential));
    std::hint::black_box(outcome.matches);
    let rejected = outcome.kernels.prefilter_rejected;
    // The sink counts candidates that *passed* the prefilter and were
    // emitted, so rejected + passed is everything the prefilter saw.
    let inspected = rejected + sink.candidates_total();
    (rejected, rejected as f64 / (inspected.max(1)) as f64)
}

/// Figure `kernel_comparison`: the scalar reference, the width-bucketed
/// vectorized gallop and the bitmap AND kernel over one identical workload
/// per density tier — every ordered node pair (capped) of the tier's target,
/// seeding the candidate buffer with `u`'s out-neighborhood and intersecting
/// it against `w`'s adjacency.  The bitmap sidecar is built with a
/// threshold of 1 so every tier has rows to compare, even where the planner
/// would never pick the bitmap kernel.
fn kernel_cases(config: &ReportConfig) -> Vec<KernelCase> {
    use sge_ri::kernels::{and_rows, collect_row};

    let tiers: Vec<(&'static str, Graph)> = if config.smoke {
        vec![
            ("sparse_grid", generators::grid(6, 6)),
            ("medium_clique", generators::clique(8, 0)),
            ("dense_clique", generators::clique(16, 0)),
            ("dense_fringe", dense_core_with_fringe(24, 8)),
        ]
    } else {
        vec![
            ("sparse_grid", generators::grid(16, 16)),
            ("medium_clique", generators::clique(16, 0)),
            ("dense_clique", generators::clique(48, 0)),
            ("dense_fringe", dense_core_with_fringe(32, 16)),
        ]
    };
    // Enough intersections per timed sample to clear timer resolution.
    let rounds = if config.smoke { 4 } else { 16 };
    const MAX_SAMPLED_NODES: usize = 64;

    tiers
        .into_iter()
        .map(|(name, target)| {
            let sidecar = sge_graph::AdjacencyBitmaps::build(
                &target,
                &sge_graph::BitmapConfig {
                    degree_threshold: 1,
                    max_bytes: usize::MAX,
                },
            );
            let nodes = target.num_nodes().min(MAX_SAMPLED_NODES) as u32;
            let seed_out = |u: u32, out: &mut Vec<u32>| {
                out.clear();
                out.extend(
                    target
                        .out_edges(u)
                        .iter()
                        .filter(|e| e.label == 0)
                        .map(|e| e.node),
                );
            };
            let mut buffer: Vec<u32> = Vec::new();
            let scalar_seconds = median_seconds(config.repeats, || {
                for _ in 0..rounds {
                    for u in 0..nodes {
                        for w in 0..nodes {
                            seed_out(u, &mut buffer);
                            sge_ri::intersect_reference(&mut buffer, target.out_edges(w), 0);
                            std::hint::black_box(buffer.len());
                        }
                    }
                }
            });
            let vectorized_seconds = median_seconds(config.repeats, || {
                for _ in 0..rounds {
                    for u in 0..nodes {
                        for w in 0..nodes {
                            seed_out(u, &mut buffer);
                            std::hint::black_box(sge_ri::intersect_gallop(
                                &mut buffer,
                                target.out_edges(w),
                                0,
                            ));
                        }
                    }
                }
            });
            let mut scratch: Vec<u64> = vec![0; sidecar.words_per_row()];
            let bitmap_seconds = median_seconds(config.repeats, || {
                for _ in 0..rounds {
                    for u in 0..nodes {
                        for w in 0..nodes {
                            let (Some(row_u), Some(row_w)) =
                                (sidecar.out_row(u, 0), sidecar.out_row(w, 0))
                            else {
                                continue;
                            };
                            scratch.copy_from_slice(row_u);
                            and_rows(&mut scratch, row_w);
                            buffer.clear();
                            collect_row(&scratch, &mut buffer);
                            std::hint::black_box(buffer.len());
                        }
                    }
                }
            });
            let (prefilter_rejected, prefilter_reject_rate) = prefilter_verdict(&target);
            KernelCase {
                name,
                scalar_seconds,
                vectorized_seconds,
                bitmap_seconds,
                prefilter_rejected,
                prefilter_reject_rate,
            }
        })
        .collect()
}

/// One measured case of the `adaptive_dispatch` figure: the same count-only
/// query through the real service under a pinned sequential scheduler, a
/// pinned `ws:4`, and planner routing.
struct DispatchCase {
    name: &'static str,
    sequential_seconds: f64,
    ws4_seconds: f64,
    routed_seconds: f64,
    routed_scheduler: String,
    correction: f64,
}

/// Measurement-noise tolerance for the `routed_not_slower` verdict: routed
/// dispatch resolves to the sequential fast path on small trees, so its
/// median must land within 5% of the pinned-sequential median (the routing
/// decision itself costs one cost-model lookup).
const DISPATCH_NOISE_TOLERANCE: f64 = 1.05;

/// Absolute slack for the same verdict.  Smoke-sized cases finish in well
/// under a millisecond, where scheduler jitter dwarfs any relative margin;
/// the ws4 regression this verdict guards against is a multi-millisecond,
/// multi-x slowdown, so a 1 ms floor cannot mask it.
const DISPATCH_NOISE_FLOOR_SECONDS: f64 = 0.001;

impl DispatchCase {
    fn routed_vs_sequential(&self) -> f64 {
        self.sequential_seconds / self.routed_seconds.max(1e-12)
    }

    fn routed_vs_ws4(&self) -> f64 {
        self.ws4_seconds / self.routed_seconds.max(1e-12)
    }

    fn routed_not_slower(&self) -> bool {
        self.routed_seconds
            <= self.sequential_seconds * DISPATCH_NOISE_TOLERANCE + DISPATCH_NOISE_FLOOR_SECONDS
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name)),
            ("sequential_seconds", Json::F64(self.sequential_seconds)),
            ("ws4_seconds", Json::F64(self.ws4_seconds)),
            ("routed_seconds", Json::F64(self.routed_seconds)),
            ("routed_scheduler", Json::str(self.routed_scheduler.clone())),
            (
                "routed_vs_sequential",
                Json::F64(self.routed_vs_sequential()),
            ),
            ("routed_vs_ws4", Json::F64(self.routed_vs_ws4())),
            ("routed_not_slower", Json::Bool(self.routed_not_slower())),
            ("correction", Json::F64(self.correction)),
        ])
    }
}

/// Figure `adaptive_dispatch`: planner-routed scheduling through the real
/// service stack against the pinned baselines it must dominate.  The ws4
/// regression BENCH_pr3/pr4 documented (work-stealing at a fraction of
/// sequential on small instances) is exactly what routing removes: the
/// corrected estimate stays below the sequential threshold, so the routed
/// run takes the count-only sequential fast path instead of paying the
/// task-distribution overhead.
fn adaptive_dispatch_cases(config: &ReportConfig) -> (Vec<DispatchCase>, f64) {
    let service = Service::new(ServiceConfig {
        cache_capacity: 16,
        batch_workers: 1,
        max_in_flight: 4,
        ..ServiceConfig::default()
    });
    service.registry().insert("grid", batch_target(config));
    service.registry().insert(
        "clique",
        generators::clique(if config.smoke { 12 } else { 24 }, 0),
    );
    let workloads: [(&'static str, &'static str, Graph); 3] = [
        ("triangle_grid", "grid", generators::directed_cycle(3, 0)),
        ("path4_grid", "grid", generators::directed_path(4, 0)),
        ("cycle4_clique", "clique", generators::directed_cycle(4, 0)),
    ];
    let mut cases = Vec::new();
    for (name, target, pattern) in workloads {
        let text = write_graph(&pattern);
        let seq_spec = QuerySpec::new(&text).with_run(RunConfig::new(Scheduler::Sequential));
        let ws4_spec = QuerySpec::new(&text).with_run(RunConfig::new(Scheduler::work_stealing(4)));
        let routed_spec = QuerySpec::new(&text);
        // Warm the prepared cache and the cost model so every timed pass
        // runs cache-hit with a learned correction factor, like a steady
        // -state server would.
        for spec in [&seq_spec, &ws4_spec, &routed_spec] {
            service
                .run_query(target, spec)
                .expect("dispatch warmup query must succeed");
        }
        let time_spec = |spec: &QuerySpec| {
            median_seconds(config.repeats, || {
                std::hint::black_box(
                    service
                        .run_query(target, spec)
                        .expect("dispatch query must succeed")
                        .outcome
                        .matches,
                );
            })
        };
        let sequential_seconds = time_spec(&seq_spec);
        let ws4_seconds = time_spec(&ws4_spec);
        let routed_seconds = time_spec(&routed_spec);
        let routed_outcome = service
            .run_query(target, &routed_spec)
            .expect("routed probe query must succeed");
        cases.push(DispatchCase {
            name,
            sequential_seconds,
            ws4_seconds,
            routed_seconds,
            routed_scheduler: routed_outcome.outcome.scheduler.name().to_string(),
            correction: service.cost_model().correction_for(target),
        });
    }
    (cases, service.correction_factor())
}

/// One measured ordering strategy of the `strategy_comparison` figure.
struct StrategyCase {
    name: &'static str,
    seconds: f64,
    speedup_vs_ri_greedy: f64,
    est_states_total: f64,
}

impl StrategyCase {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name)),
            ("seconds", Json::F64(self.seconds)),
            ("speedup_vs_ri_greedy", Json::F64(self.speedup_vs_ri_greedy)),
            ("est_states_total", Json::F64(self.est_states_total)),
        ])
    }
}

/// Figure `strategy_comparison`: one sequential count-only pass over a mixed
/// workload (the PPIS32-like collection plus a dense clique instance) per
/// ordering strategy.  Preparation happens outside the timed region — the
/// figure isolates how the *match order* shapes the search, exactly what a
/// strategy trades.
fn strategy_cases(config: &ReportConfig) -> Vec<StrategyCase> {
    let experiment = if config.smoke {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig {
            scale: 1.0,
            max_instances: Some(8),
            ..ExperimentConfig::smoke()
        }
    };
    let coll = collection(CollectionKind::Ppis32, &experiment);
    let dense_pattern = generators::directed_cycle(4, 0);
    let dense_target = generators::clique(if config.smoke { 12 } else { 24 }, 0);

    // Measure every strategy first; the RI-greedy baseline for the speedup
    // column is looked up afterwards so nothing depends on the iteration
    // order of `Strategy::ALL`.
    let measured: Vec<(Strategy, f64, f64)> = Strategy::ALL
        .iter()
        .map(|&strategy| {
            let engines: Vec<Engine<'_>> = coll
                .instances
                .iter()
                .map(|i| {
                    Engine::prepare_planned(
                        &i.pattern,
                        coll.target_of(i),
                        Algorithm::RiDs,
                        CandidateMode::Intersection,
                        strategy,
                    )
                })
                .collect();
            let dense = Engine::prepare_planned(
                &dense_pattern,
                &dense_target,
                Algorithm::RiDs,
                CandidateMode::Intersection,
                strategy,
            );
            let est_states_total = engines
                .iter()
                .chain(std::iter::once(&dense))
                .map(|e| e.plan().cost.est_total_states)
                .sum();
            let seconds = median_seconds(config.repeats, || {
                for engine in &engines {
                    std::hint::black_box(engine.run(&RunConfig::default()).matches);
                }
                std::hint::black_box(dense.run(&RunConfig::default()).matches);
            });
            (strategy, seconds, est_states_total)
        })
        .collect();
    let greedy_seconds = measured
        .iter()
        .find(|(strategy, _, _)| *strategy == Strategy::RiGreedy)
        .map(|&(_, seconds, _)| seconds)
        .expect("Strategy::ALL contains RiGreedy");
    measured
        .into_iter()
        .map(|(strategy, seconds, est_states_total)| StrategyCase {
            name: strategy.name(),
            seconds,
            speedup_vs_ri_greedy: greedy_seconds / seconds.max(1e-12),
            est_states_total,
        })
        .collect()
}

/// One measured backend of the `sharded_throughput` figure: the same
/// count-only triangle-class query mix against the modular clique-community
/// target, through the plain single-registry service or through the
/// scatter-gather coordinator at a given shard count.
struct ShardedCase {
    name: &'static str,
    shards: usize,
    mix_seconds: f64,
    queries_per_second: f64,
    dense_seconds: f64,
    matches_total: u64,
    bitmap_ops: u64,
    speedup_vs_single_registry: f64,
    sharded_not_slower: bool,
    /// `Some` only on the `shards_1` case: the identity partition must not
    /// regress the dense_target workload.
    dense_not_regressed: Option<bool>,
}

/// Relative tolerance for the `sharded_not_slower` verdict.  Scatter-gather
/// adds per-query shard-thread spawns and a merge pass, so a coordinator case
/// may land within 25% of the single-registry median without signalling a
/// regression — the failure this verdict guards against is the multi-x
/// slowdown of a partitioner that splits communities or a merger that
/// re-enumerates.
const SHARDED_NOISE_TOLERANCE: f64 = 1.25;

/// Absolute slack for the sharded verdicts: smoke-sized mixes finish in
/// milliseconds, where thread-spawn jitter dwarfs any relative margin.
const SHARDED_NOISE_FLOOR_SECONDS: f64 = 0.005;

impl ShardedCase {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::str(self.name)),
            ("shards", Json::U64(self.shards as u64)),
            ("mix_seconds", Json::F64(self.mix_seconds)),
            ("queries_per_second", Json::F64(self.queries_per_second)),
            ("dense_seconds", Json::F64(self.dense_seconds)),
            ("matches_total", Json::U64(self.matches_total)),
            ("bitmap_ops", Json::U64(self.bitmap_ops)),
            (
                "speedup_vs_single_registry",
                Json::F64(self.speedup_vs_single_registry),
            ),
            ("sharded_not_slower", Json::Bool(self.sharded_not_slower)),
        ];
        if let Some(verdict) = self.dense_not_regressed {
            pairs.push(("dense_not_regressed", Json::Bool(verdict)));
        }
        Json::obj(pairs)
    }
}

/// The two serving backends the `sharded_throughput` figure compares, under
/// one run interface.
enum ShardedBackend {
    Single(Service),
    Sharded(Coordinator),
}

impl ShardedBackend {
    fn insert(&self, name: &str, graph: Graph) {
        match self {
            ShardedBackend::Single(service) => {
                service.registry().insert(name, graph);
            }
            ShardedBackend::Sharded(coordinator) => {
                coordinator.insert_target(name, graph);
            }
        }
    }

    /// Runs one count-only query and returns `(matches, bitmap kernel ops)`.
    fn run(&self, target: &str, spec: &QuerySpec) -> (u64, u64) {
        match self {
            ShardedBackend::Single(service) => {
                let outcome = service
                    .run_query(target, spec)
                    .expect("sharded-figure query must succeed");
                (outcome.outcome.matches, outcome.outcome.kernels.bitmap)
            }
            ShardedBackend::Sharded(coordinator) => {
                let (merged, _) = coordinator
                    .run_query(target, spec)
                    .expect("sharded-figure query must succeed");
                (merged.outcome.matches, merged.outcome.kernels.bitmap)
            }
        }
    }
}

/// The modular clique-community target of the `sharded_throughput` figure.
///
/// The shape is chosen so the *partition itself* changes the plan: the full
/// graph's mean degree sits just below the planner's dense-routing bar
/// (`degree_mean >= nodes / 4`), so the single registry enumerates on the
/// sparse merge/gallop kernels — while a compacted shard ball, a handful of
/// communities wide, clears the bar and routes to the bitmap kernels.  The
/// figure therefore measures the real end-to-end win of sharding on this
/// host: plan-level kernel routing restored by locality, not thread-level
/// parallelism (which a single-core runner cannot deliver).
fn sharded_target(config: &ReportConfig) -> Graph {
    use sge_datasets::{generate_modular, ModularSpec};
    let spec = if config.smoke {
        // 8 communities of clique(24): 192 nodes at mean directed degree
        // ~23 — below the monolithic bar of 48, above a shard ball's.
        ModularSpec {
            communities: 8,
            community_size: 24,
            intra_bonds: 24 * 23 / 2,
            labels: 1,
        }
    } else {
        // 8 communities of clique(64): 512 nodes at mean directed degree
        // ~63 — just below the monolithic bar of 128.
        ModularSpec {
            communities: 8,
            community_size: 64,
            intra_bonds: 64 * 63 / 2,
            labels: 1,
        }
    };
    generate_modular(&spec, 0x0DA7_A5E7, "modular-cliques")
}

/// The triangle-class query mix of the `sharded_throughput` figure: every
/// pattern has root eccentricity within the coordinator's replication
/// horizon, and each finishes in milliseconds-to-tens-of-milliseconds on the
/// full-size target so a mix pass clears timer resolution without starving
/// the repeat budget.
fn sharded_mix() -> Vec<Graph> {
    vec![
        generators::directed_cycle(3, 0),
        generators::directed_path(3, 0),
        generators::clique(3, 0),
    ]
}

/// Figure `sharded_throughput`: the same query mix through the plain service
/// and through the scatter-gather coordinator at 1, 2 and 4 shards, plus the
/// dense_target workload through each backend as the no-regression guard.
fn sharded_cases(config: &ReportConfig) -> Vec<ShardedCase> {
    let backends: [(&'static str, usize, ShardedBackend); 4] = [
        (
            "single_registry",
            0,
            ShardedBackend::Single(Service::new(ServiceConfig::default())),
        ),
        (
            "shards_1",
            1,
            ShardedBackend::Sharded(Coordinator::new(1, ServiceConfig::default())),
        ),
        (
            "shards_2",
            2,
            ShardedBackend::Sharded(Coordinator::new(2, ServiceConfig::default())),
        ),
        (
            "shards_4",
            4,
            ShardedBackend::Sharded(Coordinator::new(4, ServiceConfig::default())),
        ),
    ];
    let dense_pattern = generators::directed_cycle(4, 0);
    let dense_target = generators::clique(if config.smoke { 12 } else { 32 }, 0);
    let mix: Vec<String> = sharded_mix().iter().map(write_graph).collect();

    let mut measured: Vec<(&'static str, usize, f64, f64, u64, u64)> = Vec::new();
    for (name, shards, backend) in backends {
        backend.insert("modular", sharded_target(config));
        backend.insert("dense", dense_target.clone());
        let specs: Vec<QuerySpec> = mix
            .iter()
            .map(|text| QuerySpec::new(text).with_run(RunConfig::new(Scheduler::Sequential)))
            .collect();
        let dense_spec = QuerySpec::new(write_graph(&dense_pattern))
            .with_run(RunConfig::new(Scheduler::Sequential));
        // Warm the prepared caches so every timed pass runs cache-hit.
        let mut matches_total = 0u64;
        let mut bitmap_ops = 0u64;
        for spec in &specs {
            let (matches, bitmap) = backend.run("modular", spec);
            matches_total += matches;
            bitmap_ops += bitmap;
        }
        backend.run("dense", &dense_spec);
        let mix_seconds = median_seconds(config.repeats, || {
            for spec in &specs {
                std::hint::black_box(backend.run("modular", spec).0);
            }
        });
        let dense_seconds = median_seconds(config.repeats, || {
            std::hint::black_box(backend.run("dense", &dense_spec).0);
        });
        measured.push((
            name,
            shards,
            mix_seconds,
            dense_seconds,
            matches_total,
            bitmap_ops,
        ));
    }

    let (_, _, single_mix, single_dense, single_matches, _) = measured[0];
    measured
        .into_iter()
        .map(
            |(name, shards, mix_seconds, dense_seconds, matches_total, bitmap_ops)| {
                assert_eq!(
                    matches_total, single_matches,
                    "{name}: sharded merge must preserve match counts"
                );
                ShardedCase {
                    name,
                    shards,
                    mix_seconds,
                    queries_per_second: mix.len() as f64 / mix_seconds.max(1e-12),
                    dense_seconds,
                    matches_total,
                    bitmap_ops,
                    speedup_vs_single_registry: single_mix / mix_seconds.max(1e-12),
                    sharded_not_slower: mix_seconds
                        <= single_mix * SHARDED_NOISE_TOLERANCE + SHARDED_NOISE_FLOOR_SECONDS,
                    dense_not_regressed: (name == "shards_1").then_some(
                        dense_seconds
                            <= single_dense * SHARDED_NOISE_TOLERANCE + SHARDED_NOISE_FLOOR_SECONDS,
                    ),
                }
            },
        )
        .collect()
}

fn figure_json(cases: &[Case], extra: Vec<(&'static str, Json)>) -> Json {
    let mut pairs = vec![(
        "cases",
        Json::Arr(cases.iter().map(Case::to_json).collect()),
    )];
    pairs.extend(extra);
    Json::obj(pairs)
}

/// Runs every figure and renders the report document.
///
/// The record carries `host_parallelism` so trajectory readers can interpret
/// the ws4 cases: on a single-core host the parallel schedulers can never
/// beat sequential (`speedup_vs_sequential` < 1 measures scheduling
/// overhead), while `speedup_over_single_parent` stays meaningful — both
/// modes pay identical scheduling cost, so the ratio isolates the hot path.
pub fn run_report(config: &ReportConfig) -> String {
    let fig3 = fig3_cases(config);
    let batch = batch_cases(config);
    let qps = service_queries_per_second(config);
    let dense = dense_cases(config);
    let strategies = strategy_cases(config);
    let (dispatch, correction_final) = adaptive_dispatch_cases(config);
    let kernels = kernel_cases(config);
    let sharded = sharded_cases(config);

    let mut table = Table::new(
        "bench-report (median wall seconds)",
        &[
            "figure",
            "case",
            "intersection",
            "single-parent",
            "vs-seq",
            "states",
            "steals",
        ],
    );
    for (figure, cases) in [
        ("fig3_work_stealing", &fig3),
        ("batch_throughput", &batch),
        ("dense_target", &dense),
    ] {
        for case in cases {
            table.row(vec![
                figure.to_string(),
                case.name.to_string(),
                format!("{:.6}", case.intersection_seconds),
                format!("{:.6}", case.single_parent_seconds),
                format!("{:.2}", case.speedup_vs_sequential),
                case.observed_states_total.to_string(),
                case.steals_total.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("service batch throughput: {qps:.0} queries/s");

    let mut strategy_table = Table::new(
        "strategy comparison (sequential count-only, median wall seconds)",
        &[
            "strategy",
            "seconds",
            "vs-ri-greedy",
            "est states (cost model)",
        ],
    );
    for case in &strategies {
        strategy_table.row(vec![
            case.name.to_string(),
            format!("{:.6}", case.seconds),
            format!("{:.2}", case.speedup_vs_ri_greedy),
            format!("{:.0}", case.est_states_total),
        ]);
    }
    println!("{}", strategy_table.render());

    let mut dispatch_table = Table::new(
        "adaptive dispatch (median wall seconds through the service)",
        &["case", "sequential", "ws4", "routed", "routed-as", "vs-seq"],
    );
    for case in &dispatch {
        dispatch_table.row(vec![
            case.name.to_string(),
            format!("{:.6}", case.sequential_seconds),
            format!("{:.6}", case.ws4_seconds),
            format!("{:.6}", case.routed_seconds),
            case.routed_scheduler.clone(),
            format!("{:.2}", case.routed_vs_sequential()),
        ]);
    }
    println!("{}", dispatch_table.render());

    let mut kernel_table = Table::new(
        "kernel comparison (median wall seconds per intersection sweep)",
        &[
            "tier",
            "scalar",
            "vectorized",
            "bitmap",
            "bitmap-vs-scalar",
            "prefilter-rejects",
        ],
    );
    for case in &kernels {
        kernel_table.row(vec![
            case.name.to_string(),
            format!("{:.6}", case.scalar_seconds),
            format!("{:.6}", case.vectorized_seconds),
            format!("{:.6}", case.bitmap_seconds),
            format!(
                "{:.2}",
                case.scalar_seconds / case.bitmap_seconds.max(1e-12)
            ),
            format!(
                "{} ({:.1}%)",
                case.prefilter_rejected,
                case.prefilter_reject_rate * 100.0
            ),
        ]);
    }
    println!("{}", kernel_table.render());

    let mut sharded_table = Table::new(
        "sharded throughput (triangle-class mix through each backend)",
        &[
            "backend",
            "mix-seconds",
            "queries/s",
            "vs-single",
            "bitmap-ops",
            "dense-seconds",
        ],
    );
    for case in &sharded {
        sharded_table.row(vec![
            case.name.to_string(),
            format!("{:.6}", case.mix_seconds),
            format!("{:.0}", case.queries_per_second),
            format!("{:.2}", case.speedup_vs_single_registry),
            case.bitmap_ops.to_string(),
            format!("{:.6}", case.dense_seconds),
        ]);
    }
    println!("{}", sharded_table.render());

    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    Json::obj(vec![
        ("schema", Json::str("sge-bench-report/v1")),
        ("pr", Json::str("pr10")),
        ("repeats", Json::U64(config.repeats as u64)),
        ("host_parallelism", Json::U64(host_parallelism as u64)),
        (
            "figures",
            Json::obj(vec![
                ("fig3_work_stealing", figure_json(&fig3, Vec::new())),
                (
                    "batch_throughput",
                    figure_json(&batch, vec![("service_queries_per_second", Json::F64(qps))]),
                ),
                ("dense_target", figure_json(&dense, Vec::new())),
                (
                    "strategy_comparison",
                    Json::obj(vec![(
                        "cases",
                        Json::Arr(strategies.iter().map(StrategyCase::to_json).collect()),
                    )]),
                ),
                (
                    "adaptive_dispatch",
                    Json::obj(vec![
                        (
                            "cases",
                            Json::Arr(dispatch.iter().map(DispatchCase::to_json).collect()),
                        ),
                        ("correction_factor_final", Json::F64(correction_final)),
                    ]),
                ),
                (
                    "kernel_comparison",
                    Json::obj(vec![(
                        "cases",
                        Json::Arr(kernels.iter().map(KernelCase::to_json).collect()),
                    )]),
                ),
                (
                    "sharded_throughput",
                    Json::obj(vec![
                        (
                            "cases",
                            Json::Arr(sharded.iter().map(ShardedCase::to_json).collect()),
                        ),
                        (
                            "shards_4_speedup",
                            Json::F64(
                                sharded
                                    .iter()
                                    .find(|c| c.name == "shards_4")
                                    .map(|c| c.speedup_vs_single_registry)
                                    .unwrap_or(f64::NAN),
                            ),
                        ),
                        (
                            // The PR-10 acceptance bar.  Advisory in smoke runs
                            // (tiny workloads under CI jitter); the committed
                            // full-size record is required to carry `true`.
                            "shards_4_meets_target",
                            Json::Bool(
                                sharded
                                    .iter()
                                    .find(|c| c.name == "shards_4")
                                    .is_some_and(|c| c.speedup_vs_single_registry >= 1.5),
                            ),
                        ),
                    ]),
                ),
            ]),
        ),
    ])
    .render()
}

/// Validates an emitted report: the document must be syntactically valid JSON
/// and its `figures` object must contain every key in [`EXPECTED_FIGURES`].
pub fn validate_report(text: &str) -> Result<(), String> {
    let mut parser = MiniJson {
        bytes: text.trim().as_bytes(),
        pos: 0,
    };
    parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing bytes at offset {}", parser.pos));
    }
    if !text.contains("\"schema\":\"sge-bench-report/v1\"") {
        return Err("missing or unexpected schema marker".to_string());
    }
    // Records since PR 7 carry the observed-counter columns; since PR 8 the
    // adaptive_dispatch figure; since PR 9 the kernel_comparison figure;
    // since PR 10 the sharded_throughput figure.  Committed older records
    // stay valid as-is.
    let pre_counter = ["\"pr\":\"pr3\"", "\"pr\":\"pr4\""]
        .iter()
        .any(|marker| text.contains(marker));
    let pre_dispatch = pre_counter || text.contains("\"pr\":\"pr7\"") || !text.contains("\"pr\":");
    let pre_kernel = pre_dispatch || text.contains("\"pr\":\"pr8\"");
    let pre_sharded = pre_kernel || text.contains("\"pr\":\"pr9\"");
    for figure in EXPECTED_FIGURES {
        if figure == "adaptive_dispatch" && pre_dispatch {
            continue;
        }
        if figure == "kernel_comparison" && pre_kernel {
            continue;
        }
        if figure == "sharded_throughput" && pre_sharded {
            continue;
        }
        if !text.contains(&format!("\"{figure}\"")) {
            return Err(format!("missing figure key '{figure}'"));
        }
    }
    if !pre_counter && !text.contains("\"observed_states_total\"") {
        return Err("missing 'observed_states_total' counter column".to_string());
    }
    if !pre_dispatch {
        if !text.contains("\"routed_not_slower\"") {
            return Err("missing 'routed_not_slower' verdicts in adaptive_dispatch".to_string());
        }
        if text.contains("\"routed_not_slower\":false") {
            return Err(
                "adaptive_dispatch regression: a routed case ran slower than sequential"
                    .to_string(),
            );
        }
    }
    if !pre_kernel && !text.contains("\"prefilter_reject_rate\"") {
        return Err("missing 'prefilter_reject_rate' column in kernel_comparison".to_string());
    }
    if !pre_sharded {
        if !text.contains("\"speedup_vs_single_registry\"") {
            return Err(
                "missing 'speedup_vs_single_registry' column in sharded_throughput".to_string(),
            );
        }
        if text.contains("\"sharded_not_slower\":false") {
            return Err(
                "sharded_throughput regression: a coordinator backend ran slower than the \
                 single registry beyond tolerance"
                    .to_string(),
            );
        }
        if text.contains("\"dense_not_regressed\":false") {
            return Err(
                "sharded_throughput regression: the identity partition regressed the \
                 dense_target workload"
                    .to_string(),
            );
        }
    }
    Ok(())
}

/// A minimal JSON syntax checker (no DOM; enough to reject malformed output).
struct MiniJson<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl MiniJson<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn literal(&mut self, text: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(())
        } else {
            Err(format!("expected '{text}' at offset {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'"' => return Ok(()),
                b'\\' => self.pos += 1, // skip the escaped byte
                _ => {}
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(|_| ())
            .map_err(|_| format!("invalid number '{text}' at offset {start}"))
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.value()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.value()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
                    }
                }
            }
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_emits_every_figure_and_validates() {
        let config = ReportConfig {
            repeats: 1,
            smoke: true,
        };
        let report = run_report(&config);
        validate_report(&report).expect("fresh report must validate");
        for figure in EXPECTED_FIGURES {
            assert!(report.contains(&format!("\"{figure}\"")), "{figure}");
        }
        assert!(report.contains("\"speedup_over_single_parent\""));
        assert!(report.contains("\"speedup_vs_ri_greedy\""));
        assert!(report.contains("\"observed_states_total\""));
        assert!(report.contains("\"steals_total\""));
        assert!(report.contains("\"speedup_bitmap_vs_scalar\""));
        assert!(report.contains("\"prefilter_reject_rate\""));
        assert!(report.contains("\"speedup_vs_single_registry\""));
        for backend in ["single_registry", "shards_1", "shards_2", "shards_4"] {
            assert!(report.contains(&format!("\"{backend}\"")), "{backend}");
        }
        for strategy in Strategy::ALL {
            assert!(
                report.contains(&format!("\"{}\"", strategy.name())),
                "{strategy}"
            );
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_report("{").is_err());
        assert!(validate_report("{}").is_err(), "schema marker required");
        assert!(validate_report("not json at all").is_err());
        let missing_figure = format!(
            "{{\"schema\":\"sge-bench-report/v1\",\"figures\":{{\"{}\":{{}}}}}}",
            EXPECTED_FIGURES[0]
        );
        assert!(
            validate_report(&missing_figure).is_err(),
            "all figure keys are required"
        );
    }

    #[test]
    fn validator_accepts_minimal_complete_documents() {
        let figures: Vec<String> = EXPECTED_FIGURES
            .iter()
            .map(|f| format!("\"{f}\":{{\"cases\":[{{\"observed_states_total\":0}}]}}"))
            .collect();
        let doc = format!(
            "{{\"schema\":\"sge-bench-report/v1\",\"figures\":{{{}}}}}",
            figures.join(",")
        );
        validate_report(&doc).expect("complete minimal document");
    }

    #[test]
    fn validator_grandfathers_pre_counter_records() {
        // The committed BENCH_pr4.json predates the counter columns and must
        // keep validating; a current-format record without them must not.
        let figures: Vec<String> = EXPECTED_FIGURES
            .iter()
            .map(|f| format!("\"{f}\":{{}}"))
            .collect();
        let legacy = format!(
            "{{\"schema\":\"sge-bench-report/v1\",\"pr\":\"pr4\",\"figures\":{{{}}}}}",
            figures.join(",")
        );
        validate_report(&legacy).expect("pr4-era record stays valid");
        let current = legacy.replace("\"pr\":\"pr4\"", "\"pr\":\"pr7\"");
        assert!(
            validate_report(&current)
                .unwrap_err()
                .contains("observed_states_total"),
            "current records must carry the counter columns"
        );
    }

    #[test]
    fn validator_grandfathers_pre_kernel_records() {
        // The committed BENCH_pr8.json predates the kernel_comparison figure
        // and must keep validating without it; a pr9 record must carry both
        // the figure and its prefilter column.
        let figures: Vec<String> = EXPECTED_FIGURES
            .iter()
            .filter(|f| **f != "kernel_comparison" && **f != "sharded_throughput")
            .map(|f| format!("\"{f}\":{{\"cases\":[{{\"observed_states_total\":0,\"routed_not_slower\":true}}]}}"))
            .collect();
        let pr8 = format!(
            "{{\"schema\":\"sge-bench-report/v1\",\"pr\":\"pr8\",\"figures\":{{{}}}}}",
            figures.join(",")
        );
        validate_report(&pr8).expect("pr8-era record stays valid");
        let pr9 = pr8.replace("\"pr\":\"pr8\"", "\"pr\":\"pr9\"");
        assert!(
            validate_report(&pr9)
                .unwrap_err()
                .contains("kernel_comparison"),
            "pr9 records must carry the kernel_comparison figure"
        );
        let with_figure = pr9.replace(
            ",\"figures\":{",
            ",\"figures\":{\"kernel_comparison\":{\"cases\":[{\"prefilter_reject_rate\":0.0}]},",
        );
        validate_report(&with_figure).expect("complete pr9 record validates");
    }

    #[test]
    fn validator_grandfathers_pre_sharded_records() {
        // The committed BENCH_pr9.json predates the sharded_throughput figure
        // and must keep validating without it; a pr10 record must carry the
        // figure, its speedup column and only passing verdicts.
        let figures: Vec<String> = EXPECTED_FIGURES
            .iter()
            .filter(|f| **f != "sharded_throughput")
            .map(|f| {
                format!(
                    "\"{f}\":{{\"cases\":[{{\"observed_states_total\":0,\
                     \"routed_not_slower\":true,\"prefilter_reject_rate\":0.0}}]}}"
                )
            })
            .collect();
        let pr9 = format!(
            "{{\"schema\":\"sge-bench-report/v1\",\"pr\":\"pr9\",\"figures\":{{{}}}}}",
            figures.join(",")
        );
        validate_report(&pr9).expect("pr9-era record stays valid");
        let pr10 = pr9.replace("\"pr\":\"pr9\"", "\"pr\":\"pr10\"");
        assert!(
            validate_report(&pr10)
                .unwrap_err()
                .contains("sharded_throughput"),
            "pr10 records must carry the sharded_throughput figure"
        );
        let with_figure = pr10.replace(
            ",\"figures\":{",
            ",\"figures\":{\"sharded_throughput\":{\"cases\":[{\
             \"speedup_vs_single_registry\":1.0,\"sharded_not_slower\":true,\
             \"dense_not_regressed\":true}]},",
        );
        validate_report(&with_figure).expect("complete pr10 record validates");
        let regressed = with_figure.replace(
            "\"sharded_not_slower\":true",
            "\"sharded_not_slower\":false",
        );
        assert!(
            validate_report(&regressed)
                .unwrap_err()
                .contains("slower than the single registry"),
            "failing sharded verdicts must be rejected"
        );
        let dense_regressed = with_figure.replace(
            "\"dense_not_regressed\":true",
            "\"dense_not_regressed\":false",
        );
        assert!(
            validate_report(&dense_regressed)
                .unwrap_err()
                .contains("dense_target"),
            "a dense regression at shards_1 must be rejected"
        );
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut calls = 0;
        let median = median_seconds(3, || calls += 1);
        assert_eq!(calls, 3);
        assert!(median >= 0.0);
    }
}

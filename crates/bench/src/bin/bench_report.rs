//! `bench-report` — emit / validate the machine-readable perf record.
//!
//! ```text
//! bench-report [--out PATH] [--repeats N] [--smoke]   run figures, write JSON
//! bench-report --validate PATH                        check an emitted file
//! ```
//!
//! The run mode executes every figure of [`sge_bench::bench_report`] and
//! writes the JSON document (default `BENCH_pr9.json`).  The validate mode
//! parses the file and checks that every expected figure key is present; it
//! exits non-zero on failure, which is what the CI `bench-smoke` job gates on.

use sge_bench::bench_report::{run_report, validate_report, ReportConfig};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: bench-report [--out PATH] [--repeats N] [--smoke]\n       bench-report --validate PATH"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::from("BENCH_pr9.json");
    let mut config = ReportConfig::default();
    let mut validate: Option<String> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(path) => out = path.clone(),
                None => usage(),
            },
            "--repeats" => match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.repeats = n,
                _ => usage(),
            },
            "--smoke" => config.smoke = true,
            "--validate" => match iter.next() {
                Some(path) => validate = Some(path.clone()),
                None => usage(),
            },
            _ => usage(),
        }
    }

    if let Some(path) = validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("bench-report: cannot read '{path}': {err}");
                exit(2);
            }
        };
        match validate_report(&text) {
            Ok(()) => {
                println!("{path}: valid sge-bench-report/v1 with every expected figure");
            }
            Err(err) => {
                eprintln!("bench-report: '{path}' failed validation: {err}");
                exit(1);
            }
        }
        return;
    }

    let report = run_report(&config);
    if let Err(err) = std::fs::write(&out, format!("{report}\n")) {
        eprintln!("bench-report: cannot write '{out}': {err}");
        exit(2);
    }
    println!("wrote {out}");
}

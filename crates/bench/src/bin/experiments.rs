//! Command-line entry point regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p sge-bench --bin experiments -- all
//! cargo run --release -p sge-bench --bin experiments -- table2 fig5 --scale 0.3 --workers 1,2,4,8
//! ```
//!
//! Options:
//! * `--scale <f64>`           collection size multiplier (default 0.25)
//! * `--seed <u64>`            dataset seed (default 20170525)
//! * `--workers <list>`        comma-separated worker counts (default 1,2,4,8,16)
//! * `--group-sizes <list>`    task-group sizes for fig4 (default 1,2,4,8,16)
//! * `--time-limit-secs <f64>` per-instance time limit (default 5)
//! * `--long-threshold <f64>`  short/long split threshold in seconds (default 0.05)
//! * `--max-instances <n>`     cap instances per collection (default 24)
//! * `--strategy <s>`          ordering strategy: ri-greedy (default),
//!   least-frequent-label or degree-descending

use sge_bench::experiments::{all_experiments, run_all};
use sge_bench::ExperimentConfig;
use std::time::Duration;

/// Reports a CLI usage error and exits nonzero (no panics on bad input).
fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    print_help();
    std::process::exit(2);
}

fn parse_list(flag: &str, text: &str) -> Vec<usize> {
    text.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| usage_error(&format!("invalid integer list for {flag}")))
        })
        .collect()
}

fn parse_value<T: std::str::FromStr>(flag: &str, text: &str) -> T {
    text.parse()
        .unwrap_or_else(|_| usage_error(&format!("invalid value '{text}' for {flag}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ExperimentConfig::default();
    let mut selected: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut take_value = || {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| usage_error(&format!("missing value for {arg}")))
                .clone()
        };
        match arg.as_str() {
            "--scale" => config.scale = parse_value(arg, &take_value()),
            "--seed" => config.seed = parse_value(arg, &take_value()),
            "--workers" => config.workers = parse_list("--workers", &take_value()),
            "--group-sizes" => config.task_group_sizes = parse_list("--group-sizes", &take_value()),
            "--time-limit-secs" => {
                config.time_limit = Duration::from_secs_f64(parse_value(arg, &take_value()))
            }
            "--long-threshold" => config.long_threshold_secs = parse_value(arg, &take_value()),
            "--max-instances" => config.max_instances = Some(parse_value(arg, &take_value())),
            "--strategy" => config.strategy = parse_value(arg, &take_value()),
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => selected.push(other.to_string()),
        }
        i += 1;
    }

    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        println!("{}", run_all(&config));
        return;
    }

    let registry = all_experiments();
    for name in &selected {
        match registry.iter().find(|(n, _)| n == name) {
            Some((_, function)) => {
                println!("\n### {name}\n");
                println!("{}", function(&config));
            }
            None => {
                eprintln!("unknown experiment '{name}'");
                print_help();
                std::process::exit(2);
            }
        }
    }
}

fn print_help() {
    println!("usage: experiments [EXPERIMENT ...] [OPTIONS]");
    println!("experiments:");
    print!("  all");
    for (name, _) in all_experiments() {
        print!(" {name}");
    }
    println!();
    println!("options: --scale F --seed N --workers LIST --group-sizes LIST");
    println!("         --time-limit-secs F --long-threshold F --max-instances N");
    println!("         --strategy ri-greedy|least-frequent-label|degree-descending");
}

//! Harness configuration.

use sge::Strategy;
use std::time::Duration;

/// Knobs shared by every experiment.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Scale factor applied to the synthetic collections' node counts
    /// (1.0 ≈ laptop-sized; the paper's originals are 10–30x larger).
    pub scale: f64,
    /// Master seed for dataset generation.
    pub seed: u64,
    /// Worker counts swept by the parallel experiments (the paper uses
    /// 1, 2, 4, 8, 16).
    pub workers: Vec<usize>,
    /// Task-group sizes swept by the coalescing experiment (Fig. 4).
    pub task_group_sizes: Vec<usize>,
    /// Per-instance time limit (the paper uses 180 s; scaled down here).
    pub time_limit: Duration,
    /// Threshold separating "short" from "long" instances, in seconds of
    /// single-worker total time (1 s in the paper).
    pub long_threshold_secs: f64,
    /// Optional cap on instances per collection, to bound harness runtime.
    pub max_instances: Option<usize>,
    /// Ordering strategy every experiment prepares its engines with
    /// (RI-greedy — the paper's heuristic — by default).
    pub strategy: Strategy,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 0.25,
            seed: 20170525, // the paper's arXiv submission date
            workers: vec![1, 2, 4, 8, 16],
            task_group_sizes: vec![1, 2, 4, 8, 16],
            time_limit: Duration::from_secs(5),
            long_threshold_secs: 0.05,
            max_instances: Some(24),
            strategy: Strategy::default(),
        }
    }
}

impl ExperimentConfig {
    /// A very small configuration used by unit tests and Criterion benches so
    /// they finish in seconds.
    pub fn smoke() -> Self {
        ExperimentConfig {
            scale: 0.1,
            seed: 7,
            workers: vec![1, 2],
            task_group_sizes: vec![1, 4],
            time_limit: Duration::from_millis(500),
            long_threshold_secs: 0.005,
            max_instances: Some(4),
            strategy: Strategy::default(),
        }
    }

    /// Largest worker count in the sweep.
    pub fn max_workers(&self) -> usize {
        self.workers.iter().copied().max().unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = ExperimentConfig::default();
        assert!(config.scale > 0.0);
        assert!(!config.workers.is_empty());
        assert_eq!(config.max_workers(), 16);
        assert!(config.long_threshold_secs > 0.0);
    }

    #[test]
    fn smoke_config_is_smaller() {
        let smoke = ExperimentConfig::smoke();
        let full = ExperimentConfig::default();
        assert!(smoke.scale < full.scale);
        assert!(smoke.max_workers() < full.max_workers());
    }
}

//! One function per table / figure of the paper's evaluation.
//!
//! Every function generates its workload from the synthetic collections,
//! executes the relevant algorithm variants through the unified `sge::Engine`
//! and returns a rendered text table whose rows correspond to what the paper
//! plots.  Absolute times differ from the paper (synthetic data, different
//! hardware); the targeted quantities are the *shapes*: which variant wins,
//! how the search space shrinks from RI-DS to RI-DS-SI-FC, how steal counts
//! react to the task-group size, and how speedups split short/long.

use crate::config::ExperimentConfig;
use crate::records::{
    run_instances_matrix, run_instances_parallel, run_instances_sequential, speedup_pairs,
    split_short_long, totals_by_instance, InstanceRecord,
};
use crate::report::{num2, secs, Table};
use sge::Scheduler;
use sge_datasets::{graemlin32_like, pdbsv1_like, ppis32_like, Collection, CollectionKind};
use sge_ri::Algorithm;
use sge_util::{RunningStats, SpeedupSummary};

/// The work-stealing scheduler with the paper's task-group default.
fn stealing(workers: usize) -> Scheduler {
    Scheduler::WorkStealing {
        workers,
        task_group_size: 4,
        stealing: true,
    }
}

/// Generates the synthetic analogue of one of the paper's collections.
pub fn collection(kind: CollectionKind, config: &ExperimentConfig) -> Collection {
    let spec = match kind {
        CollectionKind::Ppis32 => ppis32_like(config.scale, config.seed),
        CollectionKind::Graemlin32 => graemlin32_like(config.scale, config.seed ^ 0x1),
        CollectionKind::PdbsV1 => pdbsv1_like(config.scale, config.seed ^ 0x2),
    };
    Collection::generate(&spec)
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut stats = RunningStats::new();
    for v in values {
        stats.push(v);
    }
    stats.mean()
}

/// **Table 1** — collection statistics (graphs, node/edge ranges, degree µ/σ).
pub fn table1(config: &ExperimentConfig) -> String {
    let mut table = Table::new(
        "Table 1: graph data collections (synthetic analogues)",
        &[
            "collection",
            "graphs",
            "|V| min/max",
            "|E| min/max",
            "deg µ",
            "deg σ",
        ],
    );
    for kind in CollectionKind::ALL {
        let coll = collection(kind, config);
        let stats = coll.stats();
        table.row(vec![
            kind.name().to_string(),
            stats.graphs.to_string(),
            format!("{}/{}", stats.nodes_min, stats.nodes_max),
            format!("{}/{}", stats.edges_min, stats.edges_max),
            num2(stats.degree_mean),
            num2(stats.degree_stddev),
        ]);
    }
    table.render()
}

/// **Fig. 3** — the effect of work stealing with the maximum worker count on a
/// PPIS32 sample: mean match time and the standard deviation of the per-worker
/// search space, with and without stealing.
pub fn fig3(config: &ExperimentConfig) -> String {
    let coll = collection(CollectionKind::Ppis32, config);
    let workers = config.max_workers();
    let mut table = Table::new(
        format!(
            "Fig. 3: work stealing vs none ({} workers, PPIS32 sample)",
            workers
        ),
        &[
            "scheduler",
            "mean match time (s)",
            "mean stddev of worker states",
        ],
    );
    for (label, steal) in [("no work stealing", false), ("work stealing", true)] {
        let records = run_instances_parallel(&coll, Algorithm::RiDs, workers, 4, steal, config);
        table.row(vec![
            label.to_string(),
            secs(mean(records.iter().map(|r| r.match_seconds))),
            num2(mean(records.iter().map(|r| r.worker_states_stddev))),
        ]);
    }
    table.render()
}

/// **Fig. 4** — task-coalescing sweep: mean match time and mean number of
/// steals per task-group size and worker count, per collection.
pub fn fig4(config: &ExperimentConfig) -> String {
    let mut table = Table::new(
        "Fig. 4: task group size vs match time and steals",
        &[
            "collection",
            "workers",
            "group size",
            "mean match time (s)",
            "mean steals",
        ],
    );
    for kind in CollectionKind::ALL {
        let coll = collection(kind, config);
        let algorithm = if kind == CollectionKind::PdbsV1 {
            Algorithm::Ri
        } else {
            Algorithm::RiDs
        };
        for &workers in config.workers.iter().filter(|&&w| w > 1) {
            for &group in &config.task_group_sizes {
                let records =
                    run_instances_parallel(&coll, algorithm, workers, group, true, config);
                table.row(vec![
                    kind.name().to_string(),
                    workers.to_string(),
                    group.to_string(),
                    secs(mean(records.iter().map(|r| r.match_seconds))),
                    num2(mean(records.iter().map(|r| r.steals as f64))),
                ]);
            }
        }
    }
    table.render()
}

fn speedup_rows(
    table: &mut Table,
    collection_name: &str,
    baseline: &[InstanceRecord],
    per_workers: &[(usize, Vec<InstanceRecord>)],
    threshold: f64,
) {
    let totals = totals_by_instance(baseline);
    for (workers, records) in per_workers {
        let (short, long) = split_short_long(records, &totals, threshold);
        let (base_short, base_long) = {
            let (s, l) = split_short_long(baseline, &totals, threshold);
            (
                s.into_iter().cloned().collect::<Vec<_>>(),
                l.into_iter().cloned().collect::<Vec<_>>(),
            )
        };
        let groups: [(&str, Vec<InstanceRecord>, Vec<InstanceRecord>); 3] = [
            ("all", baseline.to_vec(), records.clone()),
            (
                "short",
                base_short,
                short.into_iter().cloned().collect::<Vec<_>>(),
            ),
            (
                "long",
                base_long,
                long.into_iter().cloned().collect::<Vec<_>>(),
            ),
        ];
        for (group_name, base, var) in groups {
            let pairs = speedup_pairs(&base, &var, true);
            let summary = SpeedupSummary::from_pairs(&pairs);
            table.row(vec![
                collection_name.to_string(),
                workers.to_string(),
                group_name.to_string(),
                summary.instances.to_string(),
                num2(summary.avg),
                num2(summary.gmean),
                num2(summary.max),
            ]);
        }
    }
}

/// **Table 2** — speedup of parallel RI over one worker on PDBSv1, for all /
/// short / long instances (avg, gmean, max).
pub fn table2(config: &ExperimentConfig) -> String {
    let coll = collection(CollectionKind::PdbsV1, config);
    // One preparation per instance, every worker count reused (the engine's
    // amortized-preprocessing sweep).
    let mut schedulers = vec![stealing(1)];
    schedulers.extend(
        config
            .workers
            .iter()
            .filter(|&&w| w > 1)
            .map(|&w| stealing(w)),
    );
    let mut matrix = run_instances_matrix(&coll, Algorithm::Ri, &schedulers, config);
    let baseline = matrix.remove(0);
    let per_workers: Vec<(usize, Vec<InstanceRecord>)> = schedulers[1..]
        .iter()
        .zip(matrix)
        .map(|(s, records)| (s.workers(), records))
        .collect();
    let mut table = Table::new(
        "Table 2: speedup of parallel RI over 1 worker (PDBSv1)",
        &[
            "collection",
            "workers",
            "group",
            "instances",
            "avg",
            "gmean",
            "max",
        ],
    );
    speedup_rows(
        &mut table,
        CollectionKind::PdbsV1.name(),
        &baseline,
        &per_workers,
        config.long_threshold_secs,
    );
    table.render()
}

/// **Fig. 5** — number of timed-out instances on PDBSv1: sequential RI (the
/// stand-in for the original RI 3.6) vs parallel RI by worker count.
pub fn fig5(config: &ExperimentConfig) -> String {
    let coll = collection(CollectionKind::PdbsV1, config);
    let mut table = Table::new(
        format!(
            "Fig. 5: timed out instances on PDBSv1 (limit {:.2} s)",
            config.time_limit.as_secs_f64()
        ),
        &["algorithm", "workers", "timed out", "instances"],
    );
    let sequential = run_instances_sequential(&coll, Algorithm::Ri, config);
    table.row(vec![
        "sequential RI".to_string(),
        "1".to_string(),
        sequential
            .iter()
            .filter(|r| r.timed_out)
            .count()
            .to_string(),
        sequential.len().to_string(),
    ]);
    for &workers in &config.workers {
        let records = run_instances_parallel(&coll, Algorithm::Ri, workers, 4, true, config);
        table.row(vec![
            "parallel RI".to_string(),
            workers.to_string(),
            records.iter().filter(|r| r.timed_out).count().to_string(),
            records.len().to_string(),
        ]);
    }
    table.render()
}

/// **Fig. 6** — mean match time on long-running PDBSv1 instances as the worker
/// count grows.
pub fn fig6(config: &ExperimentConfig) -> String {
    let coll = collection(CollectionKind::PdbsV1, config);
    let baseline = run_instances_parallel(&coll, Algorithm::Ri, 1, 4, true, config);
    let totals = totals_by_instance(&baseline);
    let mut table = Table::new(
        "Fig. 6: mean match time on long PDBSv1 instances",
        &["workers", "long instances", "mean match time (s)"],
    );
    for &workers in &config.workers {
        let records = run_instances_parallel(&coll, Algorithm::Ri, workers, 4, true, config);
        let (_, long) = split_short_long(&records, &totals, config.long_threshold_secs);
        table.row(vec![
            workers.to_string(),
            long.len().to_string(),
            secs(mean(long.iter().map(|r| r.match_seconds))),
        ]);
    }
    table.render()
}

/// **Fig. 7** — search-space size and total time of RI-DS, RI-DS-SI and
/// RI-DS-SI-FC on short-running instances of all three collections.
pub fn fig7(config: &ExperimentConfig) -> String {
    let mut table = Table::new(
        "Fig. 7: RI-DS variants on short instances",
        &[
            "collection",
            "algorithm",
            "mean total time (s)",
            "mean search space",
        ],
    );
    for kind in CollectionKind::ALL {
        let coll = collection(kind, config);
        let baseline = run_instances_sequential(&coll, Algorithm::RiDs, config);
        let totals = totals_by_instance(&baseline);
        for algorithm in [Algorithm::RiDs, Algorithm::RiDsSi, Algorithm::RiDsSiFc] {
            let records = run_instances_sequential(&coll, algorithm, config);
            let (short, _) = split_short_long(&records, &totals, config.long_threshold_secs);
            table.row(vec![
                kind.name().to_string(),
                algorithm.name().to_string(),
                secs(mean(short.iter().map(|r| r.total_seconds()))),
                num2(mean(short.iter().map(|r| r.states as f64))),
            ]);
        }
    }
    table.render()
}

/// **Fig. 8** — search space and search speed (states per second) of the RI-DS
/// variants on long-running PPIS32 / GRAEMLIN32 instances, single worker.
pub fn fig8(config: &ExperimentConfig) -> String {
    let mut table = Table::new(
        "Fig. 8: RI-DS variants on long instances (search space and states/s)",
        &[
            "collection",
            "algorithm",
            "long instances",
            "mean search space",
            "mean states/s",
        ],
    );
    for kind in [CollectionKind::Ppis32, CollectionKind::Graemlin32] {
        let coll = collection(kind, config);
        let baseline = run_instances_sequential(&coll, Algorithm::RiDs, config);
        let totals = totals_by_instance(&baseline);
        for algorithm in [Algorithm::RiDs, Algorithm::RiDsSi, Algorithm::RiDsSiFc] {
            let records = run_instances_sequential(&coll, algorithm, config);
            let (_, long) = split_short_long(&records, &totals, config.long_threshold_secs);
            table.row(vec![
                kind.name().to_string(),
                algorithm.name().to_string(),
                long.len().to_string(),
                num2(mean(long.iter().map(|r| r.states as f64))),
                num2(mean(long.iter().map(|r| r.states_per_second()))),
            ]);
        }
    }
    table.render()
}

/// **Fig. 9** — total / match / preprocessing time of the RI-DS variants.
pub fn fig9(config: &ExperimentConfig) -> String {
    let mut table = Table::new(
        "Fig. 9: time breakdown of the RI-DS variants",
        &[
            "collection",
            "algorithm",
            "mean total (s)",
            "mean match (s)",
            "mean preprocessing (s)",
        ],
    );
    for kind in [CollectionKind::Ppis32, CollectionKind::Graemlin32] {
        let coll = collection(kind, config);
        for algorithm in [Algorithm::RiDs, Algorithm::RiDsSi, Algorithm::RiDsSiFc] {
            let records = run_instances_sequential(&coll, algorithm, config);
            table.row(vec![
                kind.name().to_string(),
                algorithm.name().to_string(),
                secs(mean(records.iter().map(|r| r.total_seconds()))),
                secs(mean(records.iter().map(|r| r.match_seconds))),
                secs(mean(records.iter().map(|r| r.preprocess_seconds))),
            ]);
        }
    }
    table.render()
}

/// **Fig. 10** — mean total time of parallel RI-DS-SI-FC, parallel RI-DS and
/// sequential RI-DS by worker count, on GRAEMLIN32 and PPIS32.
pub fn fig10(config: &ExperimentConfig) -> String {
    let mut table = Table::new(
        "Fig. 10: total time of RI-DS variants by worker count",
        &["collection", "algorithm", "workers", "mean total time (s)"],
    );
    for kind in [CollectionKind::Graemlin32, CollectionKind::Ppis32] {
        let coll = collection(kind, config);
        let sequential = run_instances_sequential(&coll, Algorithm::RiDs, config);
        table.row(vec![
            kind.name().to_string(),
            "RI-DS 3.51 (sequential stand-in)".to_string(),
            "1".to_string(),
            secs(mean(sequential.iter().map(|r| r.total_seconds()))),
        ]);
        for (label, algorithm) in [
            ("parallel RI-DS", Algorithm::RiDs),
            ("parallel RI-DS-SI-FC", Algorithm::RiDsSiFc),
        ] {
            for &workers in &config.workers {
                let records = run_instances_parallel(&coll, algorithm, workers, 4, true, config);
                table.row(vec![
                    kind.name().to_string(),
                    label.to_string(),
                    workers.to_string(),
                    secs(mean(records.iter().map(|r| r.total_seconds()))),
                ]);
            }
        }
    }
    table.render()
}

/// **Fig. 11** — Fig. 10 split between short and long instances.
pub fn fig11(config: &ExperimentConfig) -> String {
    let mut table = Table::new(
        "Fig. 11: total time by worker count, split short/long",
        &[
            "collection",
            "algorithm",
            "workers",
            "group",
            "instances",
            "mean total time (s)",
        ],
    );
    for kind in [CollectionKind::Graemlin32, CollectionKind::Ppis32] {
        let coll = collection(kind, config);
        let baseline = run_instances_sequential(&coll, Algorithm::RiDs, config);
        let totals = totals_by_instance(&baseline);
        for (label, algorithm) in [
            ("parallel RI-DS", Algorithm::RiDs),
            ("parallel RI-DS-SI-FC", Algorithm::RiDsSiFc),
        ] {
            for &workers in &config.workers {
                let records = run_instances_parallel(&coll, algorithm, workers, 4, true, config);
                let (short, long) = split_short_long(&records, &totals, config.long_threshold_secs);
                for (group, subset) in [("short", short), ("long", long)] {
                    table.row(vec![
                        kind.name().to_string(),
                        label.to_string(),
                        workers.to_string(),
                        group.to_string(),
                        subset.len().to_string(),
                        secs(mean(subset.iter().map(|r| r.total_seconds()))),
                    ]);
                }
            }
        }
    }
    table.render()
}

/// **Fig. 12** — mean search-space size of RI-DS vs RI-DS-SI-FC, split between
/// short and long instances of GRAEMLIN32 and PPIS32.
pub fn fig12(config: &ExperimentConfig) -> String {
    let mut table = Table::new(
        "Fig. 12: search space of RI-DS vs RI-DS-SI-FC, short/long",
        &[
            "collection",
            "algorithm",
            "group",
            "instances",
            "mean search space",
        ],
    );
    for kind in [CollectionKind::Graemlin32, CollectionKind::Ppis32] {
        let coll = collection(kind, config);
        let baseline = run_instances_sequential(&coll, Algorithm::RiDs, config);
        let totals = totals_by_instance(&baseline);
        for algorithm in [Algorithm::RiDs, Algorithm::RiDsSiFc] {
            let records = run_instances_sequential(&coll, algorithm, config);
            let (short, long) = split_short_long(&records, &totals, config.long_threshold_secs);
            for (group, subset) in [("short", short), ("long", long)] {
                table.row(vec![
                    kind.name().to_string(),
                    algorithm.name().to_string(),
                    group.to_string(),
                    subset.len().to_string(),
                    num2(mean(subset.iter().map(|r| r.states as f64))),
                ]);
            }
        }
    }
    table.render()
}

/// **Table 3** — speedup of parallel RI-DS-SI-FC over itself with one worker on
/// GRAEMLIN32 and PPIS32, for all / short / long instances.
pub fn table3(config: &ExperimentConfig) -> String {
    let mut table = Table::new(
        "Table 3: speedup of parallel RI-DS-SI-FC over 1 worker",
        &[
            "collection",
            "workers",
            "group",
            "instances",
            "avg",
            "gmean",
            "max",
        ],
    );
    for kind in [CollectionKind::Graemlin32, CollectionKind::Ppis32] {
        let coll = collection(kind, config);
        let mut schedulers = vec![stealing(1)];
        schedulers.extend(
            config
                .workers
                .iter()
                .filter(|&&w| w > 1)
                .map(|&w| stealing(w)),
        );
        let mut matrix = run_instances_matrix(&coll, Algorithm::RiDsSiFc, &schedulers, config);
        let baseline = matrix.remove(0);
        let per_workers: Vec<(usize, Vec<InstanceRecord>)> = schedulers[1..]
            .iter()
            .zip(matrix)
            .map(|(s, records)| (s.workers(), records))
            .collect();
        speedup_rows(
            &mut table,
            kind.name(),
            &baseline,
            &per_workers,
            config.long_threshold_secs,
        );
    }
    table.render()
}

/// A named experiment: renders one table / figure from a configuration.
pub type ExperimentFn = fn(&ExperimentConfig) -> String;

/// Every experiment in paper order, concatenated.
pub fn run_all(config: &ExperimentConfig) -> String {
    let experiments: Vec<(&str, ExperimentFn)> = all_experiments();
    let mut out = String::new();
    for (name, function) in experiments {
        out.push_str(&format!("\n### {name}\n\n"));
        out.push_str(&function(config));
    }
    out
}

/// Name → function table for the CLI.
pub fn all_experiments() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("table1", table1),
        ("fig3", fig3),
        ("fig4", fig4),
        ("table2", table2),
        ("fig5", fig5),
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("table3", table3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-test the cheap experiments end to end; the expensive sweeps are
    /// covered by dedicated tests below with an even smaller configuration.
    #[test]
    fn table1_renders_all_collections() {
        let text = table1(&ExperimentConfig::smoke());
        for name in ["PPIS32", "GRAEMLIN32", "PDBSv1"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn fig3_reports_both_schedulers() {
        let text = fig3(&ExperimentConfig::smoke());
        assert!(text.contains("no work stealing"));
        assert!(text.contains("work stealing"));
    }

    #[test]
    fn table2_and_table3_have_speedup_groups() {
        let config = ExperimentConfig::smoke();
        let t2 = table2(&config);
        assert!(t2.contains("all") && t2.contains("short") && t2.contains("long"));
        let t3 = table3(&config);
        assert!(t3.contains("GRAEMLIN32") && t3.contains("PPIS32"));
    }

    #[test]
    fn fig7_lists_all_three_variants() {
        let text = fig7(&ExperimentConfig::smoke());
        assert!(text.contains("RI-DS-SI-FC"));
        assert!(text.contains("RI-DS-SI"));
        assert!(text.contains("RI-DS"));
    }

    #[test]
    fn experiment_registry_is_complete() {
        let names: Vec<&str> = all_experiments().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 13);
        assert!(names.contains(&"table1"));
        assert!(names.contains(&"fig12"));
        assert!(names.contains(&"table3"));
    }
}

//! Experiment harness reproducing every table and figure of the paper.
//!
//! The paper's evaluation (Section 5) consists of three tables and ten figures.
//! For each of them this crate provides a function that generates the
//! appropriate synthetic workload, runs the relevant algorithm variants and
//! prints the same rows / series the paper reports.  The `experiments` binary
//! exposes them as subcommands (`cargo run --release -p sge-bench --bin
//! experiments -- all`), and the Criterion benches under `benches/` exercise
//! scaled-down versions of the same code paths so regressions are caught by
//! `cargo bench`.
//!
//! Absolute running times differ from the paper (different hardware, synthetic
//! data, and — on single-core CI hosts — no true parallelism); the quantities
//! whose *shape* the reproduction targets are: which algorithm variant wins,
//! how the search space shrinks from RI-DS to RI-DS-SI-FC, how steal counts
//! react to the task-group size, and how speedups split between short and long
//! instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_report;
pub mod config;
pub mod experiments;
pub mod records;
pub mod report;

pub use config::ExperimentConfig;
pub use records::{
    run_instances, run_instances_matrix, run_instances_parallel, run_instances_sequential,
    InstanceRecord,
};
pub use report::Table;

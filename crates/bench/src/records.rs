//! Per-instance measurement records and batch runners.
//!
//! All runners drive the unified [`sge::Engine`]: each instance is prepared
//! **once** and then executed under whatever scheduler(s) the experiment
//! sweeps — the paper's one-target/many-runs workloads amortize
//! preprocessing exactly the same way.

use crate::config::ExperimentConfig;
use sge::{Engine, EnumerationOutcome, RunConfig, Scheduler};
use sge_datasets::Collection;
use sge_ri::Algorithm;
use sge_ri::CandidateMode;
use std::collections::HashMap;

/// One measurement: an (instance, algorithm, scheduler) combination.
#[derive(Clone, Debug)]
pub struct InstanceRecord {
    /// Instance identifier (from the dataset crate).
    pub instance_id: String,
    /// Collection name.
    pub collection: String,
    /// Algorithm variant.
    pub algorithm: Algorithm,
    /// Scheduler that produced the record.
    pub scheduler: Scheduler,
    /// Worker count (1 for the sequential scheduler).
    pub workers: usize,
    /// Task-group size used (0 outside the work-stealing scheduler).
    pub task_group_size: usize,
    /// Whether work stealing was enabled (false outside work stealing).
    pub stealing: bool,
    /// Number of embeddings found (a lower bound when `timed_out`).
    pub matches: u64,
    /// Search-space size (states visited).
    pub states: u64,
    /// Preprocessing seconds (paid once per prepared instance).
    pub preprocess_seconds: f64,
    /// Matching seconds.
    pub match_seconds: f64,
    /// Whether the per-instance time limit fired.
    pub timed_out: bool,
    /// Successful steals (0 outside the work-stealing scheduler).
    pub steals: u64,
    /// Standard deviation of per-worker states (0 for sequential runs).
    pub worker_states_stddev: f64,
}

impl InstanceRecord {
    fn from_outcome(
        instance_id: &str,
        collection: &str,
        outcome: &EnumerationOutcome,
    ) -> InstanceRecord {
        let (task_group_size, stealing) = match outcome.scheduler {
            Scheduler::WorkStealing {
                task_group_size,
                stealing,
                ..
            } => (task_group_size, stealing),
            _ => (0, false),
        };
        InstanceRecord {
            instance_id: instance_id.to_string(),
            collection: collection.to_string(),
            algorithm: outcome.algorithm,
            scheduler: outcome.scheduler,
            workers: outcome.workers,
            task_group_size,
            stealing,
            matches: outcome.matches,
            states: outcome.states,
            preprocess_seconds: outcome.preprocess_seconds,
            match_seconds: outcome.match_seconds,
            timed_out: outcome.timed_out,
            steals: outcome.steals,
            worker_states_stddev: outcome.worker_states_stddev,
        }
    }

    /// Total (preprocessing + matching) seconds.
    pub fn total_seconds(&self) -> f64 {
        self.preprocess_seconds + self.match_seconds
    }

    /// States per matching second.
    pub fn states_per_second(&self) -> f64 {
        if self.match_seconds > 0.0 {
            self.states as f64 / self.match_seconds
        } else {
            0.0
        }
    }
}

/// Iterates the instances of a collection honoring the configured cap.
pub fn instances<'a>(
    collection: &'a Collection,
    config: &ExperimentConfig,
) -> impl Iterator<Item = &'a sge_datasets::Instance> {
    let cap = config.max_instances.unwrap_or(usize::MAX);
    collection.instances.iter().take(cap)
}

/// Runs one scheduler over (a capped number of) the collection's instances
/// and returns one record per instance.
pub fn run_instances(
    collection: &Collection,
    algorithm: Algorithm,
    scheduler: Scheduler,
    config: &ExperimentConfig,
) -> Vec<InstanceRecord> {
    instances(collection, config)
        .map(|instance| {
            let target = collection.target_of(instance);
            let engine = Engine::prepare_planned(
                &instance.pattern,
                target,
                algorithm,
                CandidateMode::default(),
                config.strategy,
            );
            let outcome = engine.run(&RunConfig::new(scheduler).with_time_limit(config.time_limit));
            InstanceRecord::from_outcome(&instance.id, collection.kind.name(), &outcome)
        })
        .collect()
}

/// Runs *several* schedulers over the collection, preparing every instance
/// exactly once — the amortized sweep used by the speedup tables.  Returns
/// one record vector per scheduler, in input order.
pub fn run_instances_matrix(
    collection: &Collection,
    algorithm: Algorithm,
    schedulers: &[Scheduler],
    config: &ExperimentConfig,
) -> Vec<Vec<InstanceRecord>> {
    let mut per_scheduler: Vec<Vec<InstanceRecord>> =
        schedulers.iter().map(|_| Vec::new()).collect();
    for instance in instances(collection, config) {
        let target = collection.target_of(instance);
        let engine = Engine::prepare_planned(
            &instance.pattern,
            target,
            algorithm,
            CandidateMode::default(),
            config.strategy,
        );
        for (records, &scheduler) in per_scheduler.iter_mut().zip(schedulers) {
            let outcome = engine.run(&RunConfig::new(scheduler).with_time_limit(config.time_limit));
            records.push(InstanceRecord::from_outcome(
                &instance.id,
                collection.kind.name(),
                &outcome,
            ));
        }
    }
    per_scheduler
}

/// Runs the sequential matcher over the collection's instances.
pub fn run_instances_sequential(
    collection: &Collection,
    algorithm: Algorithm,
    config: &ExperimentConfig,
) -> Vec<InstanceRecord> {
    run_instances(collection, algorithm, Scheduler::Sequential, config)
}

/// Runs the work-stealing scheduler over the collection's instances.
pub fn run_instances_parallel(
    collection: &Collection,
    algorithm: Algorithm,
    workers: usize,
    task_group_size: usize,
    stealing: bool,
    config: &ExperimentConfig,
) -> Vec<InstanceRecord> {
    run_instances(
        collection,
        algorithm,
        Scheduler::WorkStealing {
            workers,
            task_group_size,
            stealing,
        },
        config,
    )
}

/// Splits records into `(short, long)` according to a map of baseline total
/// times per instance id and the configured threshold — the paper's
/// "< 1 second" / "≥ 1 second" classification, with the threshold scaled to
/// the synthetic collections.
pub fn split_short_long<'a>(
    records: &'a [InstanceRecord],
    baseline_totals: &HashMap<String, f64>,
    threshold: f64,
) -> (Vec<&'a InstanceRecord>, Vec<&'a InstanceRecord>) {
    let mut short = Vec::new();
    let mut long = Vec::new();
    for record in records {
        let baseline = baseline_totals
            .get(&record.instance_id)
            .copied()
            .unwrap_or(0.0);
        if baseline >= threshold {
            long.push(record);
        } else {
            short.push(record);
        }
    }
    (short, long)
}

/// Builds the `instance id -> total seconds` map from a set of records.
pub fn totals_by_instance(records: &[InstanceRecord]) -> HashMap<String, f64> {
    records
        .iter()
        .map(|r| (r.instance_id.clone(), r.total_seconds()))
        .collect()
}

/// Pairs `(baseline_time, variant_time)` per instance id, for speedup
/// summaries. Only instances present in both sets are paired.
pub fn speedup_pairs(
    baseline: &[InstanceRecord],
    variant: &[InstanceRecord],
    use_match_time: bool,
) -> Vec<(f64, f64)> {
    let index: HashMap<&str, &InstanceRecord> = baseline
        .iter()
        .map(|r| (r.instance_id.as_str(), r))
        .collect();
    variant
        .iter()
        .filter_map(|v| {
            index.get(v.instance_id.as_str()).map(|b| {
                if use_match_time {
                    (b.match_seconds, v.match_seconds)
                } else {
                    (b.total_seconds(), v.total_seconds())
                }
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_datasets::pdbsv1_like;

    fn tiny_collection() -> Collection {
        Collection::generate(&pdbsv1_like(0.1, 5))
    }

    #[test]
    fn sequential_and_parallel_records_agree_on_counts() {
        let collection = tiny_collection();
        let config = ExperimentConfig::smoke();
        let sequential = run_instances_sequential(&collection, Algorithm::RiDs, &config);
        let parallel = run_instances_parallel(&collection, Algorithm::RiDs, 2, 4, true, &config);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(parallel.iter()) {
            assert_eq!(s.instance_id, p.instance_id);
            if !s.timed_out && !p.timed_out {
                assert_eq!(s.matches, p.matches, "instance {}", s.instance_id);
                assert_eq!(s.states, p.states, "instance {}", s.instance_id);
            }
            assert!(s.total_seconds() >= 0.0);
            assert!(p.states_per_second() >= 0.0);
        }
    }

    #[test]
    fn matrix_prepares_once_and_agrees_with_separate_runs() {
        let collection = tiny_collection();
        let config = ExperimentConfig::smoke();
        let schedulers = [
            Scheduler::Sequential,
            Scheduler::work_stealing(2),
            Scheduler::Rayon { workers: 2 },
        ];
        let matrix = run_instances_matrix(&collection, Algorithm::Ri, &schedulers, &config);
        assert_eq!(matrix.len(), schedulers.len());
        for records in &matrix[1..] {
            assert_eq!(records.len(), matrix[0].len());
            for (a, b) in matrix[0].iter().zip(records.iter()) {
                if !a.timed_out && !b.timed_out {
                    assert_eq!(a.matches, b.matches, "instance {}", a.instance_id);
                }
                // The amortized sweep reports the same preprocessing cost for
                // every scheduler of one instance.
                assert_eq!(a.preprocess_seconds, b.preprocess_seconds);
            }
        }
    }

    #[test]
    fn short_long_split_partitions_records() {
        let collection = tiny_collection();
        let config = ExperimentConfig::smoke();
        let records = run_instances_sequential(&collection, Algorithm::Ri, &config);
        let totals = totals_by_instance(&records);
        let (short, long) = split_short_long(&records, &totals, 0.0);
        // Threshold 0: everything is "long".
        assert_eq!(long.len(), records.len());
        assert!(short.is_empty());
        let (short, long) = split_short_long(&records, &totals, f64::INFINITY);
        assert_eq!(short.len(), records.len());
        assert!(long.is_empty());
    }

    #[test]
    fn speedup_pairs_align_by_instance() {
        let collection = tiny_collection();
        let config = ExperimentConfig::smoke();
        let baseline = run_instances_sequential(&collection, Algorithm::Ri, &config);
        let variant = run_instances_sequential(&collection, Algorithm::Ri, &config);
        let pairs = speedup_pairs(&baseline, &variant, false);
        assert_eq!(pairs.len(), baseline.len());
        for (b, v) in pairs {
            assert!(b >= 0.0 && v >= 0.0);
        }
    }
}

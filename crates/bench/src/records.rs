//! Per-instance measurement records and batch runners.

use crate::config::ExperimentConfig;
use serde::{Deserialize, Serialize};
use sge_datasets::Collection;
use sge_parallel::{enumerate_parallel, ParallelConfig};
use sge_ri::{enumerate, Algorithm, MatchConfig};
use std::collections::HashMap;

/// One measurement: an (instance, algorithm, scheduler) combination.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InstanceRecord {
    /// Instance identifier (from the dataset crate).
    pub instance_id: String,
    /// Collection name.
    pub collection: String,
    /// Algorithm variant.
    pub algorithm: Algorithm,
    /// Worker count (1 for the sequential matcher).
    pub workers: usize,
    /// Task-group size used (0 for the sequential matcher).
    pub task_group_size: usize,
    /// Whether work stealing was enabled (false for sequential runs).
    pub stealing: bool,
    /// Number of embeddings found (a lower bound when `timed_out`).
    pub matches: u64,
    /// Search-space size (states visited).
    pub states: u64,
    /// Preprocessing seconds.
    pub preprocess_seconds: f64,
    /// Matching seconds.
    pub match_seconds: f64,
    /// Whether the per-instance time limit fired.
    pub timed_out: bool,
    /// Successful steals (0 for sequential runs).
    pub steals: u64,
    /// Standard deviation of per-worker states (0 for sequential runs).
    pub worker_states_stddev: f64,
}

impl InstanceRecord {
    /// Total (preprocessing + matching) seconds.
    pub fn total_seconds(&self) -> f64 {
        self.preprocess_seconds + self.match_seconds
    }

    /// States per matching second.
    pub fn states_per_second(&self) -> f64 {
        if self.match_seconds > 0.0 {
            self.states as f64 / self.match_seconds
        } else {
            0.0
        }
    }
}

/// Iterates the instances of a collection honoring the configured cap.
pub fn instances<'a>(
    collection: &'a Collection,
    config: &ExperimentConfig,
) -> impl Iterator<Item = &'a sge_datasets::Instance> {
    let cap = config.max_instances.unwrap_or(usize::MAX);
    collection.instances.iter().take(cap)
}

/// Runs the sequential matcher over (a capped number of) the collection's
/// instances and returns one record per instance.
pub fn run_instances_sequential(
    collection: &Collection,
    algorithm: Algorithm,
    config: &ExperimentConfig,
) -> Vec<InstanceRecord> {
    instances(collection, config)
        .map(|instance| {
            let target = collection.target_of(instance);
            let result = enumerate(
                &instance.pattern,
                target,
                &MatchConfig::new(algorithm).with_time_limit(config.time_limit),
            );
            InstanceRecord {
                instance_id: instance.id.clone(),
                collection: collection.kind.name().to_string(),
                algorithm,
                workers: 1,
                task_group_size: 0,
                stealing: false,
                matches: result.matches,
                states: result.states,
                preprocess_seconds: result.preprocess_seconds,
                match_seconds: result.match_seconds,
                timed_out: result.timed_out,
                steals: 0,
                worker_states_stddev: 0.0,
            }
        })
        .collect()
}

/// Runs the parallel matcher over the collection's instances.
pub fn run_instances_parallel(
    collection: &Collection,
    algorithm: Algorithm,
    workers: usize,
    task_group_size: usize,
    stealing: bool,
    config: &ExperimentConfig,
) -> Vec<InstanceRecord> {
    instances(collection, config)
        .map(|instance| {
            let target = collection.target_of(instance);
            let parallel_config = ParallelConfig::new(algorithm)
                .with_workers(workers)
                .with_task_group_size(task_group_size)
                .with_stealing(stealing)
                .with_time_limit(config.time_limit);
            let result = enumerate_parallel(&instance.pattern, target, &parallel_config);
            InstanceRecord {
                instance_id: instance.id.clone(),
                collection: collection.kind.name().to_string(),
                algorithm,
                workers,
                task_group_size,
                stealing,
                matches: result.matches,
                states: result.states,
                preprocess_seconds: result.preprocess_seconds,
                match_seconds: result.match_seconds,
                timed_out: result.timed_out,
                steals: result.steals,
                worker_states_stddev: result.worker_states_stddev,
            }
        })
        .collect()
}

/// Splits records into `(short, long)` according to a map of baseline total
/// times per instance id and the configured threshold — the paper's
/// "< 1 second" / "≥ 1 second" classification, with the threshold scaled to
/// the synthetic collections.
pub fn split_short_long<'a>(
    records: &'a [InstanceRecord],
    baseline_totals: &HashMap<String, f64>,
    threshold: f64,
) -> (Vec<&'a InstanceRecord>, Vec<&'a InstanceRecord>) {
    let mut short = Vec::new();
    let mut long = Vec::new();
    for record in records {
        let baseline = baseline_totals
            .get(&record.instance_id)
            .copied()
            .unwrap_or(0.0);
        if baseline >= threshold {
            long.push(record);
        } else {
            short.push(record);
        }
    }
    (short, long)
}

/// Builds the `instance id -> total seconds` map from a set of records.
pub fn totals_by_instance(records: &[InstanceRecord]) -> HashMap<String, f64> {
    records
        .iter()
        .map(|r| (r.instance_id.clone(), r.total_seconds()))
        .collect()
}

/// Pairs `(baseline_time, variant_time)` per instance id, for speedup
/// summaries. Only instances present in both sets are paired.
pub fn speedup_pairs(
    baseline: &[InstanceRecord],
    variant: &[InstanceRecord],
    use_match_time: bool,
) -> Vec<(f64, f64)> {
    let index: HashMap<&str, &InstanceRecord> = baseline
        .iter()
        .map(|r| (r.instance_id.as_str(), r))
        .collect();
    variant
        .iter()
        .filter_map(|v| {
            index.get(v.instance_id.as_str()).map(|b| {
                if use_match_time {
                    (b.match_seconds, v.match_seconds)
                } else {
                    (b.total_seconds(), v.total_seconds())
                }
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_datasets::pdbsv1_like;

    fn tiny_collection() -> Collection {
        Collection::generate(&pdbsv1_like(0.1, 5))
    }

    #[test]
    fn sequential_and_parallel_records_agree_on_counts() {
        let collection = tiny_collection();
        let config = ExperimentConfig::smoke();
        let sequential = run_instances_sequential(&collection, Algorithm::RiDs, &config);
        let parallel =
            run_instances_parallel(&collection, Algorithm::RiDs, 2, 4, true, &config);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(parallel.iter()) {
            assert_eq!(s.instance_id, p.instance_id);
            if !s.timed_out && !p.timed_out {
                assert_eq!(s.matches, p.matches, "instance {}", s.instance_id);
                assert_eq!(s.states, p.states, "instance {}", s.instance_id);
            }
            assert!(s.total_seconds() >= 0.0);
            assert!(p.states_per_second() >= 0.0);
        }
    }

    #[test]
    fn short_long_split_partitions_records() {
        let collection = tiny_collection();
        let config = ExperimentConfig::smoke();
        let records = run_instances_sequential(&collection, Algorithm::Ri, &config);
        let totals = totals_by_instance(&records);
        let (short, long) = split_short_long(&records, &totals, 0.0);
        // Threshold 0: everything is "long".
        assert_eq!(long.len(), records.len());
        assert!(short.is_empty());
        let (short, long) = split_short_long(&records, &totals, f64::INFINITY);
        assert_eq!(short.len(), records.len());
        assert!(long.is_empty());
    }

    #[test]
    fn speedup_pairs_align_by_instance() {
        let collection = tiny_collection();
        let config = ExperimentConfig::smoke();
        let baseline = run_instances_sequential(&collection, Algorithm::Ri, &config);
        let variant = run_instances_sequential(&collection, Algorithm::Ri, &config);
        let pairs = speedup_pairs(&baseline, &variant, false);
        assert_eq!(pairs.len(), baseline.len());
        for (b, v) in pairs {
            assert!(b >= 0.0 && v >= 0.0);
        }
    }
}

//! Plain-text table formatting for the experiment output.

/// A simple fixed-width text table (headers + rows of strings).
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width does not match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title);
        out.push_str(" ==\n");
        for (i, header) in self.headers.iter().enumerate() {
            out.push_str(&format!("{:>width$}", header, width = widths[i] + 2));
        }
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>()));
        out.push('\n');
        for row in &self.rows {
            for i in 0..cols {
                out.push_str(&format!("{:>width$}", row[i], width = widths[i] + 2));
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 4 decimal places (times in seconds).
pub fn secs(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 2 decimal places (speedups, means).
pub fn num2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut table = Table::new("demo", &["name", "value"]);
        table.row(vec!["x".into(), "1".into()]);
        table.row(vec!["longer-name".into(), "2.5".into()]);
        let text = table.render();
        assert!(text.contains("demo"));
        assert!(text.contains("longer-name"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        // Every data line has the same width.
        let lines: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(lines[1].len(), lines[2].len().max(lines[1].len()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_row_width_panics() {
        let mut table = Table::new("demo", &["a", "b"]);
        table.row(vec!["only-one".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(secs(0.123456), "0.1235");
        assert_eq!(num2(2.46913), "2.47");
    }
}

//! The three synthetic data collections and their instance sets.

use crate::pattern_gen::{extract_pattern, DensityClass};
use crate::target_gen::{generate_target, LabelDistribution, TargetSpec};
use sge_graph::stats::CollectionStats;
use sge_graph::Graph;

/// Which of the paper's collections a synthetic collection emulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectionKind {
    /// Dense protein–protein interaction networks, 32 normally-distributed labels.
    Ppis32,
    /// Microbial networks, 32 uniformly-distributed labels.
    Graemlin32,
    /// Very sparse RNA/DNA/protein graphs.
    PdbsV1,
}

impl CollectionKind {
    /// The collection name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            CollectionKind::Ppis32 => "PPIS32",
            CollectionKind::Graemlin32 => "GRAEMLIN32",
            CollectionKind::PdbsV1 => "PDBSv1",
        }
    }

    /// All three collections.
    pub const ALL: [CollectionKind; 3] = [
        CollectionKind::Ppis32,
        CollectionKind::Graemlin32,
        CollectionKind::PdbsV1,
    ];
}

impl std::fmt::Display for CollectionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full description of a synthetic collection: target specs plus the pattern
/// extraction plan.
#[derive(Clone, Debug)]
pub struct CollectionSpec {
    /// Which paper collection this emulates.
    pub kind: CollectionKind,
    /// One spec per target graph.
    pub targets: Vec<TargetSpec>,
    /// Pattern sizes, in directed edges (the paper uses 4, 8, …, 256).
    pub pattern_edges: Vec<usize>,
    /// Patterns extracted per (target, size) combination.
    pub patterns_per_size: usize,
    /// Master seed.
    pub seed: u64,
}

/// One query instance: a pattern plus the index of the target it is matched
/// against.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Stable identifier (collection / target / size / replica).
    pub id: String,
    /// Index into [`Collection::targets`].
    pub target_index: usize,
    /// Requested pattern size in edges.
    pub requested_edges: usize,
    /// Density class of the extracted pattern.
    pub class: DensityClass,
    /// The pattern graph.
    pub pattern: Graph,
}

/// A generated collection: targets plus instances.
#[derive(Clone, Debug)]
pub struct Collection {
    /// Which paper collection this emulates.
    pub kind: CollectionKind,
    /// Target graphs.
    pub targets: Vec<Graph>,
    /// Query instances.
    pub instances: Vec<Instance>,
}

impl Collection {
    /// Generates the collection described by `spec` (deterministic in
    /// `spec.seed`).
    pub fn generate(spec: &CollectionSpec) -> Collection {
        let mut targets = Vec::with_capacity(spec.targets.len());
        for (i, target_spec) in spec.targets.iter().enumerate() {
            let name = format!("{}-target-{i}", spec.kind.name());
            targets.push(generate_target(
                target_spec,
                spec.seed.wrapping_add(i as u64 * 7919),
                &name,
            ));
        }

        let mut instances = Vec::new();
        for (t_idx, target) in targets.iter().enumerate() {
            for &edges in &spec.pattern_edges {
                for replica in 0..spec.patterns_per_size {
                    let seed = spec
                        .seed
                        .wrapping_mul(31)
                        .wrapping_add((t_idx * 1000 + edges * 10 + replica) as u64);
                    if let Some(pattern) = extract_pattern(target, edges, seed) {
                        instances.push(Instance {
                            id: format!("{}/t{}/e{}/r{}", spec.kind.name(), t_idx, edges, replica),
                            target_index: t_idx,
                            requested_edges: edges,
                            class: DensityClass::of(&pattern),
                            pattern,
                        });
                    }
                }
            }
        }

        Collection {
            kind: spec.kind,
            targets,
            instances,
        }
    }

    /// The target graph an instance is matched against.
    pub fn target_of(&self, instance: &Instance) -> &Graph {
        &self.targets[instance.target_index]
    }

    /// Table 1-style aggregate statistics of the target graphs.
    pub fn stats(&self) -> CollectionStats {
        CollectionStats::of(self.targets.iter())
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// `true` when the collection has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(8)
}

/// Spec emulating PPIS32: few large dense targets, 32 normally-distributed
/// node labels, heavy-tailed degrees.  `scale` multiplies the node counts
/// (1.0 ≈ a laptop-friendly reduction of the original sizes).
pub fn ppis32_like(scale: f64, seed: u64) -> CollectionSpec {
    let sizes = [400usize, 550, 700, 900];
    CollectionSpec {
        kind: CollectionKind::Ppis32,
        targets: sizes
            .iter()
            .map(|&n| TargetSpec {
                nodes: scaled(n, scale),
                avg_out_degree: 10.0,
                weight_sigma: 1.1,
                labels: 32,
                label_distribution: LabelDistribution::Normal,
                edge_labels: 1,
            })
            .collect(),
        pattern_edges: vec![4, 8, 16, 32, 64],
        patterns_per_size: 2,
        seed,
    }
}

/// Spec emulating GRAEMLIN32: medium dense microbial networks, 32 uniform
/// labels.
pub fn graemlin32_like(scale: f64, seed: u64) -> CollectionSpec {
    let sizes = [250usize, 400, 550, 700];
    CollectionSpec {
        kind: CollectionKind::Graemlin32,
        targets: sizes
            .iter()
            .map(|&n| TargetSpec {
                nodes: scaled(n, scale),
                avg_out_degree: 14.0,
                weight_sigma: 0.9,
                labels: 32,
                label_distribution: LabelDistribution::Uniform,
                edge_labels: 1,
            })
            .collect(),
        pattern_edges: vec![4, 8, 16, 32, 64],
        patterns_per_size: 2,
        seed,
    }
}

/// Spec emulating PDBSv1: many very sparse targets of widely varying size,
/// a small label alphabet.
pub fn pdbsv1_like(scale: f64, seed: u64) -> CollectionSpec {
    let sizes = [150usize, 300, 600, 1000, 1600, 2400];
    CollectionSpec {
        kind: CollectionKind::PdbsV1,
        targets: sizes
            .iter()
            .map(|&n| TargetSpec {
                nodes: scaled(n, scale),
                avg_out_degree: 1.6,
                weight_sigma: 0.4,
                labels: 8,
                label_distribution: LabelDistribution::Uniform,
                edge_labels: 1,
            })
            .collect(),
        pattern_edges: vec![4, 8, 16, 32],
        patterns_per_size: 2,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = graemlin32_like(0.2, 99);
        let a = Collection::generate(&spec);
        let b = Collection::generate(&spec);
        assert_eq!(a.targets, b.targets);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn all_kinds_generate_nonempty_collections() {
        for (kind, spec) in [
            (CollectionKind::Ppis32, ppis32_like(0.15, 1)),
            (CollectionKind::Graemlin32, graemlin32_like(0.15, 2)),
            (CollectionKind::PdbsV1, pdbsv1_like(0.15, 3)),
        ] {
            let collection = Collection::generate(&spec);
            assert_eq!(collection.kind, kind);
            assert!(!collection.targets.is_empty());
            assert!(!collection.is_empty(), "{kind} has no instances");
            let stats = collection.stats();
            assert!(stats.nodes_max >= stats.nodes_min);
            assert!(stats.degree_mean > 0.0);
        }
    }

    #[test]
    fn ppis_is_denser_than_pdbs() {
        let ppis = Collection::generate(&ppis32_like(0.2, 5));
        let pdbs = Collection::generate(&pdbsv1_like(0.2, 5));
        assert!(
            ppis.stats().degree_mean > 2.0 * pdbs.stats().degree_mean,
            "PPIS32-like targets must be much denser than PDBSv1-like ones"
        );
    }

    #[test]
    fn instances_reference_valid_targets_and_embed() {
        let collection = Collection::generate(&graemlin32_like(0.15, 7));
        for instance in collection.instances.iter().take(6) {
            assert!(instance.target_index < collection.targets.len());
            let target = collection.target_of(instance);
            let matches = sge_ri::enumerate(
                &instance.pattern,
                target,
                &sge_ri::MatchConfig::new(sge_ri::Algorithm::RiDsSiFc).with_max_matches(1),
            )
            .matches;
            assert!(matches >= 1, "instance {} does not embed", instance.id);
        }
    }

    #[test]
    fn instance_ids_are_unique() {
        let collection = Collection::generate(&pdbsv1_like(0.2, 11));
        let mut ids: Vec<&str> = collection.instances.iter().map(|i| i.id.as_str()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn scale_changes_target_sizes() {
        let small = Collection::generate(&ppis32_like(0.1, 17));
        let large = Collection::generate(&ppis32_like(0.3, 17));
        assert!(large.stats().nodes_max > small.stats().nodes_max);
    }
}

//! Synthetic biochemical-style data collections.
//!
//! The paper evaluates on three collections from the original RI distribution:
//! **PPIS32** (large, dense protein–protein interaction networks with 32
//! normally-distributed node labels), **GRAEMLIN32** (medium/large microbial
//! networks with 32 uniformly-distributed labels) and **PDBSv1** (large, very
//! sparse RNA/DNA/protein graphs).  Those files are not redistributable here,
//! so this crate generates *synthetic analogues* that preserve what the
//! algorithms actually observe:
//!
//! * node/edge counts and the heavy-tailed degree distribution (Chung–Lu style
//!   weighted random graphs with symmetric directed edges, matching the shape
//!   of Table 1),
//! * the number of distinct node labels and their distribution (uniform vs
//!   normal),
//! * pattern graphs *extracted from the targets* (connected random subgraphs
//!   with a prescribed number of edges, classified dense / semi-dense /
//!   sparse), so most instances have at least one embedding — exactly how the
//!   original collections were built.
//!
//! Every generator is deterministic in its seed, so experiments are
//! reproducible, and graphs can be persisted through the `sge-graph` text
//! format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collections;
pub mod modular;
pub mod pattern_gen;
pub mod target_gen;

pub use collections::{
    graemlin32_like, pdbsv1_like, ppis32_like, Collection, CollectionKind, CollectionSpec, Instance,
};
pub use modular::{generate_modular, ModularSpec};
pub use pattern_gen::{extract_pattern, DensityClass};
pub use target_gen::{generate_target, LabelDistribution, TargetSpec};

//! Modular (community-structured) target generation for the sharded tier.
//!
//! The sharded serving tier's economics depend on a target shape the other
//! generators in this crate deliberately avoid: many dense communities joined
//! by a sparse bridge ring.  Degree-aware BFS region growing
//! (`sge_graph::partition`) absorbs whole communities before it crosses a
//! bridge, so each shard's replicated ball stays a small fraction of the full
//! graph — and the adjacency-bitmap sidecar, whose row width is
//! `ceil(nodes/64)` words, shrinks **quadratically** with the ball: fewer
//! rows *and* narrower rows.  A modular target whose full-graph sidecar blows
//! the byte cap therefore fits comfortably per shard.  [`ModularSpec::million_edge`]
//! pins the documented million-edge instance the LOAD-path tests are built
//! on; the `sharded_throughput` bench figure uses a smaller clique-community
//! spec sized so partition locality flips the planner's kernel routing.
//!
//! Generation is deterministic in the seed: intra-community bonds are sampled
//! *without replacement* (exactly `intra_bonds` distinct undirected pairs per
//! community), so the edge count is a closed-form function of the spec:
//!
//! ```text
//! directed_edges = communities * intra_bonds * 2 + ring_bridges * 2
//! ```
//!
//! where `ring_bridges` is `communities` for a ring of 3+, 1 for a pair, and
//! 0 for a single community.

use sge_graph::{Graph, GraphBuilder, Label};
use sge_util::SplitMix64;
use std::collections::HashSet;

/// Parameters of one modular target graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModularSpec {
    /// Number of communities on the bridge ring.
    pub communities: usize,
    /// Nodes per community.
    pub community_size: usize,
    /// Distinct undirected intra-community bonds per community (each bond is
    /// stored as a symmetric directed pair).
    pub intra_bonds: usize,
    /// Number of distinct node labels, assigned uniformly (1 keeps every
    /// neighborhood same-label dense, which is what earns bitmap rows).
    pub labels: u32,
}

impl ModularSpec {
    /// A small spec for unit tests: 4 communities of 32 nodes.
    pub fn small() -> Self {
        ModularSpec {
            communities: 4,
            community_size: 32,
            intra_bonds: 128,
            labels: 1,
        }
    }

    /// The documented million-edge instance: 64 communities of 250 nodes,
    /// 7850 bonds each → exactly `64 * 7850 * 2 + 64 * 2 = 1_004_928`
    /// directed edges over 16 000 nodes (mean undirected degree ≈ 63, far
    /// above the bitmap degree threshold, so every node earns sidecar rows).
    pub fn million_edge() -> Self {
        ModularSpec {
            communities: 64,
            community_size: 250,
            intra_bonds: 7850,
            labels: 1,
        }
    }

    /// The exact number of directed edges [`generate_modular`] will produce.
    pub fn directed_edges(&self) -> usize {
        let bridges = match self.communities {
            0 | 1 => 0,
            2 => 1,
            c => c,
        };
        self.communities * self.intra_bonds * 2 + bridges * 2
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.communities * self.community_size
    }
}

/// Generates a modular target graph according to `spec`, deterministically in
/// `seed`.
///
/// Community `c` occupies the contiguous global id range
/// `[c * community_size, (c + 1) * community_size)`; its first node is the
/// *anchor*, and consecutive anchors are joined by one undirected bridge to
/// close the ring.  Intra-community bonds are distinct uniform pairs (no
/// self-loops), inserted symmetrically like every collection in this crate.
///
/// # Panics
///
/// Panics if `intra_bonds` exceeds the number of distinct pairs a community
/// has (`community_size * (community_size - 1) / 2`).
pub fn generate_modular(spec: &ModularSpec, seed: u64, name: &str) -> Graph {
    let size = spec.community_size;
    let pairs = size.saturating_mul(size.saturating_sub(1)) / 2;
    assert!(
        spec.intra_bonds <= pairs,
        "intra_bonds {} exceeds the {} distinct pairs of a {}-node community",
        spec.intra_bonds,
        pairs,
        size,
    );

    let mut rng = SplitMix64::new(seed);
    let n = spec.nodes();
    let mut builder = GraphBuilder::with_capacity(n, spec.directed_edges()).name(name.to_string());
    for _ in 0..n {
        let label = if spec.labels <= 1 {
            0
        } else {
            rng.next_below(spec.labels as usize) as Label
        };
        builder.add_node(label);
    }

    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(spec.intra_bonds);
    for community in 0..spec.communities {
        let base = (community * size) as u32;
        seen.clear();
        while seen.len() < spec.intra_bonds {
            let u = rng.next_below(size) as u32;
            let v = rng.next_below(size) as u32;
            if u == v {
                continue;
            }
            let bond = (u.min(v), u.max(v));
            if seen.insert(bond) {
                builder.add_undirected_edge(base + bond.0, base + bond.1, 0);
            }
        }
    }

    // The sparse bridge ring between consecutive anchors.  A 2-community
    // "ring" would lay the same bridge twice, so it gets just one.
    let ring = match spec.communities {
        0 | 1 => 0,
        2 => 1,
        c => c,
    };
    for community in 0..ring {
        let a = (community * size) as u32;
        let b = (((community + 1) % spec.communities) * size) as u32;
        builder.add_undirected_edge(a, b, 0);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let spec = ModularSpec::small();
        let a = generate_modular(&spec, 9, "m");
        let b = generate_modular(&spec, 9, "m");
        assert_eq!(a, b);
        assert_ne!(a, generate_modular(&spec, 10, "m"));
    }

    #[test]
    fn edge_count_is_exactly_the_closed_form() {
        let spec = ModularSpec::small();
        let g = generate_modular(&spec, 1, "m");
        assert_eq!(g.num_nodes(), spec.nodes());
        assert_eq!(g.num_edges(), spec.directed_edges());
        assert_eq!(spec.directed_edges(), 4 * 128 * 2 + 4 * 2);
    }

    #[test]
    fn million_edge_preset_clears_a_million_directed_edges() {
        let spec = ModularSpec::million_edge();
        assert_eq!(spec.directed_edges(), 1_004_928);
        assert_eq!(spec.nodes(), 16_000);
    }

    #[test]
    fn bridges_keep_the_ring_connected() {
        let spec = ModularSpec::small();
        let g = generate_modular(&spec, 3, "m");
        // Walk the ring: every anchor must reach the next community's anchor.
        let size = spec.community_size as u32;
        for c in 0..spec.communities as u32 {
            let a = c * size;
            let b = ((c + 1) % spec.communities as u32) * size;
            assert_eq!(g.edge_label(a, b), Some(0), "missing bridge {a}->{b}");
            assert_eq!(g.edge_label(b, a), Some(0), "missing bridge {b}->{a}");
        }
    }

    #[test]
    fn intra_edges_stay_inside_their_community() {
        let spec = ModularSpec::small();
        let g = generate_modular(&spec, 5, "m");
        let size = spec.community_size as u32;
        let mut cross = 0usize;
        for (u, v, _) in g.edges() {
            if u / size != v / size {
                cross += 1;
            }
        }
        // Only the ring bridges cross communities (two directed each).
        assert_eq!(cross, spec.communities * 2);
    }

    #[test]
    fn single_and_double_community_degenerate_cases() {
        let lone = ModularSpec {
            communities: 1,
            ..ModularSpec::small()
        };
        let g = generate_modular(&lone, 2, "lone");
        assert_eq!(g.num_edges(), lone.intra_bonds * 2);

        let pair = ModularSpec {
            communities: 2,
            ..ModularSpec::small()
        };
        let g = generate_modular(&pair, 2, "pair");
        assert_eq!(g.num_edges(), 2 * pair.intra_bonds * 2 + 2);
    }
}

//! Pattern extraction from target graphs.
//!
//! Bonnici et al. built their query sets by extracting connected subgraphs
//! with a prescribed number of edges (4, 8, …, 256) from each target and
//! classifying them as dense, semi-dense or sparse.  Extracted patterns
//! guarantee that at least one embedding exists (the identity), which is what
//! makes the original collections hard: the search cannot prune the whole tree
//! early.

use sge_graph::{Graph, GraphBuilder, NodeId};
use sge_util::SplitMix64;

/// Density class of a pattern, following the original RI collections'
/// edges-per-node classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DensityClass {
    /// At least two edges per node.
    Dense,
    /// Between one and two edges per node.
    SemiDense,
    /// Fewer than ~1.2 edges per node (trees and near-trees).
    Sparse,
}

impl DensityClass {
    /// Classifies a pattern by its directed-edge/node ratio.
    pub fn of(pattern: &Graph) -> DensityClass {
        if pattern.num_nodes() == 0 {
            return DensityClass::Sparse;
        }
        let ratio = pattern.num_edges() as f64 / pattern.num_nodes() as f64;
        if ratio >= 2.0 {
            DensityClass::Dense
        } else if ratio >= 1.2 {
            DensityClass::SemiDense
        } else {
            DensityClass::Sparse
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DensityClass::Dense => "dense",
            DensityClass::SemiDense => "semi-dense",
            DensityClass::Sparse => "sparse",
        }
    }
}

/// Extracts a connected pattern with roughly `target_edges` directed edges
/// from `target` by growing a random connected node set and keeping every edge
/// among the selected nodes.  Returns `None` when the target has no nodes or
/// the start node is isolated and more than one node was requested.
pub fn extract_pattern(target: &Graph, target_edges: usize, seed: u64) -> Option<Graph> {
    if target.num_nodes() == 0 {
        return None;
    }
    let mut rng = SplitMix64::new(seed);
    // Prefer a start node that actually has neighbors.
    let start = (0..20)
        .map(|_| rng.next_below(target.num_nodes()) as NodeId)
        .find(|&v| target.degree(v) > 0)
        .unwrap_or(0);

    let mut selected: Vec<NodeId> = vec![start];
    let mut edge_count = 0usize;
    let mut stall = 0usize;

    while edge_count < target_edges && stall < 200 {
        let &from = &selected[rng.next_below(selected.len())];
        let neighbors = target.undirected_neighbors(from);
        if neighbors.is_empty() {
            stall += 1;
            continue;
        }
        let next = neighbors[rng.next_below(neighbors.len())];
        if selected.contains(&next) {
            stall += 1;
            continue;
        }
        // Count the new directed edges this node contributes.
        let mut added = 0usize;
        for &existing in &selected {
            if target.has_edge(existing, next) {
                added += 1;
            }
            if target.has_edge(next, existing) {
                added += 1;
            }
        }
        selected.push(next);
        edge_count += added;
        stall = 0;
    }

    if selected.len() < 2 && target_edges > 0 {
        return None;
    }

    let mut builder = GraphBuilder::new().name(format!(
        "pattern-e{target_edges}-s{seed}-from-{}",
        target.name()
    ));
    for &v in &selected {
        builder.add_node(target.label(v));
    }
    for (i, &u) in selected.iter().enumerate() {
        for (j, &v) in selected.iter().enumerate() {
            if let Some(label) = target.edge_label(u, v) {
                builder.add_edge(i as NodeId, j as NodeId, label);
            }
        }
    }
    Some(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target_gen::{generate_target, TargetSpec};
    use sge_graph::generators;

    #[test]
    fn extracted_pattern_is_connected_and_labeled_consistently() {
        let target = generate_target(&TargetSpec::small(), 42, "t");
        let pattern = extract_pattern(&target, 12, 7).expect("pattern");
        assert!(pattern.num_nodes() >= 2);
        assert!(pattern.is_connected());
        assert!(pattern.num_edges() >= 12 || pattern.num_nodes() == target.num_nodes());
    }

    #[test]
    fn extracted_pattern_embeds_in_its_target() {
        let target = generate_target(&TargetSpec::small(), 43, "t");
        let pattern = extract_pattern(&target, 8, 3).expect("pattern");
        let matches = sge_ri::enumerate(
            &pattern,
            &target,
            &sge_ri::MatchConfig::new(sge_ri::Algorithm::RiDsSiFc).with_max_matches(1),
        )
        .matches;
        assert!(
            matches >= 1,
            "an extracted pattern must embed at least once"
        );
    }

    #[test]
    fn extraction_is_deterministic_in_seed() {
        let target = generate_target(&TargetSpec::small(), 44, "t");
        let a = extract_pattern(&target, 10, 5).unwrap();
        let b = extract_pattern(&target, 10, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn density_classification() {
        assert_eq!(
            DensityClass::of(&generators::clique(5, 0)),
            DensityClass::Dense
        );
        assert_eq!(
            DensityClass::of(&generators::directed_path(6, 0)),
            DensityClass::Sparse
        );
        assert_eq!(
            DensityClass::of(&generators::undirected_path(6, 0)),
            DensityClass::SemiDense
        );
        assert_eq!(DensityClass::Dense.name(), "dense");
    }

    #[test]
    fn empty_target_yields_no_pattern() {
        let empty = GraphBuilder::new().build();
        assert!(extract_pattern(&empty, 4, 0).is_none());
    }

    #[test]
    fn isolated_target_yields_no_multi_node_pattern() {
        let mut b = GraphBuilder::new();
        b.add_nodes(5, 0);
        let target = b.build();
        assert!(extract_pattern(&target, 4, 0).is_none());
    }

    use sge_graph::GraphBuilder;
}

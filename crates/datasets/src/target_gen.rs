//! Target graph generation: heavy-tailed labeled random graphs.
//!
//! The biochemical target graphs of the paper have skewed degree
//! distributions (Table 1 reports degree standard deviations two to three
//! times the mean for PPIS32/GRAEMLIN32).  A plain Erdős–Rényi graph would not
//! reproduce that, so targets are generated with a Chung–Lu style model: every
//! node draws a weight from a log-normal distribution and edges are sampled
//! with probability proportional to the product of the endpoint weights.
//! Edges are inserted symmetrically (biochemical bonds are undirected and the
//! RI collections store them in both directions).

use sge_graph::{Graph, GraphBuilder, Label};
use sge_util::SplitMix64;

/// How node labels are assigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelDistribution {
    /// Every label equally likely (the GRAEMLIN32 / PDBS style).
    Uniform,
    /// Labels concentrated around the middle of the alphabet (the "normal
    /// distribution" variants of the PPI collection, e.g. PPIS32).
    Normal,
}

/// Parameters of one synthetic target graph.
#[derive(Clone, Debug, PartialEq)]
pub struct TargetSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Expected out-degree (the generator inserts `nodes * avg_out_degree`
    /// directed edges, half of them as symmetric pairs).
    pub avg_out_degree: f64,
    /// Log-normal σ of the per-node weights; 0 gives an (almost) regular
    /// graph, 1.0–1.2 reproduces the dispersion of the PPI collections.
    pub weight_sigma: f64,
    /// Number of distinct node labels.
    pub labels: u32,
    /// Label assignment distribution.
    pub label_distribution: LabelDistribution,
    /// Number of distinct edge labels (1 = effectively unlabeled edges).
    pub edge_labels: u32,
}

impl TargetSpec {
    /// A small default spec, mostly useful in tests.
    pub fn small() -> Self {
        TargetSpec {
            nodes: 100,
            avg_out_degree: 4.0,
            weight_sigma: 0.8,
            labels: 8,
            label_distribution: LabelDistribution::Uniform,
            edge_labels: 1,
        }
    }
}

/// Approximately standard-normal variate via the Irwin–Hall construction
/// (sum of 12 uniforms minus 6); keeps the generator dependency-free.
fn approx_standard_normal(rng: &mut SplitMix64) -> f64 {
    let sum: f64 = (0..12).map(|_| rng.next_f64()).sum();
    sum - 6.0
}

/// Draws a node label according to the spec's distribution.
fn sample_label(rng: &mut SplitMix64, labels: u32, distribution: LabelDistribution) -> Label {
    match distribution {
        LabelDistribution::Uniform => rng.next_below(labels as usize) as Label,
        LabelDistribution::Normal => {
            let mean = (labels as f64 - 1.0) / 2.0;
            let sigma = (labels as f64 / 6.0).max(0.5);
            let value = mean + sigma * approx_standard_normal(rng);
            value.round().clamp(0.0, labels as f64 - 1.0) as Label
        }
    }
}

/// Generates a synthetic target graph according to `spec`, deterministically
/// in `seed`.
pub fn generate_target(spec: &TargetSpec, seed: u64, name: &str) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let n = spec.nodes;
    let mut builder = GraphBuilder::with_capacity(n, (n as f64 * spec.avg_out_degree) as usize)
        .name(name.to_string());

    for _ in 0..n {
        let label = sample_label(&mut rng, spec.labels.max(1), spec.label_distribution);
        builder.add_node(label);
    }
    if n < 2 {
        return builder.build();
    }

    // Chung-Lu style weights: log-normal with mean 1.
    let sigma = spec.weight_sigma.max(0.0);
    let weights: Vec<f64> = (0..n)
        .map(|_| (sigma * approx_standard_normal(&mut rng) - sigma * sigma / 2.0).exp())
        .collect();
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &w in &weights {
        acc += w;
        cumulative.push(acc);
    }
    let total = acc;

    let pick = |rng: &mut SplitMix64, cumulative: &[f64]| -> usize {
        let x = rng.next_f64() * total;
        match cumulative.binary_search_by(|probe| probe.partial_cmp(&x).unwrap()) {
            Ok(idx) => idx,
            Err(idx) => idx.min(cumulative.len() - 1),
        }
    };

    // Undirected bonds, inserted in both directions.
    let bonds = ((n as f64 * spec.avg_out_degree) / 2.0).round() as usize;
    let edge_labels = spec.edge_labels.max(1);
    for _ in 0..bonds {
        let u = pick(&mut rng, &cumulative) as u32;
        let v = pick(&mut rng, &cumulative) as u32;
        if u == v {
            continue;
        }
        let label = if edge_labels == 1 {
            0
        } else {
            rng.next_below(edge_labels as usize) as Label
        };
        builder.add_undirected_edge(u, v, label);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::stats::GraphStats;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let spec = TargetSpec::small();
        let a = generate_target(&spec, 7, "a");
        let b = generate_target(&spec, 7, "a");
        assert_eq!(a, b);
        let c = generate_target(&spec, 8, "a");
        assert_ne!(a, c);
    }

    #[test]
    fn node_count_and_rough_edge_count() {
        let spec = TargetSpec {
            nodes: 500,
            avg_out_degree: 6.0,
            ..TargetSpec::small()
        };
        let g = generate_target(&spec, 1, "t");
        assert_eq!(g.num_nodes(), 500);
        // Duplicate picks and self-loop rejections lose some edges; the count
        // must still be in the right ballpark.
        let expected = 500.0 * 6.0;
        assert!(
            (g.num_edges() as f64) > expected * 0.6,
            "got {} edges, expected about {expected}",
            g.num_edges()
        );
        assert!((g.num_edges() as f64) <= expected * 1.05);
    }

    #[test]
    fn edges_are_symmetric() {
        let g = generate_target(&TargetSpec::small(), 3, "t");
        for (u, v, l) in g.edges() {
            assert_eq!(
                g.edge_label(v, u),
                Some(l),
                "missing reverse edge ({v},{u})"
            );
        }
    }

    #[test]
    fn heavy_tail_increases_degree_spread() {
        let base = TargetSpec {
            nodes: 600,
            avg_out_degree: 8.0,
            weight_sigma: 0.0,
            ..TargetSpec::small()
        };
        let skewed = TargetSpec {
            weight_sigma: 1.2,
            ..base.clone()
        };
        let flat = GraphStats::of(&generate_target(&base, 11, "flat"));
        let heavy = GraphStats::of(&generate_target(&skewed, 11, "heavy"));
        assert!(
            heavy.degree_stddev > flat.degree_stddev * 1.5,
            "heavy-tailed generator should spread degrees (flat σ={}, heavy σ={})",
            flat.degree_stddev,
            heavy.degree_stddev
        );
    }

    #[test]
    fn uniform_labels_cover_the_alphabet() {
        let spec = TargetSpec {
            nodes: 2000,
            labels: 16,
            label_distribution: LabelDistribution::Uniform,
            ..TargetSpec::small()
        };
        let g = generate_target(&spec, 5, "t");
        let stats = GraphStats::of(&g);
        assert_eq!(stats.distinct_labels, 16);
    }

    #[test]
    fn normal_labels_concentrate_in_the_middle() {
        let spec = TargetSpec {
            nodes: 4000,
            labels: 32,
            label_distribution: LabelDistribution::Normal,
            ..TargetSpec::small()
        };
        let g = generate_target(&spec, 5, "t");
        let mut counts = vec![0usize; 32];
        for v in g.nodes() {
            counts[g.label(v) as usize] += 1;
        }
        let middle: usize = counts[12..20].iter().sum();
        let edges: usize = counts[..4].iter().sum::<usize>() + counts[28..].iter().sum::<usize>();
        assert!(
            middle > edges * 3,
            "normal labels should concentrate centrally (middle={middle}, edges={edges})"
        );
    }

    #[test]
    fn degenerate_specs_are_handled() {
        let tiny = TargetSpec {
            nodes: 1,
            ..TargetSpec::small()
        };
        let g = generate_target(&tiny, 0, "tiny");
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);

        let empty = TargetSpec {
            nodes: 0,
            ..TargetSpec::small()
        };
        let g = generate_target(&empty, 0, "empty");
        assert_eq!(g.num_nodes(), 0);
    }
}

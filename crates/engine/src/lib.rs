//! The unified enumeration engine: one entry point for every scheduler.
//!
//! The paper frames RI, RI-DS-SI(-FC) and their work-stealing
//! parallelization as *one* family sharing the same search machinery.  This
//! crate exposes them that way:
//!
//! 1. [`Engine::prepare`] runs preprocessing (domains, forward checking,
//!    GreatestConstraintFirst ordering) **once** and keeps the resulting
//!    [`SearchContext`] as a reusable prepared artifact — the paper's
//!    one-target/many-runs PDBSv1 workload amortizes this across runs,
//! 2. [`Engine::run`] executes the search under any [`Scheduler`] with one
//!    [`RunConfig`] knob set (`max_matches`, `time_limit`, mapping
//!    collection) and returns one [`EnumerationOutcome`] shape,
//! 3. [`Engine::run_with`] additionally streams every match to a
//!    [`MatchVisitor`],
//! 4. [`PreparedEngine`] is the *owned* counterpart of [`Engine`]: it keeps
//!    the graphs alive behind [`Arc`]s so a prepared instance can outlive
//!    the scope that built it — the shape a query-serving cache needs.
//!
//! # The scheduler-equivalence contract
//!
//! Every scheduler explores **the same search tree** — the candidate
//! generation and consistency checks of [`SearchContext`] — so for any
//! prepared engine and any two run configurations that differ only in their
//! scheduler (and are not truncated by `max_matches`/`time_limit`):
//!
//! * `matches` is identical,
//! * `states` is identical (the total number of consistency checks is
//!   schedule-invariant),
//! * a complete collected-mapping set is byte-identical (mappings are
//!   returned sorted lexicographically).
//!
//! Only scheduling artifacts (steal counts, per-worker breakdowns, wall-clock
//! times) may differ.
//!
//! That contract is what makes *planner-routed* scheduling safe: the serving
//! layer may pick any [`Scheduler`] per query from the plan's cost estimate
//! (small trees stay on the sequential count-only fast path, large ones fan
//! out with planner-sized workers) without changing any result a client can
//! observe.  The routing decision itself lives upstream in `sge-plan`
//! (`SchedulerChoice`); this crate only guarantees the equivalence that
//! routing relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sge_graph::{AdjacencyBitmaps, Graph, GraphStats, NodeId};
use sge_obs::TraceSink;
use sge_parallel::{enumerate_prepared, enumerate_rayon_prepared, ParallelConfig};
use sge_ri::{
    search_prepared, Algorithm, CandidateMode, ChannelVisitor, CollectingVisitor, KernelChoice,
    KernelUsage, MatchVisitor, PreparedParts, QueryPlan, SearchContext, SearchLimits, Strategy,
};
use sge_stealing::WorkerStats;
use sge_util::{CancelToken, PhaseTimer};
use std::sync::Arc;
use std::time::Duration;

/// Which execution strategy drives the search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// The sequential depth-first matcher.
    Sequential,
    /// The paper's private-deque work-stealing runtime.
    WorkStealing {
        /// Number of worker threads.
        workers: usize,
        /// Task-group (coalescing) size; the paper settles on 4.
        task_group_size: usize,
        /// `false` freezes the initial round-robin partition (the Fig. 3
        /// "no work stealing" baseline).
        stealing: bool,
    },
    /// First-level dynamic parallelism (the library-scheduler comparator —
    /// what a rayon-style `par_iter` over root candidates achieves).
    Rayon {
        /// Number of worker threads.
        workers: usize,
    },
}

impl Scheduler {
    /// Work stealing with the paper's defaults (task groups of 4, stealing
    /// enabled).
    pub fn work_stealing(workers: usize) -> Self {
        Scheduler::WorkStealing {
            workers,
            task_group_size: 4,
            stealing: true,
        }
    }

    /// Number of worker threads this scheduler uses (1 for sequential).
    pub fn workers(&self) -> usize {
        match *self {
            Scheduler::Sequential => 1,
            Scheduler::WorkStealing { workers, .. } | Scheduler::Rayon { workers } => {
                workers.max(1)
            }
        }
    }

    /// `true` for the sequential scheduler — the family the planner's
    /// routing fast path targets.  Dispatch accounting (the
    /// `engine.dispatch.*` counters) classifies every run as sequential or
    /// parallel through this predicate, so it is the single place the
    /// two-family split is defined.
    pub fn is_sequential(&self) -> bool {
        matches!(self, Scheduler::Sequential)
    }

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Scheduler::Sequential => "sequential",
            Scheduler::WorkStealing { stealing: true, .. } => "work-stealing",
            Scheduler::WorkStealing {
                stealing: false, ..
            } => "static-partition",
            Scheduler::Rayon { .. } => "rayon-style",
        }
    }
}

impl std::fmt::Display for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Scheduler::Sequential => f.write_str("sequential"),
            Scheduler::WorkStealing {
                workers,
                task_group_size,
                stealing,
            } => write!(
                f,
                "work-stealing(workers={workers}, group={task_group_size}, steal={stealing})"
            ),
            Scheduler::Rayon { workers } => write!(f, "rayon-style(workers={workers})"),
        }
    }
}

impl std::str::FromStr for Scheduler {
    type Err = String;

    /// Parses the compact scheduler grammar used by the serving wire
    /// protocol and CLI tools:
    ///
    /// * `seq` / `sequential`
    /// * `ws:<workers>` — work stealing with the paper's defaults
    /// * `ws:<workers>:<group>` — explicit task-group size
    /// * `ws:<workers>:<group>:nosteal` — the static-partition baseline
    /// * `rayon:<workers>` — the rayon-style first-level pool
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let lower = text.to_ascii_lowercase();
        if lower == "seq" || lower == "sequential" {
            return Ok(Scheduler::Sequential);
        }
        let mut parts = lower.split(':');
        let kind = parts.next().unwrap_or_default();
        let workers = match parts.next() {
            Some(w) => w
                .parse::<usize>()
                .map_err(|_| format!("invalid worker count '{w}' in scheduler '{text}'"))?,
            None => return Err(format!("scheduler '{text}' is missing a worker count")),
        };
        match kind {
            "ws" | "work-stealing" => {
                let task_group_size = match parts.next() {
                    Some(g) => g
                        .parse::<usize>()
                        .map_err(|_| format!("invalid group size '{g}' in scheduler '{text}'"))?,
                    None => 4,
                };
                let stealing = match parts.next() {
                    None | Some("steal") => true,
                    Some("nosteal") => false,
                    Some(other) => {
                        return Err(format!("unknown stealing flag '{other}' in '{text}'"))
                    }
                };
                if parts.next().is_some() {
                    return Err(format!("trailing tokens in scheduler '{text}'"));
                }
                Ok(Scheduler::WorkStealing {
                    workers,
                    task_group_size,
                    stealing,
                })
            }
            "rayon" => {
                if parts.next().is_some() {
                    return Err(format!("trailing tokens in scheduler '{text}'"));
                }
                Ok(Scheduler::Rayon { workers })
            }
            other => Err(format!(
                "unknown scheduler '{other}' (expected seq, ws:<n> or rayon:<n>)"
            )),
        }
    }
}

/// One run's knob set, honored uniformly by every scheduler.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Execution strategy.
    pub scheduler: Scheduler,
    /// Ordering strategy for the match order.  A *preparation* knob: it is
    /// consumed by [`Engine::prepare_for`] (and by the serving layer, which
    /// prepares per query); [`Engine::run`] executes whatever plan the
    /// engine was prepared with and ignores this field.
    pub strategy: Strategy,
    /// Stop cooperatively after this many matches (`None` = enumerate all).
    /// Every scheduler reports exactly `min(max_matches, total)`.
    pub max_matches: Option<u64>,
    /// Wall-clock budget for the matching phase.
    pub time_limit: Option<Duration>,
    /// Collect up to this many full mappings in the outcome (0 = none).
    pub collect_mappings: usize,
    /// Seed for scheduling decisions (victim selection under work stealing;
    /// never affects *what* is enumerated, only who enumerates it).
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::new(Scheduler::Sequential)
    }
}

impl RunConfig {
    /// A run under `scheduler` with no limits and no mapping collection.
    pub fn new(scheduler: Scheduler) -> Self {
        RunConfig {
            scheduler,
            strategy: Strategy::default(),
            max_matches: None,
            time_limit: None,
            collect_mappings: 0,
            seed: 0xC0FF_EE00,
        }
    }

    /// Sets the scheduler.
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the ordering strategy (consumed at preparation time; see
    /// [`RunConfig::strategy`]).
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Stops after `limit` matches.
    pub fn with_max_matches(mut self, limit: u64) -> Self {
        self.max_matches = Some(limit);
        self
    }

    /// Sets the matching-phase time limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Collects up to `limit` full mappings.
    pub fn with_collected_mappings(mut self, limit: usize) -> Self {
        self.collect_mappings = limit;
        self
    }

    /// Sets the scheduling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The unified result shape every scheduler produces.
#[derive(Clone, Debug)]
pub struct EnumerationOutcome {
    /// Algorithm variant that ran.
    pub algorithm: Algorithm,
    /// Ordering strategy of the executed plan.
    pub strategy: Strategy,
    /// Scheduler that ran it.
    pub scheduler: Scheduler,
    /// Worker threads used (1 for sequential).
    pub workers: usize,
    /// Number of embeddings found (exactly `min(max_matches, total)` when a
    /// match limit is set).
    pub matches: u64,
    /// Search-space size: consistency checks performed, summed over workers.
    /// Schedule-invariant on complete runs.
    pub states: u64,
    /// Preprocessing seconds — paid once at [`Engine::prepare`] and reported
    /// unchanged by every run of the same engine.
    pub preprocess_seconds: f64,
    /// Matching wall-clock seconds of this run.
    pub match_seconds: f64,
    /// Whether the time limit cut the run short.
    pub timed_out: bool,
    /// Whether the match limit stopped the run early.
    pub limit_hit: bool,
    /// Whether cooperative cancellation stopped the run early — set when a
    /// [`Engine::run_streaming`] consumer vanished (e.g. a streaming client
    /// disconnected) or returned `false`.  Counts are then lower bounds,
    /// exactly as for a timed-out run.
    pub cancelled: bool,
    /// Successful steals (work-stealing scheduler only; 0 otherwise).
    pub steals: u64,
    /// Steal requests issued (work-stealing scheduler only; 0 otherwise).
    pub steal_requests: u64,
    /// Population standard deviation of per-worker states — the Fig. 3 load
    /// imbalance metric (0 for sequential).
    pub worker_states_stddev: f64,
    /// Per-worker counters (one entry for sequential).
    pub worker_stats: Vec<WorkerStats>,
    /// Collected mappings (`mapping[p]` = target node of pattern node `p`),
    /// **sorted lexicographically** under every scheduler: a complete
    /// (non-truncated) collection is byte-identical across schedulers, worker
    /// counts and seeds.  Truncated collections (`collect_mappings` smaller
    /// than the match count, or a limited run) are sorted but which matches
    /// they contain is schedule-dependent.
    pub mappings: Vec<Vec<NodeId>>,
    /// Intersection-kernel invocations and prefilter rejections of this run
    /// (summed over workers; schedule-invariant on complete runs, like
    /// `states`).
    pub kernels: KernelUsage,
}

impl EnumerationOutcome {
    /// Total time: preprocessing + matching.
    pub fn total_seconds(&self) -> f64 {
        self.preprocess_seconds + self.match_seconds
    }

    /// States visited per second of matching time.
    pub fn states_per_second(&self) -> f64 {
        if self.match_seconds > 0.0 {
            self.states as f64 / self.match_seconds
        } else {
            0.0
        }
    }
}

/// A prepared enumeration instance: preprocessing done, ready to run under
/// any scheduler, any number of times.
///
/// ```
/// use sge_engine::{Engine, RunConfig, Scheduler};
/// use sge_ri::Algorithm;
///
/// let pattern = sge_graph::generators::directed_cycle(3, 0);
/// let target = sge_graph::generators::clique(5, 0);
/// let engine = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);
///
/// let seq = engine.run(&RunConfig::new(Scheduler::Sequential));
/// let par = engine.run(&RunConfig::new(Scheduler::work_stealing(4)));
/// assert_eq!(seq.matches, 60);
/// assert_eq!(par.matches, 60);
/// assert_eq!(seq.states, par.states); // same search tree under every scheduler
/// ```
pub struct Engine<'g> {
    ctx: SearchContext<'g>,
    preprocess_seconds: f64,
}

impl<'g> Engine<'g> {
    /// Runs the preprocessing phase of `algorithm` (domain computation,
    /// forward checking, node ordering) once and returns a reusable engine.
    pub fn prepare(pattern: &'g Graph, target: &'g Graph, algorithm: Algorithm) -> Self {
        Self::prepare_with_mode(pattern, target, algorithm, CandidateMode::default())
    }

    /// [`Engine::prepare`] with an explicit candidate generation scheme — the
    /// A/B entry point for comparing the intersection-based hot path against
    /// the legacy single-parent path under any scheduler.
    pub fn prepare_with_mode(
        pattern: &'g Graph,
        target: &'g Graph,
        algorithm: Algorithm,
        mode: CandidateMode,
    ) -> Self {
        Self::prepare_planned(pattern, target, algorithm, mode, Strategy::default())
    }

    /// The full preparation entry point: plans the match order with
    /// `strategy` and executes candidates under `mode`.
    pub fn prepare_planned(
        pattern: &'g Graph,
        target: &'g Graph,
        algorithm: Algorithm,
        mode: CandidateMode,
        strategy: Strategy,
    ) -> Self {
        let mut timer = PhaseTimer::new();
        let ctx = timer.time("preprocess", || {
            SearchContext::prepare_planned(pattern, target, algorithm, mode, strategy)
        });
        Engine {
            ctx,
            preprocess_seconds: timer.seconds("preprocess"),
        }
    }

    /// Prepares honoring the preparation knobs of `config` (currently the
    /// ordering [`Strategy`]) — the library-level path for selecting a
    /// strategy through a [`RunConfig`].
    pub fn prepare_for(
        pattern: &'g Graph,
        target: &'g Graph,
        algorithm: Algorithm,
        config: &RunConfig,
    ) -> Self {
        Self::prepare_planned(
            pattern,
            target,
            algorithm,
            CandidateMode::default(),
            config.strategy,
        )
    }

    /// Wraps an externally prepared context (preprocessing cost reported as
    /// 0).
    pub fn from_context(ctx: SearchContext<'g>) -> Self {
        Engine {
            ctx,
            preprocess_seconds: 0.0,
        }
    }

    /// Wraps an externally prepared context, reporting `preprocess_seconds`
    /// as the (already paid) preprocessing cost.
    pub fn from_context_with_cost(ctx: SearchContext<'g>, preprocess_seconds: f64) -> Self {
        Engine {
            ctx,
            preprocess_seconds,
        }
    }

    /// The algorithm this engine was prepared for.
    pub fn algorithm(&self) -> Algorithm {
        self.ctx.algorithm()
    }

    /// The ordering strategy of the prepared plan.
    pub fn strategy(&self) -> Strategy {
        self.ctx.strategy()
    }

    /// The prepared query plan (match order, domains, cost estimates) —
    /// what `EXPLAIN` reports.
    pub fn plan(&self) -> &QueryPlan {
        self.ctx.plan()
    }

    /// The prepared search context (ordering, domains, candidate machinery).
    pub fn context(&self) -> &SearchContext<'g> {
        &self.ctx
    }

    /// Seconds spent in [`Engine::prepare`].
    pub fn preprocess_seconds(&self) -> f64 {
        self.preprocess_seconds
    }

    /// Attaches a [`TraceSink`] that observes candidate generation and
    /// consistency checks at every match-order position, for every scheduler
    /// this engine subsequently runs under.  Per-position totals are
    /// schedule-invariant on complete runs (the scheduler-equivalence
    /// contract extends to the observed counts); the sink additionally
    /// accumulates steal/task counters under the parallel schedulers.
    ///
    /// Without a sink the hot path pays a single predictable branch — the
    /// zero-overhead-when-disabled contract the benchmarks rely on.
    pub fn set_trace_sink(&mut self, sink: Arc<TraceSink>) {
        self.ctx.set_trace_sink(sink);
    }

    /// Builder-style [`Engine::set_trace_sink`].
    pub fn with_trace_sink(mut self, sink: Arc<TraceSink>) -> Self {
        self.set_trace_sink(sink);
        self
    }

    /// The attached trace sink, if any.
    pub fn trace_sink(&self) -> Option<&Arc<TraceSink>> {
        self.ctx.trace_sink()
    }

    /// `true` when preprocessing already proved there are no matches.
    pub fn impossible(&self) -> bool {
        self.ctx.impossible()
    }

    /// Executes one run under `config.scheduler`.
    pub fn run(&self, config: &RunConfig) -> EnumerationOutcome {
        self.execute(config, None, None)
    }

    /// Executes one run, streaming every match to `visitor` (called from
    /// worker threads under the parallel schedulers; from the calling thread,
    /// as worker 0, under the sequential one).
    pub fn run_with(&self, config: &RunConfig, visitor: &dyn MatchVisitor) -> EnumerationOutcome {
        self.execute(config, Some(visitor), None)
    }

    /// Executes one run while handing every discovered mapping to `consumer`
    /// **on the calling thread**, with enumeration running concurrently on a
    /// second thread and a bounded channel of `channel_capacity` mappings in
    /// between — memory stays O(`channel_capacity`) regardless of the result
    /// cardinality, and enumeration overlaps with whatever the consumer does
    /// (e.g. socket writes).
    ///
    /// The consumer returns `true` to keep going; returning `false` (the
    /// client is gone, enough rows were delivered, …) cooperatively cancels
    /// the run: the channel is torn down, the in-flight schedulers observe
    /// the cancellation at their next budget check and stop early, and the
    /// returned outcome reports [`EnumerationOutcome::cancelled`].
    ///
    /// Mappings arrive in **discovery order** (schedule-dependent under the
    /// parallel schedulers), not sorted like
    /// [`EnumerationOutcome::mappings`].
    pub fn run_streaming<F>(
        &self,
        config: &RunConfig,
        channel_capacity: usize,
        mut consumer: F,
    ) -> EnumerationOutcome
    where
        F: FnMut(Vec<NodeId>) -> bool,
    {
        let cancel = Arc::new(CancelToken::new());
        let (sender, receiver) = std::sync::mpsc::sync_channel(channel_capacity.max(1));
        std::thread::scope(|scope| {
            let producer = {
                let cancel = Arc::clone(&cancel);
                scope.spawn(move || {
                    let bridge = ChannelVisitor::new(sender, Arc::clone(&cancel));
                    // The bridge owns the sender; dropping it when this
                    // closure returns disconnects the receiver below.
                    self.execute(config, Some(&bridge), Some(&cancel))
                })
            };
            while let Ok(mapping) = receiver.recv() {
                if !consumer(mapping) {
                    cancel.cancel();
                    break;
                }
            }
            // Unblock any sender stuck on a full channel: once the receiver
            // is gone every `send` fails fast and the bridge keeps the token
            // fired, so the producer winds down promptly.
            drop(receiver);
            producer
                .join()
                .expect("streaming enumeration thread panicked")
        })
    }

    /// Convenience: count all matches sequentially.
    pub fn count(&self) -> u64 {
        self.run(&RunConfig::default()).matches
    }

    fn execute(
        &self,
        config: &RunConfig,
        visitor: Option<&dyn MatchVisitor>,
        cancel: Option<&Arc<CancelToken>>,
    ) -> EnumerationOutcome {
        // Kernel counters accumulate in cells shared across this context's
        // runs; bracketing with snapshots attributes exactly this run's work.
        let kernels_before = self.ctx.kernel_totals();
        let mut outcome = match config.scheduler {
            Scheduler::Sequential => self.run_sequential(config, visitor, cancel),
            Scheduler::WorkStealing {
                workers,
                task_group_size,
                stealing,
            } => {
                let parallel = ParallelConfig {
                    algorithm: self.ctx.algorithm(),
                    workers: workers.max(1),
                    task_group_size: task_group_size.max(1),
                    steal_enabled: stealing,
                    max_matches: config.max_matches,
                    time_limit: config.time_limit,
                    collect_limit: config.collect_mappings,
                    cancel: cancel.map(Arc::clone),
                    seed: config.seed,
                };
                let result = enumerate_prepared(&self.ctx, &parallel, visitor);
                self.parallel_outcome(config, result)
            }
            Scheduler::Rayon { workers } => {
                let parallel = ParallelConfig {
                    algorithm: self.ctx.algorithm(),
                    workers: workers.max(1),
                    task_group_size: 1,
                    steal_enabled: false,
                    max_matches: config.max_matches,
                    time_limit: config.time_limit,
                    collect_limit: config.collect_mappings,
                    cancel: cancel.map(Arc::clone),
                    seed: config.seed,
                };
                let result = enumerate_rayon_prepared(&self.ctx, &parallel, visitor);
                self.parallel_outcome(config, result)
            }
        };
        outcome.preprocess_seconds = self.preprocess_seconds;
        outcome.kernels = self.ctx.kernel_totals().since(&kernels_before);
        outcome
    }

    fn run_sequential(
        &self,
        config: &RunConfig,
        visitor: Option<&dyn MatchVisitor>,
        cancel: Option<&Arc<CancelToken>>,
    ) -> EnumerationOutcome {
        let limits = SearchLimits {
            max_matches: config.max_matches,
            time_limit: config.time_limit,
            cancel: cancel.map(Arc::clone),
            // The promise behind the last-depth counting fast path: with no
            // visitor and no mapping collection, nothing observes individual
            // matches.
            count_only: visitor.is_none() && config.collect_mappings == 0,
        };
        let (run, mut mappings) = if limits.count_only {
            // Count-only fast path: nothing observes individual matches, so
            // skip the per-match observer machinery entirely — no mapping
            // materialization, no collector consultation, just the counter.
            (search_prepared(&self.ctx, &limits, |_, _| {}), Vec::new())
        } else {
            let collector = CollectingVisitor::new(config.collect_mappings);
            let run = search_prepared(&self.ctx, &limits, |ctx, state| {
                // Build the mapping only for observers that still want it:
                // once the collector is full, a visitor-less run stops
                // allocating.
                let collecting = !collector.is_full();
                if visitor.is_none() && !collecting {
                    return;
                }
                let mapping = ctx.mapping_by_pattern_node(state);
                if let Some(v) = visitor {
                    v.on_match(0, &mapping);
                }
                if collecting {
                    collector.on_match(0, &mapping);
                }
            });
            (run, collector.take())
        };
        // The sequential collector sees matches in DFS order; sorting gives
        // the same order contract as the parallel schedulers.
        mappings.sort_unstable();
        EnumerationOutcome {
            algorithm: self.ctx.algorithm(),
            strategy: self.ctx.strategy(),
            scheduler: config.scheduler,
            workers: 1,
            matches: run.matches,
            states: run.states,
            preprocess_seconds: 0.0,
            match_seconds: run.match_seconds,
            timed_out: run.timed_out,
            limit_hit: run.limit_hit,
            cancelled: run.cancelled,
            steals: 0,
            steal_requests: 0,
            worker_states_stddev: 0.0,
            worker_stats: vec![WorkerStats {
                worker_id: 0,
                states: run.states,
                solutions: run.matches,
                busy_seconds: run.match_seconds,
                ..WorkerStats::default()
            }],
            mappings,
            kernels: KernelUsage::default(),
        }
    }

    fn parallel_outcome(
        &self,
        config: &RunConfig,
        result: sge_parallel::ParallelResult,
    ) -> EnumerationOutcome {
        EnumerationOutcome {
            algorithm: result.algorithm,
            strategy: self.ctx.strategy(),
            scheduler: config.scheduler,
            workers: result.workers,
            matches: result.matches,
            states: result.states,
            preprocess_seconds: 0.0,
            match_seconds: result.match_seconds,
            timed_out: result.timed_out,
            limit_hit: result.limit_hit,
            cancelled: result.cancelled,
            steals: result.steals,
            steal_requests: result.steal_requests,
            worker_states_stddev: result.worker_states_stddev,
            worker_stats: result.worker_stats,
            mappings: result.mappings,
            kernels: KernelUsage::default(),
        }
    }
}

/// An **owned** prepared enumeration instance.
///
/// [`Engine`] borrows its graphs, which ties a prepared instance to the
/// scope that owns them.  `PreparedEngine` instead shares ownership of the
/// pattern and target behind [`Arc`]s and keeps the preprocessing artifacts
/// ([`PreparedParts`]) alongside, so it can live in a long-running cache and
/// serve concurrent queries from many threads (`PreparedEngine` is `Send +
/// Sync`; runs take `&self`).
///
/// ```
/// use sge_engine::{PreparedEngine, RunConfig, Scheduler};
/// use sge_ri::Algorithm;
/// use std::sync::Arc;
///
/// let pattern = Arc::new(sge_graph::generators::directed_cycle(3, 0));
/// let target = Arc::new(sge_graph::generators::clique(5, 0));
/// let prepared = PreparedEngine::prepare(pattern, target, Algorithm::RiDsSiFc);
///
/// // The instance owns everything it needs — hand it to any thread.
/// assert_eq!(prepared.run(&RunConfig::new(Scheduler::Sequential)).matches, 60);
/// assert_eq!(prepared.run(&RunConfig::new(Scheduler::work_stealing(2))).matches, 60);
/// ```
pub struct PreparedEngine {
    pattern: Arc<Graph>,
    target: Arc<Graph>,
    parts: PreparedParts,
    preprocess_seconds: f64,
}

impl PreparedEngine {
    /// Runs preprocessing once and returns a self-contained prepared
    /// instance sharing ownership of both graphs.
    pub fn prepare(pattern: Arc<Graph>, target: Arc<Graph>, algorithm: Algorithm) -> Self {
        Self::prepare_planned(
            pattern,
            target,
            algorithm,
            CandidateMode::default(),
            Strategy::default(),
        )
    }

    /// [`PreparedEngine::prepare`] with explicit candidate mode and ordering
    /// strategy.
    pub fn prepare_planned(
        pattern: Arc<Graph>,
        target: Arc<Graph>,
        algorithm: Algorithm,
        mode: CandidateMode,
        strategy: Strategy,
    ) -> Self {
        let mut timer = PhaseTimer::new();
        let parts = timer.time("preprocess", || {
            PreparedParts::extract(&SearchContext::prepare_planned(
                &pattern, &target, algorithm, mode, strategy,
            ))
        });
        PreparedEngine {
            pattern,
            target,
            parts,
            preprocess_seconds: timer.seconds("preprocess"),
        }
    }

    /// [`PreparedEngine::prepare_planned`] with precomputed target
    /// statistics — the entry point the serving cache prepares through, so
    /// a long-lived registry target pays its frequency-table pass once at
    /// registration instead of on every cache miss.
    pub fn prepare_planned_with_stats(
        pattern: Arc<Graph>,
        target: Arc<Graph>,
        target_stats: &GraphStats,
        algorithm: Algorithm,
        mode: CandidateMode,
        strategy: Strategy,
    ) -> Self {
        let mut timer = PhaseTimer::new();
        let parts = timer.time("preprocess", || {
            PreparedParts::extract(&SearchContext::prepare_planned_with_stats(
                &pattern,
                &target,
                target_stats,
                algorithm,
                mode,
                strategy,
            ))
        });
        PreparedEngine {
            pattern,
            target,
            parts,
            preprocess_seconds: timer.seconds("preprocess"),
        }
    }

    /// [`PreparedEngine::prepare_planned_with_stats`] with an explicitly
    /// supplied target bitmap sidecar (shared, like the stats, by the
    /// registry that owns the target).  `None` means the caller decided
    /// against a sidecar — e.g. it hit its memory cap — and the plan's
    /// bitmap-kernel hints will fall back to galloping at run time.
    pub fn prepare_planned_full(
        pattern: Arc<Graph>,
        target: Arc<Graph>,
        target_stats: &GraphStats,
        bitmaps: Option<Arc<AdjacencyBitmaps>>,
        algorithm: Algorithm,
        mode: CandidateMode,
        strategy: Strategy,
    ) -> Self {
        let mut timer = PhaseTimer::new();
        let parts = timer.time("preprocess", || {
            PreparedParts::extract(&SearchContext::prepare_planned_full(
                &pattern,
                &target,
                target_stats,
                bitmaps,
                algorithm,
                mode,
                strategy,
            ))
        });
        PreparedEngine {
            pattern,
            target,
            parts,
            preprocess_seconds: timer.seconds("preprocess"),
        }
    }

    /// Wraps an externally produced [`QueryPlan`] (e.g. a rooted plan from
    /// [`sge_plan::Planner::plan_rooted`], carrying a shard's root filter)
    /// with an explicit bitmap-sidecar decision, timing the wrap as this
    /// instance's preprocessing cost.  The graphs must be the ones the plan
    /// was built from.
    pub fn from_plan(
        pattern: Arc<Graph>,
        target: Arc<Graph>,
        bitmaps: Option<Arc<AdjacencyBitmaps>>,
        plan: QueryPlan,
        mode: CandidateMode,
    ) -> Self {
        let mut timer = PhaseTimer::new();
        let parts = timer.time("preprocess", || {
            let mut ctx = SearchContext::from_plan(&pattern, &target, plan, mode);
            ctx.set_bitmaps(bitmaps);
            PreparedParts::extract(&ctx)
        });
        PreparedEngine {
            pattern,
            target,
            parts,
            preprocess_seconds: timer.seconds("preprocess"),
        }
    }

    /// Materializes a borrowing [`Engine`] view (cheap: the domains are
    /// shared, only the ordering vectors are copied).  The view reports this
    /// instance's preprocessing cost in its outcomes.
    pub fn engine(&self) -> Engine<'_> {
        Engine::from_context_with_cost(
            self.parts.context(&self.pattern, &self.target),
            self.preprocess_seconds,
        )
    }

    /// Executes one run under `config.scheduler`.
    pub fn run(&self, config: &RunConfig) -> EnumerationOutcome {
        self.engine().run(config)
    }

    /// Executes one run, streaming every match to `visitor`.
    pub fn run_with(&self, config: &RunConfig, visitor: &dyn MatchVisitor) -> EnumerationOutcome {
        self.engine().run_with(config, visitor)
    }

    /// Executes one run, handing every mapping to `consumer` on the calling
    /// thread through a bounded channel while enumeration proceeds on a
    /// second thread — see [`Engine::run_streaming`].  The consumer returns
    /// `false` to cooperatively cancel the run.
    pub fn run_streaming<F>(
        &self,
        config: &RunConfig,
        channel_capacity: usize,
        consumer: F,
    ) -> EnumerationOutcome
    where
        F: FnMut(Vec<NodeId>) -> bool,
    {
        self.engine()
            .run_streaming(config, channel_capacity, consumer)
    }

    /// Convenience: count all matches sequentially.
    pub fn count(&self) -> u64 {
        self.run(&RunConfig::default()).matches
    }

    /// The pattern graph.
    pub fn pattern(&self) -> &Arc<Graph> {
        &self.pattern
    }

    /// The target graph.
    pub fn target(&self) -> &Arc<Graph> {
        &self.target
    }

    /// The algorithm this instance was prepared for.
    pub fn algorithm(&self) -> Algorithm {
        self.parts.algorithm()
    }

    /// The ordering strategy of the prepared plan.
    pub fn strategy(&self) -> Strategy {
        self.parts.strategy()
    }

    /// The candidate generation scheme this instance executes under.
    pub fn candidate_mode(&self) -> CandidateMode {
        self.parts.candidate_mode()
    }

    /// The prepared query plan (match order, domains, cost estimates) —
    /// what the service's `EXPLAIN` verb reports.
    pub fn plan(&self) -> &QueryPlan {
        self.parts.plan()
    }

    /// The bitmap sidecar captured at preparation time, if any.
    pub fn bitmaps(&self) -> Option<&Arc<AdjacencyBitmaps>> {
        self.parts.bitmaps()
    }

    /// The kernel that will generate candidates at each position, resolved
    /// for EXPLAIN: `"scan"` for positions without back-edge constraints
    /// (domain / full-target scans), otherwise the planner's
    /// [`KernelChoice`] — downgraded to `"gallop"` when no sidecar is
    /// attached or the sidecar is row-less (memory-capped), since the bitmap
    /// path cannot run then.  (`"bitmap"` positions still fall back to
    /// `"gallop"` at run time when one specific row is missing.)
    pub fn resolved_kernels(&self) -> Vec<&'static str> {
        let rows_present = self.parts.bitmaps().is_some_and(|b| b.row_count() > 0);
        self.parts
            .plan()
            .order
            .plan
            .steps
            .iter()
            .map(|step| {
                if step.constraints.is_empty() {
                    "scan"
                } else if step.kernel == KernelChoice::Bitmap && rows_present {
                    step.kernel.as_str()
                } else {
                    KernelChoice::Gallop.as_str()
                }
            })
            .collect()
    }

    /// Seconds spent in [`PreparedEngine::prepare`].
    pub fn preprocess_seconds(&self) -> f64 {
        self.preprocess_seconds
    }

    /// `true` when preprocessing already proved there are no matches.
    pub fn impossible(&self) -> bool {
        self.parts.impossible() || self.pattern.num_nodes() > self.target.num_nodes()
    }
}

// The serving layer shares engines across threads; fail at compile time if a
// field ever loses these bounds.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedEngine>();
    assert_send_sync::<Engine<'static>>();
    assert_send_sync::<EnumerationOutcome>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::generators;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn schedulers() -> Vec<Scheduler> {
        vec![
            Scheduler::Sequential,
            Scheduler::work_stealing(1),
            Scheduler::work_stealing(2),
            Scheduler::work_stealing(4),
            Scheduler::WorkStealing {
                workers: 4,
                task_group_size: 2,
                stealing: false,
            },
            Scheduler::Rayon { workers: 3 },
        ]
    }

    #[test]
    fn every_scheduler_agrees_on_matches_and_states() {
        let pattern = generators::undirected_cycle(4, 0);
        let target = generators::grid(4, 4);
        for algorithm in Algorithm::ALL {
            let engine = Engine::prepare(&pattern, &target, algorithm);
            let reference = engine.run(&RunConfig::default());
            for scheduler in schedulers() {
                let outcome = engine.run(&RunConfig::new(scheduler));
                assert_eq!(
                    outcome.matches, reference.matches,
                    "{algorithm} {scheduler}"
                );
                assert_eq!(outcome.states, reference.states, "{algorithm} {scheduler}");
                assert_eq!(outcome.workers, scheduler.workers());
            }
        }
    }

    #[test]
    fn dense_targets_report_bitmap_kernel_usage_under_every_scheduler() {
        // clique(16) has degree_mean 30 >= 16 and >= nodes/4, so the planner
        // routes every constrained position to the bitmap kernel; the outcome
        // must report bitmap row ANDs and the counts must be
        // schedule-invariant (candidate fills happen once per expansion, like
        // states).
        let pattern = generators::directed_cycle(4, 0);
        let target = generators::clique(16, 0);
        let engine = Engine::prepare(&pattern, &target, Algorithm::RiDs);
        let reference = engine.run(&RunConfig::default());
        assert!(
            reference.kernels.bitmap > 0,
            "dense target should exercise the bitmap kernel, got {:?}",
            reference.kernels
        );
        assert_eq!(reference.kernels.merge, 0);
        for scheduler in schedulers() {
            let outcome = engine.run(&RunConfig::new(scheduler));
            assert_eq!(outcome.matches, reference.matches, "{scheduler}");
            assert_eq!(outcome.kernels, reference.kernels, "{scheduler}");
        }
    }

    #[test]
    fn sparse_targets_report_gallop_or_merge_kernels_only() {
        let pattern = generators::undirected_cycle(4, 0);
        let target = generators::grid(4, 4);
        let engine = Engine::prepare(&pattern, &target, Algorithm::RiDs);
        let outcome = engine.run(&RunConfig::default());
        assert_eq!(outcome.kernels.bitmap, 0);
        assert!(
            outcome.kernels.intersections() > 0,
            "intersection mode on a cycle pattern must run sorted-list kernels"
        );
    }

    #[test]
    fn max_matches_is_exact_under_every_scheduler() {
        let pattern = generators::directed_path(2, 0);
        let target = generators::clique(10, 0); // 90 embeddings
        let engine = Engine::prepare(&pattern, &target, Algorithm::Ri);
        for scheduler in schedulers() {
            let outcome = engine.run(&RunConfig::new(scheduler).with_max_matches(13));
            assert_eq!(outcome.matches, 13, "{scheduler}");
            assert!(outcome.limit_hit, "{scheduler}");
        }
    }

    #[test]
    fn complete_collections_are_identical_across_schedulers() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(5, 0); // 60 embeddings
        let engine = Engine::prepare(&pattern, &target, Algorithm::RiDs);
        let reference = engine
            .run(&RunConfig::default().with_collected_mappings(100))
            .mappings;
        assert_eq!(reference.len(), 60);
        for scheduler in schedulers() {
            let mappings = engine
                .run(&RunConfig::new(scheduler).with_collected_mappings(100))
                .mappings;
            assert_eq!(mappings, reference, "{scheduler}");
        }
    }

    #[test]
    fn visitor_streams_every_match() {
        struct Counter(AtomicU64);
        impl MatchVisitor for Counter {
            fn on_match(&self, _worker: usize, mapping: &[sge_graph::NodeId]) {
                assert_eq!(mapping.len(), 3);
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(5, 0);
        let engine = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);
        for scheduler in schedulers() {
            let counter = Counter(AtomicU64::new(0));
            let outcome = engine.run_with(&RunConfig::new(scheduler), &counter);
            assert_eq!(
                counter.0.load(Ordering::Relaxed),
                outcome.matches,
                "{scheduler}"
            );
            assert_eq!(outcome.matches, 60, "{scheduler}");
        }
    }

    #[test]
    fn count_only_fast_path_agrees_with_observed_runs() {
        // A run with no visitor and no collection takes the count-only fast
        // path (no per-match mapping materialization); it must agree with a
        // fully-observed run on every reported figure.
        let pattern = generators::undirected_cycle(4, 0);
        let target = generators::grid(4, 4);
        for algorithm in Algorithm::ALL {
            let engine = Engine::prepare(&pattern, &target, algorithm);
            let counted = engine.run(&RunConfig::default());
            let observed = engine.run(&RunConfig::default().with_collected_mappings(10_000));
            assert_eq!(counted.matches, observed.matches, "{algorithm}");
            assert_eq!(counted.states, observed.states, "{algorithm}");
            assert!(counted.mappings.is_empty(), "{algorithm}");
            assert_eq!(observed.mappings.len(), observed.matches as usize);
            // The fast path also honors the match budget exactly.
            let limited = engine.run(&RunConfig::default().with_max_matches(3));
            assert_eq!(limited.matches, counted.matches.min(3), "{algorithm}");
        }
    }

    #[test]
    fn streaming_delivers_every_match_with_bounded_memory() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(5, 0); // 60 embeddings
        let engine = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);
        let reference = engine
            .run(&RunConfig::default().with_collected_mappings(100))
            .mappings;
        for scheduler in schedulers() {
            // A tiny channel forces backpressure; every match still arrives.
            let mut rows: Vec<Vec<sge_graph::NodeId>> = Vec::new();
            let outcome = engine.run_streaming(&RunConfig::new(scheduler), 2, |mapping| {
                rows.push(mapping);
                true
            });
            assert_eq!(outcome.matches, 60, "{scheduler}");
            assert!(!outcome.cancelled, "{scheduler}");
            assert_eq!(rows.len(), 60, "{scheduler}");
            rows.sort_unstable();
            assert_eq!(rows, reference, "{scheduler}");
        }
    }

    #[test]
    fn streaming_consumer_cancels_the_run_early() {
        let pattern = generators::directed_path(2, 0);
        let target = generators::clique(16, 0); // 240 embeddings
        let engine = Engine::prepare(&pattern, &target, Algorithm::Ri);
        for scheduler in schedulers() {
            let mut seen = 0u64;
            let outcome = engine.run_streaming(&RunConfig::new(scheduler), 4, |_| {
                seen += 1;
                seen < 5
            });
            assert!(outcome.cancelled, "{scheduler}");
            assert!(
                outcome.matches < 240,
                "{scheduler}: enumeration must stop early, got {}",
                outcome.matches
            );
            assert!(seen >= 5, "{scheduler}");
        }
    }

    #[test]
    fn prepared_engine_streams_like_the_borrowing_engine() {
        let pattern = Arc::new(generators::directed_cycle(3, 0));
        let target = Arc::new(generators::clique(5, 0));
        let prepared = PreparedEngine::prepare(pattern, target, Algorithm::RiDsSiFc);
        let mut rows: Vec<Vec<sge_graph::NodeId>> = Vec::new();
        let outcome = prepared.run_streaming(&RunConfig::default(), 8, |mapping| {
            rows.push(mapping);
            true
        });
        assert_eq!(outcome.matches, 60);
        assert_eq!(rows.len(), 60);
        rows.sort_unstable();
        let reference = prepared
            .run(&RunConfig::default().with_collected_mappings(100))
            .mappings;
        assert_eq!(rows, reference);
    }

    #[test]
    fn preprocessing_is_amortized_across_runs() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(6, 0);
        let engine = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);
        let first = engine.run(&RunConfig::default());
        let second = engine.run(&RunConfig::new(Scheduler::work_stealing(2)));
        assert_eq!(first.preprocess_seconds, engine.preprocess_seconds());
        assert_eq!(second.preprocess_seconds, engine.preprocess_seconds());
        assert_eq!(engine.count(), first.matches);
    }

    #[test]
    fn degenerate_instances_are_uniform_across_schedulers() {
        let empty = sge_graph::GraphBuilder::new().build();
        let target = generators::clique(4, 0);
        let engine = Engine::prepare(&empty, &target, Algorithm::Ri);
        for scheduler in schedulers() {
            // The empty embedding counts, is collected, and honors the budget
            // identically under every scheduler.
            let outcome = engine.run(&RunConfig::new(scheduler).with_collected_mappings(5));
            assert_eq!(outcome.matches, 1, "{scheduler}");
            assert_eq!(
                outcome.mappings,
                vec![Vec::<sge_graph::NodeId>::new()],
                "{scheduler}"
            );
            let limited = engine.run(&RunConfig::new(scheduler).with_max_matches(0));
            assert_eq!(limited.matches, 0, "{scheduler}");
            assert!(limited.limit_hit, "{scheduler}");
            struct Counter(AtomicU64);
            impl MatchVisitor for Counter {
                fn on_match(&self, _w: usize, mapping: &[sge_graph::NodeId]) {
                    assert!(mapping.is_empty());
                    self.0.fetch_add(1, Ordering::Relaxed);
                }
            }
            let counter = Counter(AtomicU64::new(0));
            let streamed = engine.run_with(&RunConfig::new(scheduler), &counter);
            assert_eq!(streamed.matches, 1, "{scheduler}");
            assert_eq!(counter.0.load(Ordering::Relaxed), 1, "{scheduler}");
        }

        let mut pb = sge_graph::GraphBuilder::new();
        pb.add_node(42);
        let impossible = pb.build();
        let engine = Engine::prepare(&impossible, &target, Algorithm::RiDs);
        assert!(engine.impossible());
        for scheduler in schedulers() {
            assert_eq!(
                engine.run(&RunConfig::new(scheduler)).matches,
                0,
                "{scheduler}"
            );
        }
    }

    #[test]
    fn scheduler_display_and_names() {
        assert_eq!(Scheduler::Sequential.to_string(), "sequential");
        assert_eq!(Scheduler::Sequential.name(), "sequential");
        assert_eq!(Scheduler::work_stealing(4).name(), "work-stealing");
        assert!(Scheduler::work_stealing(4)
            .to_string()
            .contains("workers=4"));
        assert_eq!(
            Scheduler::WorkStealing {
                workers: 2,
                task_group_size: 4,
                stealing: false
            }
            .name(),
            "static-partition"
        );
        assert_eq!(Scheduler::Rayon { workers: 2 }.name(), "rayon-style");
        assert_eq!(Scheduler::Rayon { workers: 0 }.workers(), 1);
    }

    #[test]
    fn scheduler_from_str_grammar() {
        assert_eq!("seq".parse::<Scheduler>().unwrap(), Scheduler::Sequential);
        assert_eq!(
            "sequential".parse::<Scheduler>().unwrap(),
            Scheduler::Sequential
        );
        assert_eq!(
            "ws:4".parse::<Scheduler>().unwrap(),
            Scheduler::work_stealing(4)
        );
        assert_eq!(
            "ws:2:8:nosteal".parse::<Scheduler>().unwrap(),
            Scheduler::WorkStealing {
                workers: 2,
                task_group_size: 8,
                stealing: false
            }
        );
        assert_eq!(
            "rayon:3".parse::<Scheduler>().unwrap(),
            Scheduler::Rayon { workers: 3 }
        );
        assert!("ws".parse::<Scheduler>().is_err());
        assert!("ws:x".parse::<Scheduler>().is_err());
        assert!("fibers:2".parse::<Scheduler>().is_err());
        assert!("ws:4:2:nosteal:steal".parse::<Scheduler>().is_err());
        assert!("rayon:2:9".parse::<Scheduler>().is_err());
    }

    #[test]
    fn prepared_engine_matches_borrowing_engine() {
        let pattern = Arc::new(generators::undirected_cycle(4, 0));
        let target = Arc::new(generators::grid(4, 4));
        for algorithm in Algorithm::ALL {
            let borrowed = Engine::prepare(&pattern, &target, algorithm);
            let owned =
                PreparedEngine::prepare(Arc::clone(&pattern), Arc::clone(&target), algorithm);
            let reference = borrowed.run(&RunConfig::default().with_collected_mappings(10_000));
            for scheduler in schedulers() {
                let outcome = owned.run(&RunConfig::new(scheduler).with_collected_mappings(10_000));
                assert_eq!(
                    outcome.matches, reference.matches,
                    "{algorithm} {scheduler}"
                );
                assert_eq!(outcome.states, reference.states, "{algorithm} {scheduler}");
                assert_eq!(
                    outcome.mappings, reference.mappings,
                    "{algorithm} {scheduler}"
                );
            }
            assert_eq!(owned.algorithm(), algorithm);
            assert_eq!(
                owned.preprocess_seconds(),
                owned.engine().preprocess_seconds()
            );
        }
    }

    #[test]
    fn impossible_agrees_between_borrowed_and_owned_engines() {
        // Oversized pattern under plain RI: impossibility comes from the
        // size comparison, not from domains — both entry points must agree.
        let pattern = Arc::new(generators::clique(5, 0));
        let target = Arc::new(generators::clique(3, 0));
        for algorithm in Algorithm::ALL {
            let borrowed = Engine::prepare(&pattern, &target, algorithm);
            let owned =
                PreparedEngine::prepare(Arc::clone(&pattern), Arc::clone(&target), algorithm);
            assert!(borrowed.impossible(), "{algorithm}");
            assert!(owned.impossible(), "{algorithm}");
            assert_eq!(owned.engine().impossible(), borrowed.impossible());
            assert_eq!(owned.run(&RunConfig::default()).matches, 0);
        }
    }

    #[test]
    fn strategies_agree_on_results_and_are_reported() {
        let pattern = generators::undirected_cycle(4, 0);
        let target = generators::grid(4, 4);
        for algorithm in Algorithm::ALL {
            let reference = Engine::prepare(&pattern, &target, algorithm)
                .run(&RunConfig::default().with_collected_mappings(10_000));
            assert_eq!(reference.strategy, Strategy::RiGreedy);
            for strategy in Strategy::ALL {
                let engine = Engine::prepare_for(
                    &pattern,
                    &target,
                    algorithm,
                    &RunConfig::default().with_strategy(strategy),
                );
                assert_eq!(engine.strategy(), strategy);
                assert_eq!(engine.plan().strategy, strategy);
                assert_eq!(engine.plan().cost.positions.len(), 4);
                let outcome = engine.run(&RunConfig::default().with_collected_mappings(10_000));
                assert_eq!(outcome.strategy, strategy, "{algorithm} {strategy}");
                assert_eq!(outcome.matches, reference.matches, "{algorithm} {strategy}");
                assert_eq!(
                    outcome.mappings, reference.mappings,
                    "{algorithm} {strategy}"
                );
                // Parallel outcomes report the strategy too.
                let par = engine.run(&RunConfig::new(Scheduler::work_stealing(2)));
                assert_eq!(par.strategy, strategy);
                assert_eq!(par.matches, reference.matches);
            }
        }
    }

    #[test]
    fn prepared_engine_exposes_its_plan() {
        let pattern = Arc::new(generators::directed_cycle(3, 0));
        let target = Arc::new(generators::clique(5, 0));
        let prepared = PreparedEngine::prepare_planned(
            Arc::clone(&pattern),
            Arc::clone(&target),
            Algorithm::RiDsSiFc,
            CandidateMode::Intersection,
            Strategy::LeastFrequentLabelFirst,
        );
        assert_eq!(prepared.strategy(), Strategy::LeastFrequentLabelFirst);
        assert_eq!(prepared.candidate_mode(), CandidateMode::Intersection);
        assert_eq!(prepared.plan().num_positions(), 3);
        assert!(prepared.plan().cost.est_total_states > 0.0);
        assert_eq!(prepared.run(&RunConfig::default()).matches, 60);
    }

    #[test]
    fn trace_sink_observes_schedule_invariant_counts() {
        let pattern = generators::undirected_cycle(4, 0);
        let target = generators::grid(4, 4);
        let reference: Option<(Vec<u64>, Vec<u64>)> = schedulers()
            .into_iter()
            .map(|scheduler| {
                let mut engine = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);
                let sink = Arc::new(TraceSink::new(engine.plan().num_positions()));
                engine.set_trace_sink(Arc::clone(&sink));
                let outcome = engine.run(&RunConfig::new(scheduler));
                // Every consistency check lands in exactly one position
                // bucket, so the sink total reproduces the outcome's count.
                assert_eq!(sink.states_total(), outcome.states, "{scheduler}");
                (sink.candidates_per_position(), sink.states_per_position())
            })
            .fold(None, |reference, observed| match reference {
                None => Some(observed),
                Some(reference) => {
                    assert_eq!(observed, reference);
                    Some(reference)
                }
            });
        assert!(reference.is_some());
    }

    #[test]
    fn trace_sink_collects_steal_counters_under_work_stealing() {
        let pattern = generators::directed_path(2, 0);
        let target = generators::clique(16, 0);
        let mut engine = Engine::prepare(&pattern, &target, Algorithm::Ri);
        let sink = Arc::new(TraceSink::new(engine.plan().num_positions()));
        engine.set_trace_sink(Arc::clone(&sink));
        let outcome = engine.run(&RunConfig::new(Scheduler::work_stealing(4)));
        assert_eq!(sink.steals(), outcome.steals);
        assert_eq!(sink.steal_requests(), outcome.steal_requests);
        let executed: u64 = outcome.worker_stats.iter().map(|w| w.tasks_executed).sum();
        assert_eq!(sink.tasks_executed(), executed);
    }

    #[test]
    fn prepared_engine_is_shareable_across_threads() {
        let pattern = Arc::new(generators::directed_cycle(3, 0));
        let target = Arc::new(generators::clique(5, 0));
        let prepared = Arc::new(PreparedEngine::prepare(
            pattern,
            target,
            Algorithm::RiDsSiFc,
        ));
        assert!(!prepared.impossible());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let prepared = Arc::clone(&prepared);
                std::thread::spawn(move || {
                    let scheduler = if i % 2 == 0 {
                        Scheduler::Sequential
                    } else {
                        Scheduler::work_stealing(2)
                    };
                    prepared.run(&RunConfig::new(scheduler)).matches
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), 60);
        }
    }
}

//! Stress regression for streaming enumeration under the work-stealing
//! scheduler.
//!
//! A streaming consumer makes the match visitor *block* (bounded-channel
//! backpressure), which radically changes steal timing.  This exposed a
//! termination-detection hole where the Dijkstra ring could complete a white
//! round while a stolen task group was still in flight in a thief's mailbox,
//! silently dropping its subtree — runs reported fewer matches than exist.
//! The engine now holds the ring token while a steal request is pending;
//! this test hammers that window.

use sge_engine::{Engine, RunConfig, Scheduler};
use sge_ri::Algorithm;

#[test]
fn streaming_never_drops_matches_under_work_stealing() {
    let pattern = sge_graph::generators::directed_cycle(3, 0);
    let target = sge_graph::generators::clique(5, 0); // 60 embeddings
    let engine = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);
    let reference = engine.run(&RunConfig::new(Scheduler::work_stealing(2)));
    assert_eq!(reference.matches, 60);
    for trial in 0..300 {
        let mut rows = 0u64;
        // Capacity 2 keeps workers blocked in `send` most of the time.
        let outcome = engine.run_streaming(
            &RunConfig::new(Scheduler::work_stealing(2)),
            2,
            |_mapping| {
                rows += 1;
                true
            },
        );
        assert_eq!(outcome.matches, 60, "trial {trial}: dropped matches");
        assert_eq!(rows, 60, "trial {trial}: dropped rows");
        assert_eq!(outcome.states, reference.states, "trial {trial}");
        assert!(!outcome.cancelled, "trial {trial}");
    }
}

//! Optional u64-bitmap adjacency sidecar for dense neighborhoods.
//!
//! The CSR lists in [`crate::Graph`] are ideal for sparse targets, but on
//! dense neighborhoods the galloping intersection in the matcher degenerates
//! into long probe chains.  This module builds, *alongside* the CSR arrays, a
//! per-`(node, direction, label)` bitmap row over the target's node ids for
//! every neighborhood whose same-label degree meets a threshold: two dense
//! neighborhoods then intersect with word-wise `AND` instead of galloping.
//!
//! The sidecar also carries a compact Bloom-style **label signature** per
//! node and direction (one bit per `label & 63` of each incident neighbor
//! label and edge label).  Signatures are always built — they cost 16 bytes
//! per node — and power the candidate prefilter: a candidate whose signature
//! is missing a required bit cannot possibly satisfy all pattern edges and is
//! rejected before any intersection kernel runs.
//!
//! Total row storage is capped by [`BitmapConfig::max_bytes`]; if a target
//! would exceed the cap the rows are skipped entirely (`capped() == true`)
//! and the matcher falls back to CSR-only galloping.  Signatures survive the
//! cap because they are O(nodes), not O(nodes²).

use crate::graph::{EdgeRef, Graph, Label, NodeId};

const WORD_BITS: usize = 64;
const BYTES_PER_WORD: usize = 8;

/// Default same-label degree at or above which a bitmap row is built.
pub const DEFAULT_DEGREE_THRESHOLD: usize = 8;

/// Default cap on total bitmap row bytes per target (16 MiB).
pub const DEFAULT_MAX_BITMAP_BYTES: usize = 16 * 1024 * 1024;

/// The Bloom-style signature bit for a label: bit `label & 63`.
///
/// Both sides of the prefilter (pattern-required bits and target-observed
/// bits) hash with this same function, so a superset test
/// `required & !observed == 0` can produce false *passes* (harmless — the
/// kernel still runs) but never false *rejects*.
#[inline]
pub fn label_sig_bit(label: Label) -> u64 {
    1u64 << (label & 63)
}

/// Tuning knobs for [`AdjacencyBitmaps::build`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitmapConfig {
    /// Minimum same-label directed degree for a `(node, direction, label)`
    /// neighborhood to earn a bitmap row.
    pub degree_threshold: usize,
    /// Cap on total row bytes; exceeding it skips rows (CSR-only fallback).
    pub max_bytes: usize,
}

impl Default for BitmapConfig {
    fn default() -> Self {
        BitmapConfig {
            degree_threshold: DEFAULT_DEGREE_THRESHOLD,
            max_bytes: DEFAULT_MAX_BITMAP_BYTES,
        }
    }
}

/// Bitmap adjacency view built alongside a [`Graph`]'s CSR arrays.
///
/// Immutable once built; share via `Arc` next to the graph it describes.
#[derive(Clone, Debug)]
pub struct AdjacencyBitmaps {
    nodes: usize,
    words_per_row: usize,
    /// Flat row storage: row `r` occupies `rows[r*wpr .. (r+1)*wpr]`.
    rows: Vec<u64>,
    /// Sorted `(node, label, row_number)` index for out-neighborhood rows.
    out_index: Vec<(NodeId, Label, u32)>,
    /// Sorted `(node, label, row_number)` index for in-neighborhood rows.
    in_index: Vec<(NodeId, Label, u32)>,
    /// Per-node out-direction label signature (neighbor labels ∪ edge labels).
    out_sigs: Vec<u64>,
    /// Per-node in-direction label signature.
    in_sigs: Vec<u64>,
    /// Bytes the rows *would* need; equals `rows` bytes unless capped.
    required_row_bytes: usize,
    /// True when `required_row_bytes` exceeded the cap and rows were skipped.
    capped: bool,
}

impl AdjacencyBitmaps {
    /// Builds the sidecar for `graph`.
    ///
    /// Never fails: when the rows would exceed `config.max_bytes` the result
    /// has `capped() == true`, no rows, and intact signatures.
    pub fn build(graph: &Graph, config: &BitmapConfig) -> AdjacencyBitmaps {
        let n = graph.num_nodes();
        let words_per_row = n.div_ceil(WORD_BITS);

        let mut out_sigs = vec![0u64; n];
        let mut in_sigs = vec![0u64; n];
        for v in graph.nodes() {
            out_sigs[v as usize] = signature(graph, graph.out_edges(v));
            in_sigs[v as usize] = signature(graph, graph.in_edges(v));
        }

        // First pass: decide which (node, direction, label) groups earn rows.
        let threshold = config.degree_threshold.max(1);
        let mut out_specs: Vec<(NodeId, Label)> = Vec::new();
        let mut in_specs: Vec<(NodeId, Label)> = Vec::new();
        let mut scratch: Vec<Label> = Vec::new();
        for v in graph.nodes() {
            dense_labels(graph.out_edges(v), threshold, &mut scratch);
            out_specs.extend(scratch.iter().map(|&l| (v, l)));
            dense_labels(graph.in_edges(v), threshold, &mut scratch);
            in_specs.extend(scratch.iter().map(|&l| (v, l)));
        }

        let total_rows = out_specs.len() + in_specs.len();
        let required_row_bytes = total_rows * words_per_row * BYTES_PER_WORD;
        if required_row_bytes > config.max_bytes {
            return AdjacencyBitmaps {
                nodes: n,
                words_per_row,
                rows: Vec::new(),
                out_index: Vec::new(),
                in_index: Vec::new(),
                out_sigs,
                in_sigs,
                required_row_bytes,
                capped: true,
            };
        }

        // Second pass: materialize the rows.
        let mut rows = vec![0u64; total_rows * words_per_row];
        let mut out_index = Vec::with_capacity(out_specs.len());
        let mut in_index = Vec::with_capacity(in_specs.len());
        let mut next_row = 0u32;
        for &(v, label) in &out_specs {
            fill_row(
                &mut rows[next_row as usize * words_per_row..],
                graph.out_edges(v),
                label,
            );
            out_index.push((v, label, next_row));
            next_row += 1;
        }
        for &(v, label) in &in_specs {
            fill_row(
                &mut rows[next_row as usize * words_per_row..],
                graph.in_edges(v),
                label,
            );
            in_index.push((v, label, next_row));
            next_row += 1;
        }

        AdjacencyBitmaps {
            nodes: n,
            words_per_row,
            rows,
            out_index,
            in_index,
            out_sigs,
            in_sigs,
            required_row_bytes,
            capped: false,
        }
    }

    /// Number of nodes in the graph this sidecar describes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Words in each bitmap row (`ceil(nodes / 64)`).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Number of bitmap rows actually stored.
    pub fn row_count(&self) -> usize {
        self.out_index.len() + self.in_index.len()
    }

    /// Bytes of row storage actually allocated (0 when capped).
    pub fn row_bytes(&self) -> usize {
        self.rows.len() * BYTES_PER_WORD
    }

    /// Bytes the rows would require without the cap.
    pub fn required_row_bytes(&self) -> usize {
        self.required_row_bytes
    }

    /// True when rows were skipped because they would exceed the cap.
    pub fn capped(&self) -> bool {
        self.capped
    }

    /// Bitmap over node ids of `v`'s out-neighbors along `label`-edges, if a
    /// row was built for that neighborhood.
    #[inline]
    pub fn out_row(&self, v: NodeId, label: Label) -> Option<&[u64]> {
        self.lookup(&self.out_index, v, label)
    }

    /// Bitmap over node ids of `v`'s in-neighbors along `label`-edges, if a
    /// row was built for that neighborhood.
    #[inline]
    pub fn in_row(&self, v: NodeId, label: Label) -> Option<&[u64]> {
        self.lookup(&self.in_index, v, label)
    }

    /// Out-direction label signature of `v` (see [`label_sig_bit`]).
    #[inline]
    pub fn out_sig(&self, v: NodeId) -> u64 {
        self.out_sigs[v as usize]
    }

    /// In-direction label signature of `v`.
    #[inline]
    pub fn in_sig(&self, v: NodeId) -> u64 {
        self.in_sigs[v as usize]
    }

    #[inline]
    fn lookup(&self, index: &[(NodeId, Label, u32)], v: NodeId, label: Label) -> Option<&[u64]> {
        let at = index
            .binary_search_by_key(&(v, label), |&(node, l, _)| (node, l))
            .ok()?;
        let row = index[at].2 as usize * self.words_per_row;
        Some(&self.rows[row..row + self.words_per_row])
    }
}

/// OR of the signature bits of every neighbor label and edge label in `edges`.
fn signature(graph: &Graph, edges: &[EdgeRef]) -> u64 {
    let mut sig = 0u64;
    for e in edges {
        sig |= label_sig_bit(graph.label(e.node)) | label_sig_bit(e.label);
    }
    sig
}

/// Fills `labels` with the distinct edge labels in `edges` that occur at
/// least `threshold` times.
fn dense_labels(edges: &[EdgeRef], threshold: usize, labels: &mut Vec<Label>) {
    labels.clear();
    if edges.len() < threshold {
        return;
    }
    let mut sorted: Vec<Label> = edges.iter().map(|e| e.label).collect();
    sorted.sort_unstable();
    let mut run_start = 0;
    for i in 1..=sorted.len() {
        if i == sorted.len() || sorted[i] != sorted[run_start] {
            if i - run_start >= threshold {
                labels.push(sorted[run_start]);
            }
            run_start = i;
        }
    }
}

/// Sets bit `e.node` for every edge in `edges` whose label is `label`.
fn fill_row(row: &mut [u64], edges: &[EdgeRef], label: Label) {
    for e in edges {
        if e.label == label {
            let idx = e.node as usize;
            row[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn row_bits(row: &[u64]) -> Vec<usize> {
        let mut out = Vec::new();
        for (w, &word) in row.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                out.push(w * WORD_BITS + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
        out
    }

    #[test]
    fn clique_rows_match_csr_adjacency() {
        let g = generators::clique(12, 0);
        let maps = AdjacencyBitmaps::build(&g, &BitmapConfig::default());
        assert!(!maps.capped());
        assert_eq!(maps.row_count(), 24); // one out + one in row per node
        for v in g.nodes() {
            let row = maps.out_row(v, 0).expect("dense out row");
            let expect: Vec<usize> = g.out_edges(v).iter().map(|e| e.node as usize).collect();
            assert_eq!(row_bits(row), expect);
            let row = maps.in_row(v, 0).expect("dense in row");
            let expect: Vec<usize> = g.in_edges(v).iter().map(|e| e.node as usize).collect();
            assert_eq!(row_bits(row), expect);
        }
    }

    #[test]
    fn sparse_neighborhoods_get_no_rows_but_keep_signatures() {
        let g = generators::directed_cycle(6, 0);
        let maps = AdjacencyBitmaps::build(&g, &BitmapConfig::default());
        assert!(!maps.capped());
        assert_eq!(maps.row_count(), 0);
        assert_eq!(maps.out_row(0, 0), None);
        // Every node has one out-edge with node label 0 and edge label 0.
        for v in g.nodes() {
            assert_eq!(maps.out_sig(v), label_sig_bit(0));
            assert_eq!(maps.in_sig(v), label_sig_bit(0));
        }
    }

    #[test]
    fn cap_boundary_is_exact() {
        let g = generators::clique(12, 0);
        let probe = AdjacencyBitmaps::build(&g, &BitmapConfig::default());
        let required = probe.required_row_bytes();
        assert!(required > 0);

        // Exactly at the cap: rows are built.
        let at_cap = AdjacencyBitmaps::build(
            &g,
            &BitmapConfig {
                degree_threshold: DEFAULT_DEGREE_THRESHOLD,
                max_bytes: required,
            },
        );
        assert!(!at_cap.capped());
        assert_eq!(at_cap.row_bytes(), required);

        // One byte under: rows skipped, signatures intact.
        let over = AdjacencyBitmaps::build(
            &g,
            &BitmapConfig {
                degree_threshold: DEFAULT_DEGREE_THRESHOLD,
                max_bytes: required - 1,
            },
        );
        assert!(over.capped());
        assert_eq!(over.row_count(), 0);
        assert_eq!(over.row_bytes(), 0);
        assert_eq!(over.required_row_bytes(), required);
        assert_eq!(over.out_row(0, 0), None);
        assert_eq!(over.out_sig(0), probe.out_sig(0));
    }

    #[test]
    fn signatures_mix_node_and_edge_labels() {
        let mut b = crate::GraphBuilder::new();
        let a = b.add_node(2);
        let c = b.add_node(65); // 65 & 63 == 1: collides with label 1's bit
        b.add_edge(a, c, 7);
        let g = b.build();
        let maps = AdjacencyBitmaps::build(&g, &BitmapConfig::default());
        assert_eq!(maps.out_sig(a), label_sig_bit(65) | label_sig_bit(7));
        assert_eq!(maps.out_sig(a) & label_sig_bit(1), label_sig_bit(1));
        assert_eq!(maps.in_sig(c), label_sig_bit(2) | label_sig_bit(7));
        assert_eq!(maps.in_sig(a), 0);
    }

    #[test]
    fn empty_graph_builds_degenerate_sidecar() {
        let g = crate::GraphBuilder::new().build();
        let maps = AdjacencyBitmaps::build(&g, &BitmapConfig::default());
        assert!(!maps.capped());
        assert_eq!(maps.row_count(), 0);
        assert_eq!(maps.words_per_row(), 0);
    }
}

//! Mutable construction of [`Graph`]s.

use crate::graph::{EdgeRef, Graph, Label, NodeId};

/// Incremental builder producing an immutable CSR [`Graph`].
///
/// Duplicate directed edges are collapsed (the first label wins); self-loops
/// are allowed since some biochemical graphs contain them, but the RI search
/// never maps two pattern nodes onto one target node, so they only matter for
/// degree statistics.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    node_labels: Vec<Label>,
    edges: Vec<(NodeId, NodeId, Label)>,
    name: String,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Creates a builder pre-sized for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            node_labels: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            name: String::new(),
        }
    }

    /// Names the resulting graph.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Adds a node with the given label and returns its id.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        let id = self.node_labels.len() as NodeId;
        self.node_labels.push(label);
        id
    }

    /// Adds `count` nodes all carrying `label`; returns the id of the first.
    pub fn add_nodes(&mut self, count: usize, label: Label) -> NodeId {
        let first = self.node_labels.len() as NodeId;
        self.node_labels.extend(std::iter::repeat_n(label, count));
        first
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Adds a directed edge `(u, v)` with a label.
    ///
    /// # Panics
    /// Panics if either endpoint has not been added.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, label: Label) {
        let n = self.node_labels.len() as NodeId;
        assert!(
            u < n && v < n,
            "edge ({u}, {v}) references unknown node (n={n})"
        );
        self.edges.push((u, v, label));
    }

    /// Adds the pair of directed edges `(u, v)` and `(v, u)`, both labeled
    /// `label` — the usual encoding of an undirected biochemical bond.
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId, label: Label) {
        self.add_edge(u, v, label);
        if u != v {
            self.add_edge(v, u, label);
        }
    }

    /// Finalizes the CSR structure.
    pub fn build(self) -> Graph {
        let n = self.node_labels.len();
        let mut edges = self.edges;
        // Sort by (tail, head) and deduplicate parallel edges (first label wins,
        // as in the original RI loader which ignores repeated bonds).
        edges.sort_by_key(|&(u, v, _)| (u, v));
        edges.dedup_by_key(|&mut (u, v, _)| (u, v));

        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _, _) in &edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_edges: Vec<EdgeRef> = edges
            .iter()
            .map(|&(_, v, l)| EdgeRef { node: v, label: l })
            .collect();

        // In-edges: bucket by head, then sort each bucket by tail id.
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, v, _) in &edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_edges = vec![EdgeRef { node: 0, label: 0 }; edges.len()];
        for &(u, v, l) in &edges {
            let slot = cursor[v as usize] as usize;
            in_edges[slot] = EdgeRef { node: u, label: l };
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            let lo = in_offsets[v] as usize;
            let hi = in_offsets[v + 1] as usize;
            in_edges[lo..hi].sort_unstable_by_key(|e| e.node);
        }

        Graph {
            node_labels: self.node_labels,
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
            num_edges: edges.len(),
            name: self.name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_are_collapsed() {
        let mut b = GraphBuilder::new();
        b.add_nodes(2, 0);
        b.add_edge(0, 1, 5);
        b.add_edge(0, 1, 9);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_label(0, 1), Some(5));
    }

    #[test]
    fn undirected_edge_adds_both_directions() {
        let mut b = GraphBuilder::new();
        b.add_nodes(2, 0);
        b.add_undirected_edge(0, 1, 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_label(0, 1), Some(3));
        assert_eq!(g.edge_label(1, 0), Some(3));
    }

    #[test]
    fn self_loop_undirected_added_once() {
        let mut b = GraphBuilder::new();
        b.add_nodes(1, 0);
        b.add_undirected_edge(0, 0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let mut b = GraphBuilder::new();
        b.add_nodes(5, 0);
        b.add_edge(0, 4, 0);
        b.add_edge(0, 2, 0);
        b.add_edge(0, 3, 0);
        b.add_edge(1, 0, 0);
        b.add_edge(4, 0, 0);
        let g = b.build();
        let out: Vec<u32> = g.out_edges(0).iter().map(|e| e.node).collect();
        assert_eq!(out, vec![2, 3, 4]);
        let inn: Vec<u32> = g.in_edges(0).iter().map(|e| e.node).collect();
        assert_eq!(inn, vec![1, 4]);
    }

    #[test]
    fn named_builder_propagates_name() {
        let g = GraphBuilder::new().name("target-1").build();
        assert_eq!(g.name(), "target-1");
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn edge_to_unknown_node_panics() {
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_edge(0, 1, 0);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(10, 20);
        let u = b.add_node(1);
        let v = b.add_node(2);
        b.add_edge(u, v, 0);
        let g = b.build();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
    }
}

//! Deterministic small graph generators.
//!
//! These are used by unit tests, property tests and the examples; the
//! synthetic *data collections* emulating the paper's PPIS32 / GRAEMLIN32 /
//! PDBSv1 inputs live in the `sge-datasets` crate.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, Label, NodeId, DEFAULT_EDGE_LABEL};

/// A directed path `0 -> 1 -> … -> n-1`, all nodes labeled `label`.
pub fn directed_path(n: usize, label: Label) -> Graph {
    let mut b = GraphBuilder::new().name(format!("path-{n}"));
    b.add_nodes(n, label);
    for i in 1..n {
        b.add_edge((i - 1) as NodeId, i as NodeId, DEFAULT_EDGE_LABEL);
    }
    b.build()
}

/// A directed cycle on `n` nodes, all labeled `label`.
pub fn directed_cycle(n: usize, label: Label) -> Graph {
    let mut b = GraphBuilder::new().name(format!("cycle-{n}"));
    b.add_nodes(n, label);
    for i in 0..n {
        b.add_edge(i as NodeId, ((i + 1) % n) as NodeId, DEFAULT_EDGE_LABEL);
    }
    b.build()
}

/// An undirected path encoded with symmetric directed edges.
pub fn undirected_path(n: usize, label: Label) -> Graph {
    let mut b = GraphBuilder::new().name(format!("upath-{n}"));
    b.add_nodes(n, label);
    for i in 1..n {
        b.add_undirected_edge((i - 1) as NodeId, i as NodeId, DEFAULT_EDGE_LABEL);
    }
    b.build()
}

/// An undirected cycle encoded with symmetric directed edges.
pub fn undirected_cycle(n: usize, label: Label) -> Graph {
    let mut b = GraphBuilder::new().name(format!("ucycle-{n}"));
    b.add_nodes(n, label);
    for i in 0..n {
        b.add_undirected_edge(i as NodeId, ((i + 1) % n) as NodeId, DEFAULT_EDGE_LABEL);
    }
    b.build()
}

/// The complete graph `K_n` (symmetric directed edges), all nodes labeled
/// `label`.
pub fn clique(n: usize, label: Label) -> Graph {
    let mut b = GraphBuilder::new().name(format!("clique-{n}"));
    b.add_nodes(n, label);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_undirected_edge(i as NodeId, j as NodeId, DEFAULT_EDGE_LABEL);
        }
    }
    b.build()
}

/// A star with one center (label `center_label`) and `leaves` leaves
/// (label `leaf_label`), edges pointing away from the center.
pub fn star(leaves: usize, center_label: Label, leaf_label: Label) -> Graph {
    let mut b = GraphBuilder::new().name(format!("star-{leaves}"));
    let center = b.add_node(center_label);
    for _ in 0..leaves {
        let leaf = b.add_node(leaf_label);
        b.add_edge(center, leaf, DEFAULT_EDGE_LABEL);
    }
    b.build()
}

/// An `rows x cols` grid with symmetric directed edges, all nodes labeled 0.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new().name(format!("grid-{rows}x{cols}"));
    b.add_nodes(rows * cols, 0);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_undirected_edge(id(r, c), id(r, c + 1), DEFAULT_EDGE_LABEL);
            }
            if r + 1 < rows {
                b.add_undirected_edge(id(r, c), id(r + 1, c), DEFAULT_EDGE_LABEL);
            }
        }
    }
    b.build()
}

/// A single directed labeled triangle `a -> b -> c -> a` with node labels
/// `(la, lb, lc)`; handy in matcher unit tests.
pub fn labeled_triangle(la: Label, lb: Label, lc: Label) -> Graph {
    let mut b = GraphBuilder::new().name("triangle");
    let a = b.add_node(la);
    let bb = b.add_node(lb);
    let c = b.add_node(lc);
    b.add_edge(a, bb, DEFAULT_EDGE_LABEL);
    b.add_edge(bb, c, DEFAULT_EDGE_LABEL);
    b.add_edge(c, a, DEFAULT_EDGE_LABEL);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_sizes() {
        let g = directed_path(5, 1);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_connected());
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn cycle_degrees() {
        let g = directed_cycle(6, 0);
        assert_eq!(g.num_edges(), 6);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
    }

    #[test]
    fn clique_edge_count() {
        let g = clique(5, 0);
        assert_eq!(g.num_edges(), 5 * 4);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 8);
        }
    }

    #[test]
    fn star_structure() {
        let g = star(4, 7, 3);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.label(0), 7);
        assert_eq!(g.out_degree(0), 4);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        // 3*3 horizontal + 2*4 vertical undirected edges, doubled.
        assert_eq!(g.num_edges(), 2 * (3 * 3 + 2 * 4));
        assert!(g.is_connected());
    }

    #[test]
    fn undirected_variants_are_symmetric() {
        let g = undirected_cycle(5, 0);
        for (u, v, _) in g.edges().collect::<Vec<_>>() {
            assert!(g.has_edge(v, u));
        }
        let p = undirected_path(4, 0);
        assert_eq!(p.num_edges(), 6);
    }

    #[test]
    fn labeled_triangle_labels() {
        let g = labeled_triangle(1, 2, 3);
        assert_eq!(g.label(0), 1);
        assert_eq!(g.label(1), 2);
        assert_eq!(g.label(2), 3);
        assert!(g.has_edge(2, 0));
    }
}

//! The immutable CSR graph used by every matcher in the workspace.

/// Node identifier. Targets in the paper's collections have at most ~33k nodes,
/// so 32 bits keep adjacency arrays and mappings compact.
pub type NodeId = u32;

/// Node / edge label. Labels are interned small integers; equality is the
/// compatibility relation (the paper assumes strict label equality).
pub type Label = u32;

/// Label used when a graph is "unlabeled" on its edges.
pub const DEFAULT_EDGE_LABEL: Label = 0;

/// A directed labeled edge as seen from one endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRef {
    /// The other endpoint (head for out-edges, tail for in-edges).
    pub node: NodeId,
    /// The edge label.
    pub label: Label,
}

/// An immutable directed graph with node and edge labels, stored as two CSR
/// adjacency structures (out-edges and in-edges) with neighbor lists sorted by
/// node id.
///
/// Construct via [`crate::GraphBuilder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    pub(crate) node_labels: Vec<Label>,
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_edges: Vec<EdgeRef>,
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_edges: Vec<EdgeRef>,
    pub(crate) num_edges: usize,
    pub(crate) name: String,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// A human-readable name (file stem or generator description).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the graph name (used by dataset generators and the io module).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Label of node `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.node_labels[v as usize]
    }

    /// All node labels, indexed by node id.
    #[inline]
    pub fn node_labels(&self) -> &[Label] {
        &self.node_labels
    }

    /// Outgoing edges of `v`, sorted by head node id.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeRef] {
        let lo = self.out_offsets[v as usize] as usize;
        let hi = self.out_offsets[v as usize + 1] as usize;
        &self.out_edges[lo..hi]
    }

    /// Incoming edges of `v`, sorted by tail node id.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[EdgeRef] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_edges[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_edges(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_edges(v).len()
    }

    /// Total degree (in + out) of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Label of the directed edge `(u, v)` if it exists.
    ///
    /// Binary search over the (sorted) shorter of `u`'s out-list and `v`'s
    /// in-list.
    #[inline]
    pub fn edge_label(&self, u: NodeId, v: NodeId) -> Option<Label> {
        let out = self.out_edges(u);
        let inn = self.in_edges(v);
        if out.len() <= inn.len() {
            out.binary_search_by_key(&v, |e| e.node)
                .ok()
                .map(|idx| out[idx].label)
        } else {
            inn.binary_search_by_key(&u, |e| e.node)
                .ok()
                .map(|idx| inn[idx].label)
        }
    }

    /// Whether the directed edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_label(u, v).is_some()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over all directed edges as `(tail, head, label)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Label)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out_edges(u).iter().map(move |e| (u, e.node, e.label)))
    }

    /// The distinct neighbors of `v` ignoring edge direction, sorted and
    /// deduplicated.  Convenience wrapper over
    /// [`Graph::undirected_neighbors_into`]; callers in loops should reuse a
    /// buffer through the `_into` variant instead of allocating per call.
    pub fn undirected_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut result = Vec::new();
        self.undirected_neighbors_into(v, &mut result);
        result
    }

    /// Fills `out` with the distinct neighbors of `v` ignoring edge
    /// direction, sorted and deduplicated, reusing `out`'s allocation.
    ///
    /// Both CSR adjacency lists are already sorted by node id, so this is a
    /// linear merge — no sort, and no allocation beyond growing `out` once
    /// to the neighborhood size.
    pub fn undirected_neighbors_into(&self, v: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let a = self.out_edges(v);
        let b = self.in_edges(v);
        out.reserve(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let next = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => {
                    if x.node <= y.node {
                        i += 1;
                        if x.node == y.node {
                            j += 1;
                        }
                        x.node
                    } else {
                        j += 1;
                        y.node
                    }
                }
                (Some(x), None) => {
                    i += 1;
                    x.node
                }
                (None, Some(y)) => {
                    j += 1;
                    y.node
                }
                (None, None) => unreachable!("loop condition guarantees one side"),
            };
            if out.last() != Some(&next) {
                out.push(next);
            }
        }
    }

    /// Whether `u` and `v` are adjacent in either direction.
    #[inline]
    pub fn adjacent(&self, u: NodeId, v: NodeId) -> bool {
        self.has_edge(u, v) || self.has_edge(v, u)
    }

    /// Maximum node label value plus one (0 for an empty graph); a convenient
    /// bound for label-indexed tables.
    pub fn label_bound(&self) -> usize {
        self.node_labels
            .iter()
            .copied()
            .max()
            .map_or(0, |l| l as usize + 1)
    }

    /// Whether the graph, viewed as undirected, is connected.  Pattern graphs
    /// in the paper's collections are connected; the matcher falls back to a
    /// full target scan for positions without an ordered parent, so this is a
    /// diagnostic rather than a precondition.
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut visited = 1;
        let mut neighbors = Vec::new();
        while let Some(v) = stack.pop() {
            self.undirected_neighbors_into(v, &mut neighbors);
            for &w in &neighbors {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    visited += 1;
                    stack.push(w);
                }
            }
        }
        visited == n
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    #[test]
    fn triangle_adjacency_and_degrees() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(2);
        let d = b.add_node(3);
        b.add_edge(a, c, 10);
        b.add_edge(c, d, 20);
        b.add_edge(d, a, 30);
        let g = b.build();

        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.label(a), 1);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.edge_label(a, c), Some(10));
        assert_eq!(g.edge_label(c, a), None);
        assert!(g.has_edge(d, a));
        assert!(g.adjacent(a, d));
        assert!(!g.adjacent(a, a));
        assert_eq!(g.undirected_neighbors(a), vec![c, d]);
        assert!(g.is_connected());
    }

    #[test]
    fn edges_iterator_covers_all_edges() {
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            b.add_node(0);
        }
        b.add_edge(0, 1, 0);
        b.add_edge(0, 2, 0);
        b.add_edge(3, 0, 7);
        let g = b.build();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1, 0), (0, 2, 0), (3, 0, 7)]);
    }

    #[test]
    fn undirected_neighbors_into_matches_allocating_variant() {
        let mut b = GraphBuilder::new();
        for _ in 0..5 {
            b.add_node(0);
        }
        b.add_edge(0, 0, 1); // self-loop: appears in both lists, deduped once
        b.add_edge(0, 2, 0);
        b.add_edge(3, 0, 0);
        b.add_edge(0, 4, 0);
        b.add_edge(4, 0, 0); // reciprocal pair still yields one neighbor
        let g = b.build();
        let mut buffer = vec![9, 9, 9]; // stale contents must be cleared
        g.undirected_neighbors_into(0, &mut buffer);
        assert_eq!(buffer, vec![0, 2, 3, 4]);
        assert_eq!(g.undirected_neighbors(0), buffer);
        g.undirected_neighbors_into(1, &mut buffer);
        assert!(buffer.is_empty());
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            b.add_node(0);
        }
        b.add_edge(0, 1, 0);
        b.add_edge(2, 3, 0);
        let g = b.build();
        assert!(!g.is_connected());
    }

    #[test]
    fn empty_graph_is_well_formed() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_connected());
        assert_eq!(g.label_bound(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn label_bound_tracks_max_label() {
        let mut b = GraphBuilder::new();
        b.add_node(5);
        b.add_node(2);
        let g = b.build();
        assert_eq!(g.label_bound(), 6);
    }
}

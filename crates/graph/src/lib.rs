//! Labeled directed graph substrate for subgraph enumeration.
//!
//! RI and RI-DS operate on directed graphs whose nodes and edges carry labels
//! (biochemical data: atom/residue types on nodes, bond/interaction types on
//! edges).  The hot operations during search are:
//!
//! * iterating the out-/in-neighborhood of a target node (candidate
//!   generation from the parent's image),
//! * testing whether a specific labeled edge exists (consistency checks),
//! * reading degrees and labels (cheap pruning).
//!
//! [`Graph`] therefore stores both adjacency directions in CSR form with
//! neighbor lists sorted by node id, so edge tests are binary searches over a
//! contiguous slice and neighborhood scans are cache-friendly sweeps — the
//! access pattern the paper identifies as the bottleneck ("running time is
//! dominated by loading the adjacency array into memory").
//!
//! The crate also provides:
//! * [`bitmap`] — an optional u64-bitmap adjacency sidecar for dense
//!   neighborhoods plus per-node label signatures for candidate prefiltering,
//! * [`builder::GraphBuilder`] — mutable construction with deduplication,
//! * [`io`] — a plain-text exchange format in the spirit of RI's `.gfu`/`.gfd`
//!   files,
//! * [`generators`] — small deterministic graphs used by tests and examples,
//! * [`stats`] — the per-collection statistics reported in Table 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod builder;
pub mod generators;
pub mod graph;
pub mod io;
pub mod partition;
pub mod stats;

pub use bitmap::{label_sig_bit, AdjacencyBitmaps, BitmapConfig};
pub use builder::GraphBuilder;
pub use graph::{EdgeRef, Graph, Label, NodeId, DEFAULT_EDGE_LABEL};
pub use partition::{Partition, PartitionSpec, ShardGraph, ShardMap};
pub use stats::GraphStats;

//! Degree-aware vertex-cut partitioning for the sharded serving tier.
//!
//! A [`Partition`] splits one target graph into `shards` subgraphs under a
//! simple contract that makes sharded enumeration *exact without cross-shard
//! communication*:
//!
//! 1. **Ownership is a partition.**  Every node is *owned* by exactly one
//!    shard ([`ShardMap`]).  Ownership drives deduplication: a sharded query
//!    only enumerates embeddings whose plan-root vertex is shard-owned, so
//!    the union of per-shard match sets equals the unsharded match set with
//!    no overlap.
//! 2. **Boundary vertices are replicated.**  Each shard graph is the induced
//!    subgraph of the `replication_hops`-hop undirected ball around its
//!    owned set: every full-graph edge whose endpoints both lie in the ball
//!    is present.  Any pattern whose root has undirected eccentricity at
//!    most `replication_hops` therefore matches entirely inside the shard
//!    whenever its root lands on an owned node — back-edge intersections
//!    stay shard-local.
//! 3. **Shard graphs are compacted.**  Nodes are re-numbered `0..ball_len`
//!    (sorted by global id) with a [`ShardGraph::to_global`] table mapping
//!    local ids back.  Compaction is what restores the dense-kernel story on
//!    shards: adjacency-bitmap rows shrink with the ball's node count, so a
//!    target whose sidecar blows the byte cap whole often fits per shard.
//!
//! Ownership assignment is degree-aware BFS region growing: each shard seeds
//! at the highest-degree unassigned node and grows a connected region until
//! its share of the total degree mass (the proxy for enumeration work) is
//! reached, re-seeding across components when the frontier empties.  The
//! `balance` knob bounds how far past an even split a region may grow before
//! it is cut off.

use crate::graph::{Graph, NodeId};
use crate::GraphBuilder;
use sge_util::Bitset;

/// Knobs for [`Partition::new`].
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionSpec {
    /// Number of shards to produce (at least 1).
    pub shards: usize,
    /// Allowed relative overshoot of a shard's degree-mass share before the
    /// region stops growing (0.1 = up to 10% past an even split).
    pub balance: f64,
    /// Radius of the replicated boundary ball, in undirected hops.  Patterns
    /// are servable when their root eccentricity is at most this.
    pub replication_hops: usize,
}

impl Default for PartitionSpec {
    fn default() -> Self {
        PartitionSpec {
            shards: 1,
            balance: 0.1,
            replication_hops: 2,
        }
    }
}

impl PartitionSpec {
    /// A spec for `shards` shards with default balance and replication.
    pub fn new(shards: usize) -> Self {
        PartitionSpec {
            shards: shards.max(1),
            ..PartitionSpec::default()
        }
    }
}

/// Which shard owns each global node.
#[derive(Clone, Debug)]
pub struct ShardMap {
    owner: Vec<u32>,
}

impl ShardMap {
    /// The shard that owns global node `v`.
    #[inline]
    pub fn owner(&self, v: NodeId) -> usize {
        self.owner[v as usize] as usize
    }

    /// Per-node owner table, indexed by global node id.
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }
}

/// One shard: a compacted CSR subgraph plus its ownership metadata.
#[derive(Clone, Debug)]
pub struct ShardGraph {
    /// The compacted ball subgraph (local node ids `0..ball_len`).
    pub graph: Graph,
    /// Local id -> global id (strictly increasing: locals sort by global).
    pub to_global: Vec<NodeId>,
    /// Local ids this shard owns — the root-filter for deduplication.
    pub owned: Bitset,
}

impl ShardGraph {
    /// Number of owned (non-replica) nodes.
    pub fn owned_count(&self) -> usize {
        self.owned.count()
    }
}

/// The result of partitioning one target graph.
#[derive(Clone, Debug)]
pub struct Partition {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardGraph>,
    /// Global ownership table.
    pub map: ShardMap,
    /// The replication radius the shard graphs were built with.
    pub replication_hops: usize,
}

impl Partition {
    /// Partitions `graph` according to `spec` (see module docs).
    pub fn new(graph: &Graph, spec: &PartitionSpec) -> Partition {
        let shards = spec.shards.max(1);
        let owner = assign_owners(graph, shards, spec.balance);
        let shard_graphs = (0..shards)
            .map(|s| build_shard(graph, &owner, s as u32, spec.replication_hops))
            .collect();
        Partition {
            shards: shard_graphs,
            map: ShardMap { owner },
            replication_hops: spec.replication_hops,
        }
    }
}

/// Assigns every node an owner shard by degree-aware BFS region growing.
fn assign_owners(graph: &Graph, shards: usize, balance: f64) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut owner = vec![u32::MAX; n];
    if n == 0 {
        return owner;
    }
    // Seeds are tried in decreasing degree (ties: smaller id first), so each
    // region anchors on the hub it will spend the most work on.
    let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
    by_degree.sort_by_key(|&v| (usize::MAX - graph.degree(v), v));

    let mut assigned = 0usize;
    let mut seed_cursor = 0usize;
    let mut neighbors = Vec::new();

    for s in 0..shards as u32 {
        if assigned == n {
            break;
        }
        let shards_left = shards - s as usize;
        let remaining_degree: usize = by_degree
            .iter()
            .filter(|&&v| owner[v as usize] == u32::MAX)
            .map(|&v| graph.degree(v))
            .sum();
        // Last shard sweeps up everything; earlier shards aim for an even
        // split of the remaining degree mass, with `balance` slack.  The
        // node cap keeps zero-degree tails (which add no degree mass) from
        // piling onto one shard.
        let degree_target = remaining_degree / shards_left;
        let degree_limit = (degree_target as f64 * (1.0 + balance.max(0.0))) as usize;
        let node_cap = (n - assigned).div_ceil(shards_left);
        let last = shards_left == 1;

        let mut load = 0usize;
        let mut taken = 0usize;
        let mut queue = std::collections::VecDeque::new();
        'grow: loop {
            let Some(v) = queue.pop_front() else {
                // Frontier empty: re-seed in the next unassigned component.
                while seed_cursor < n && owner[by_degree[seed_cursor] as usize] != u32::MAX {
                    seed_cursor += 1;
                }
                match by_degree.get(seed_cursor) {
                    Some(&seed) if last || (taken < node_cap && load < degree_target.max(1)) => {
                        queue.push_back(seed);
                        continue 'grow;
                    }
                    _ => break 'grow,
                }
            };
            if owner[v as usize] != u32::MAX {
                continue;
            }
            let deg = graph.degree(v);
            if !last && taken > 0 && (taken >= node_cap || load + deg > degree_limit) {
                break 'grow;
            }
            owner[v as usize] = s;
            assigned += 1;
            load += deg;
            taken += 1;
            if !last && load >= degree_target && taken >= 1 {
                // Region reached its share; stop before the next admission.
                if load >= degree_target.max(1) {
                    break 'grow;
                }
            }
            graph.undirected_neighbors_into(v, &mut neighbors);
            for &w in &neighbors {
                if owner[w as usize] == u32::MAX {
                    queue.push_back(w);
                }
            }
        }
    }
    // Safety net: anything still unowned (possible only when `shards`
    // regions all hit their caps early) goes to the last shard.
    for o in owner.iter_mut() {
        if *o == u32::MAX {
            *o = shards as u32 - 1;
        }
    }
    owner
}

/// Builds one shard's compacted ball subgraph.
fn build_shard(graph: &Graph, owner: &[u32], shard: u32, hops: usize) -> ShardGraph {
    let n = graph.num_nodes();
    // BFS out to `hops` undirected hops from the owned set.
    let mut depth = vec![u32::MAX; n];
    let mut frontier: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| owner[v as usize] == shard)
        .collect();
    for &v in &frontier {
        depth[v as usize] = 0;
    }
    let mut neighbors = Vec::new();
    let mut level = 0u32;
    while level < hops as u32 && !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            graph.undirected_neighbors_into(v, &mut neighbors);
            for &w in &neighbors {
                if depth[w as usize] == u32::MAX {
                    depth[w as usize] = level + 1;
                    next.push(w);
                }
            }
        }
        frontier = next;
        level += 1;
    }

    // Compact: ball nodes in increasing global id become local 0..ball_len.
    let to_global: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| depth[v as usize] != u32::MAX)
        .collect();
    let mut to_local = vec![u32::MAX; n];
    for (local, &global) in to_global.iter().enumerate() {
        to_local[global as usize] = local as u32;
    }

    let mut builder = GraphBuilder::with_capacity(to_global.len(), 0).name(format!(
        "{}[shard{}]",
        graph.name(),
        shard
    ));
    for &global in &to_global {
        builder.add_node(graph.label(global));
    }
    for &global in &to_global {
        let u = to_local[global as usize];
        for edge in graph.out_edges(global) {
            let v = to_local[edge.node as usize];
            if v != u32::MAX {
                builder.add_edge(u, v, edge.label);
            }
        }
    }

    let mut owned = Bitset::new(to_global.len());
    for (local, &global) in to_global.iter().enumerate() {
        if owner[global as usize] == shard {
            owned.insert(local);
        }
    }

    ShardGraph {
        graph: builder.build(),
        to_global,
        owned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn check_invariants(graph: &Graph, partition: &Partition) {
        // Ownership is a partition of the node set.
        let mut owned_total = 0usize;
        for (s, shard) in partition.shards.iter().enumerate() {
            for local in shard.owned.iter() {
                let global = shard.to_global[local];
                assert_eq!(partition.map.owner(global), s);
                owned_total += 1;
            }
        }
        assert_eq!(owned_total, graph.num_nodes());

        for shard in &partition.shards {
            // Local ids are strictly increasing in global id.
            assert!(shard.to_global.windows(2).all(|w| w[0] < w[1]));
            // Labels survive compaction.
            for (local, &global) in shard.to_global.iter().enumerate() {
                assert_eq!(shard.graph.label(local as NodeId), graph.label(global));
            }
            // Every full-graph edge inside the ball is present, with its
            // label; and the shard graph has no edge the full graph lacks.
            let in_ball = |v: NodeId| shard.to_global.binary_search(&v).ok();
            for (u, v, l) in graph.edges() {
                if let (Some(lu), Some(lv)) = (in_ball(u), in_ball(v)) {
                    assert_eq!(
                        shard.graph.edge_label(lu as NodeId, lv as NodeId),
                        Some(l),
                        "edge ({u},{v}) lost in shard"
                    );
                }
            }
            for (lu, lv, l) in shard.graph.edges() {
                let (gu, gv) = (shard.to_global[lu as usize], shard.to_global[lv as usize]);
                assert_eq!(graph.edge_label(gu, gv), Some(l));
            }
        }
    }

    #[test]
    fn clique_two_shards_replicates_everything_at_one_hop() {
        let g = generators::clique(8, 0);
        let spec = PartitionSpec {
            shards: 2,
            replication_hops: 1,
            ..PartitionSpec::default()
        };
        let p = Partition::new(&g, &spec);
        check_invariants(&g, &p);
        // One hop from any node of a clique reaches every node: each shard's
        // ball is the whole graph, only ownership differs.
        for shard in &p.shards {
            assert_eq!(shard.graph.num_nodes(), 8);
            assert_eq!(shard.graph.num_edges(), g.num_edges());
            assert!(shard.owned_count() > 0);
            assert!(shard.owned_count() < 8);
        }
    }

    #[test]
    fn path_partition_balances_degree_mass() {
        let g = generators::directed_path(64, 0);
        let p = Partition::new(&g, &PartitionSpec::new(4));
        check_invariants(&g, &p);
        for shard in &p.shards {
            let owned = shard.owned_count();
            assert!(
                (8..=32).contains(&owned),
                "shard owns {owned} of 64 path nodes"
            );
        }
    }

    #[test]
    fn disconnected_components_are_all_assigned() {
        // Two cliques with no bridge: region growing must re-seed.
        let mut b = GraphBuilder::new();
        for _ in 0..8 {
            b.add_node(0);
        }
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    b.add_edge(u, v, 0);
                }
            }
        }
        for u in 4..8u32 {
            for v in 4..8u32 {
                if u != v {
                    b.add_edge(u, v, 0);
                }
            }
        }
        let g = b.build();
        let p = Partition::new(&g, &PartitionSpec::new(2));
        check_invariants(&g, &p);
        // The two components should land on different shards (equal degree
        // mass each), and with hops=2 each shard's ball stays one component.
        assert_eq!(p.shards[0].graph.num_nodes(), 4);
        assert_eq!(p.shards[1].graph.num_nodes(), 4);
    }

    #[test]
    fn zero_degree_nodes_are_spread_by_the_node_cap() {
        let mut b = GraphBuilder::new();
        for _ in 0..10 {
            b.add_node(0);
        }
        let g = b.build();
        let p = Partition::new(&g, &PartitionSpec::new(2));
        check_invariants(&g, &p);
        assert_eq!(p.shards[0].owned_count(), 5);
        assert_eq!(p.shards[1].owned_count(), 5);
    }

    #[test]
    fn more_shards_than_nodes_yields_empty_tails() {
        let g = generators::clique(2, 0);
        let p = Partition::new(&g, &PartitionSpec::new(4));
        check_invariants(&g, &p);
        let owned: usize = p.shards.iter().map(|s| s.owned_count()).sum();
        assert_eq!(owned, 2);
        assert!(p.shards.iter().any(|s| s.graph.num_nodes() == 0));
    }

    #[test]
    fn single_shard_is_the_identity() {
        let g = generators::clique(5, 3);
        let p = Partition::new(&g, &PartitionSpec::new(1));
        check_invariants(&g, &p);
        let shard = &p.shards[0];
        assert_eq!(shard.graph.num_nodes(), 5);
        assert_eq!(shard.graph.num_edges(), g.num_edges());
        assert_eq!(shard.owned_count(), 5);
        assert!((0..5).all(|v| p.map.owner(v) == 0));
    }
}

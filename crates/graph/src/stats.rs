//! Graph statistics in the shape of the paper's Table 1, plus the per-label
//! frequency tables the query planner's cost model consumes.

use crate::graph::{Graph, Label};
use sge_util::RunningStats;

/// Summary statistics of one graph: node/edge counts, the mean / standard
/// deviation of the total degree, the number of distinct node labels, and
/// per-label node/edge frequency tables.  Table 1 of the paper reports the
/// scalar quantities per collection; the frequency tables feed the
/// `sge-plan` cost model (how selective is a label filter, how long is the
/// average adjacency list for an edge label).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Minimum total degree.
    pub degree_min: usize,
    /// Maximum total degree.
    pub degree_max: usize,
    /// Mean total degree.
    pub degree_mean: f64,
    /// Population standard deviation of the total degree.
    pub degree_stddev: f64,
    /// Number of distinct node labels.
    pub distinct_labels: usize,
    /// `(label, count)` per distinct node label, sorted by label.
    pub node_label_counts: Vec<(Label, usize)>,
    /// `(label, count)` per distinct edge label, sorted by label.
    pub edge_label_counts: Vec<(Label, usize)>,
}

/// Builds a sorted `(label, count)` table from an unsorted label stream.
fn frequency_table(labels: impl Iterator<Item = Label>) -> Vec<(Label, usize)> {
    let mut sorted: Vec<Label> = labels.collect();
    sorted.sort_unstable();
    let mut table: Vec<(Label, usize)> = Vec::new();
    for label in sorted {
        match table.last_mut() {
            Some((last, count)) if *last == label => *count += 1,
            _ => table.push((label, 1)),
        }
    }
    table
}

/// Looks a label up in a sorted `(label, count)` table (0 when absent).
fn table_count(table: &[(Label, usize)], label: Label) -> usize {
    table
        .binary_search_by_key(&label, |&(l, _)| l)
        .map_or(0, |idx| table[idx].1)
}

impl GraphStats {
    /// Computes statistics for one graph.
    pub fn of(graph: &Graph) -> Self {
        let mut deg = RunningStats::new();
        for v in graph.nodes() {
            deg.push(graph.degree(v) as f64);
        }
        let node_label_counts = frequency_table(graph.node_labels().iter().copied());
        let edge_label_counts = frequency_table(graph.edges().map(|(_, _, l)| l));
        GraphStats {
            nodes: graph.num_nodes(),
            edges: graph.num_edges(),
            degree_min: deg.min().unwrap_or(0.0) as usize,
            degree_max: deg.max().unwrap_or(0.0) as usize,
            degree_mean: deg.mean(),
            degree_stddev: deg.stddev(),
            distinct_labels: node_label_counts.len(),
            node_label_counts,
            edge_label_counts,
        }
    }

    /// Number of nodes carrying `label` (0 when the label is absent).
    pub fn node_label_count(&self, label: Label) -> usize {
        table_count(&self.node_label_counts, label)
    }

    /// Number of directed edges carrying `label` (0 when the label is absent).
    pub fn edge_label_count(&self, label: Label) -> usize {
        table_count(&self.edge_label_counts, label)
    }
}

/// Aggregate statistics over a collection of graphs: the min/max node and edge
/// counts and the degree mean/σ pooled over all nodes of all graphs, matching
/// how Table 1 summarizes each data collection.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectionStats {
    /// Number of graphs in the collection.
    pub graphs: usize,
    /// Minimum node count over the graphs.
    pub nodes_min: usize,
    /// Maximum node count over the graphs.
    pub nodes_max: usize,
    /// Minimum edge count over the graphs.
    pub edges_min: usize,
    /// Maximum edge count over the graphs.
    pub edges_max: usize,
    /// Mean total degree pooled over every node of every graph.
    pub degree_mean: f64,
    /// Standard deviation of the pooled total degree.
    pub degree_stddev: f64,
}

impl CollectionStats {
    /// Computes pooled statistics over `graphs`.
    pub fn of<'a>(graphs: impl IntoIterator<Item = &'a Graph>) -> Self {
        let mut nodes_min = usize::MAX;
        let mut nodes_max = 0usize;
        let mut edges_min = usize::MAX;
        let mut edges_max = 0usize;
        let mut count = 0usize;
        let mut deg = RunningStats::new();
        for g in graphs {
            count += 1;
            nodes_min = nodes_min.min(g.num_nodes());
            nodes_max = nodes_max.max(g.num_nodes());
            edges_min = edges_min.min(g.num_edges());
            edges_max = edges_max.max(g.num_edges());
            for v in g.nodes() {
                deg.push(g.degree(v) as f64);
            }
        }
        if count == 0 {
            nodes_min = 0;
            edges_min = 0;
        }
        CollectionStats {
            graphs: count,
            nodes_min,
            nodes_max,
            edges_min,
            edges_max,
            degree_mean: deg.mean(),
            degree_stddev: deg.stddev(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_of_clique() {
        let g = generators::clique(5, 0);
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 20);
        assert_eq!(s.degree_min, 8);
        assert_eq!(s.degree_max, 8);
        assert!((s.degree_mean - 8.0).abs() < 1e-12);
        assert!(s.degree_stddev.abs() < 1e-12);
        assert_eq!(s.distinct_labels, 1);
    }

    #[test]
    fn stats_of_star_have_spread() {
        let g = generators::star(6, 1, 2);
        let s = GraphStats::of(&g);
        assert_eq!(s.degree_max, 6);
        assert_eq!(s.degree_min, 1);
        assert!(s.degree_stddev > 0.0);
        assert_eq!(s.distinct_labels, 2);
    }

    #[test]
    fn label_frequency_tables() {
        let g = generators::star(6, 1, 2); // center labeled 1, six leaves labeled 2
        let s = GraphStats::of(&g);
        assert_eq!(s.node_label_counts, vec![(1, 1), (2, 6)]);
        assert_eq!(s.node_label_count(1), 1);
        assert_eq!(s.node_label_count(2), 6);
        assert_eq!(s.node_label_count(99), 0);
        // All star edges carry the default edge label 0.
        assert_eq!(s.edge_label_count(0), s.edges);
        assert_eq!(s.edge_label_count(7), 0);
        assert_eq!(s.edge_label_counts.len(), 1);
    }

    #[test]
    fn collection_stats_pool_over_graphs() {
        let graphs = [generators::clique(3, 0), generators::clique(5, 0)];
        let s = CollectionStats::of(graphs.iter());
        assert_eq!(s.graphs, 2);
        assert_eq!(s.nodes_min, 3);
        assert_eq!(s.nodes_max, 5);
        assert_eq!(s.edges_min, 6);
        assert_eq!(s.edges_max, 20);
        // 3 nodes of degree 4 and 5 nodes of degree 8.
        let expected_mean = (3.0 * 4.0 + 5.0 * 8.0) / 8.0;
        assert!((s.degree_mean - expected_mean).abs() < 1e-12);
    }

    #[test]
    fn empty_collection_is_zeroed() {
        let s = CollectionStats::of(std::iter::empty());
        assert_eq!(s.graphs, 0);
        assert_eq!(s.nodes_min, 0);
        assert_eq!(s.nodes_max, 0);
    }
}

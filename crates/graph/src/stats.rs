//! Graph statistics in the shape of the paper's Table 1.

use crate::graph::Graph;
use sge_util::RunningStats;

/// Summary statistics of one graph: node/edge counts and the mean / standard
/// deviation of the total degree, plus the number of distinct node labels.
/// Table 1 of the paper reports exactly these quantities per collection.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Minimum total degree.
    pub degree_min: usize,
    /// Maximum total degree.
    pub degree_max: usize,
    /// Mean total degree.
    pub degree_mean: f64,
    /// Population standard deviation of the total degree.
    pub degree_stddev: f64,
    /// Number of distinct node labels.
    pub distinct_labels: usize,
}

impl GraphStats {
    /// Computes statistics for one graph.
    pub fn of(graph: &Graph) -> Self {
        let mut deg = RunningStats::new();
        for v in graph.nodes() {
            deg.push(graph.degree(v) as f64);
        }
        let mut labels: Vec<u32> = graph.node_labels().to_vec();
        labels.sort_unstable();
        labels.dedup();
        GraphStats {
            nodes: graph.num_nodes(),
            edges: graph.num_edges(),
            degree_min: deg.min().unwrap_or(0.0) as usize,
            degree_max: deg.max().unwrap_or(0.0) as usize,
            degree_mean: deg.mean(),
            degree_stddev: deg.stddev(),
            distinct_labels: labels.len(),
        }
    }
}

/// Aggregate statistics over a collection of graphs: the min/max node and edge
/// counts and the degree mean/σ pooled over all nodes of all graphs, matching
/// how Table 1 summarizes each data collection.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectionStats {
    /// Number of graphs in the collection.
    pub graphs: usize,
    /// Minimum node count over the graphs.
    pub nodes_min: usize,
    /// Maximum node count over the graphs.
    pub nodes_max: usize,
    /// Minimum edge count over the graphs.
    pub edges_min: usize,
    /// Maximum edge count over the graphs.
    pub edges_max: usize,
    /// Mean total degree pooled over every node of every graph.
    pub degree_mean: f64,
    /// Standard deviation of the pooled total degree.
    pub degree_stddev: f64,
}

impl CollectionStats {
    /// Computes pooled statistics over `graphs`.
    pub fn of<'a>(graphs: impl IntoIterator<Item = &'a Graph>) -> Self {
        let mut nodes_min = usize::MAX;
        let mut nodes_max = 0usize;
        let mut edges_min = usize::MAX;
        let mut edges_max = 0usize;
        let mut count = 0usize;
        let mut deg = RunningStats::new();
        for g in graphs {
            count += 1;
            nodes_min = nodes_min.min(g.num_nodes());
            nodes_max = nodes_max.max(g.num_nodes());
            edges_min = edges_min.min(g.num_edges());
            edges_max = edges_max.max(g.num_edges());
            for v in g.nodes() {
                deg.push(g.degree(v) as f64);
            }
        }
        if count == 0 {
            nodes_min = 0;
            edges_min = 0;
        }
        CollectionStats {
            graphs: count,
            nodes_min,
            nodes_max,
            edges_min,
            edges_max,
            degree_mean: deg.mean(),
            degree_stddev: deg.stddev(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_of_clique() {
        let g = generators::clique(5, 0);
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 20);
        assert_eq!(s.degree_min, 8);
        assert_eq!(s.degree_max, 8);
        assert!((s.degree_mean - 8.0).abs() < 1e-12);
        assert!(s.degree_stddev.abs() < 1e-12);
        assert_eq!(s.distinct_labels, 1);
    }

    #[test]
    fn stats_of_star_have_spread() {
        let g = generators::star(6, 1, 2);
        let s = GraphStats::of(&g);
        assert_eq!(s.degree_max, 6);
        assert_eq!(s.degree_min, 1);
        assert!(s.degree_stddev > 0.0);
        assert_eq!(s.distinct_labels, 2);
    }

    #[test]
    fn collection_stats_pool_over_graphs() {
        let graphs = [generators::clique(3, 0), generators::clique(5, 0)];
        let s = CollectionStats::of(graphs.iter());
        assert_eq!(s.graphs, 2);
        assert_eq!(s.nodes_min, 3);
        assert_eq!(s.nodes_max, 5);
        assert_eq!(s.edges_min, 6);
        assert_eq!(s.edges_max, 20);
        // 3 nodes of degree 4 and 5 nodes of degree 8.
        let expected_mean = (3.0 * 4.0 + 5.0 * 8.0) / 8.0;
        assert!((s.degree_mean - expected_mean).abs() < 1e-12);
    }

    #[test]
    fn empty_collection_is_zeroed() {
        let s = CollectionStats::of(std::iter::empty());
        assert_eq!(s.graphs, 0);
        assert_eq!(s.nodes_min, 0);
        assert_eq!(s.nodes_max, 0);
    }
}

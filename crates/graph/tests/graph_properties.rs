//! Property-based tests of the graph substrate: CSR construction, adjacency
//! queries and the text format must agree with a naive edge-list model for
//! randomized graphs (deterministic seeds, so failures reproduce exactly).

use sge_graph::{io, GraphBuilder};
use sge_util::SplitMix64;
use std::collections::{HashMap, HashSet};

/// A raw random graph description: node labels plus an edge list.
#[derive(Debug, Clone)]
struct RawGraph {
    labels: Vec<u32>,
    edges: Vec<(u32, u32, u32)>,
}

fn random_raw_graph(seed: u64) -> RawGraph {
    let mut rng = SplitMix64::new(seed);
    let n = 2 + rng.next_below(28);
    let labels = (0..n).map(|_| rng.next_below(5) as u32).collect();
    let num_edges = rng.next_below(n * 3);
    let edges = (0..num_edges)
        .map(|_| {
            (
                rng.next_below(n) as u32,
                rng.next_below(n) as u32,
                rng.next_below(3) as u32,
            )
        })
        .collect();
    RawGraph { labels, edges }
}

fn build(raw: &RawGraph) -> sge_graph::Graph {
    let mut b = GraphBuilder::new();
    for &label in &raw.labels {
        b.add_node(label);
    }
    for &(u, v, l) in &raw.edges {
        b.add_edge(u, v, l);
    }
    b.build()
}

#[test]
fn csr_agrees_with_edge_list_model() {
    for seed in 0..64u64 {
        let raw = random_raw_graph(seed);
        let graph = build(&raw);
        // Model: first label per (u,v) wins, duplicates collapsed.
        let mut model: HashMap<(u32, u32), u32> = HashMap::new();
        for &(u, v, l) in &raw.edges {
            model.entry((u, v)).or_insert(l);
        }
        assert_eq!(graph.num_nodes(), raw.labels.len());
        assert_eq!(graph.num_edges(), model.len());
        for (&(u, v), &l) in &model {
            assert_eq!(graph.edge_label(u, v), Some(l));
        }
        // Degrees must match the model.
        for v in 0..raw.labels.len() as u32 {
            let out = model.keys().filter(|(a, _)| *a == v).count();
            let inn = model.keys().filter(|(_, b)| *b == v).count();
            assert_eq!(graph.out_degree(v), out);
            assert_eq!(graph.in_degree(v), inn);
            assert_eq!(graph.degree(v), out + inn);
        }
        // Adjacency lists are sorted and edges() covers exactly the model.
        let edges: HashSet<(u32, u32, u32)> = graph.edges().collect();
        assert_eq!(edges.len(), model.len());
        for (u, v, l) in edges {
            assert_eq!(model.get(&(u, v)), Some(&l));
        }
        for v in 0..raw.labels.len() as u32 {
            let out: Vec<u32> = graph.out_edges(v).iter().map(|e| e.node).collect();
            let mut sorted = out.clone();
            sorted.sort_unstable();
            assert_eq!(out, sorted);
        }
    }
}

#[test]
fn undirected_neighbors_are_symmetric() {
    for seed in 100..164u64 {
        let raw = random_raw_graph(seed);
        let graph = build(&raw);
        for u in 0..graph.num_nodes() as u32 {
            for &v in &graph.undirected_neighbors(u) {
                assert!(graph.undirected_neighbors(v).contains(&u));
                assert!(graph.adjacent(u, v));
            }
        }
    }
}

#[test]
fn text_format_roundtrip_preserves_structure() {
    for seed in 200..264u64 {
        let raw = random_raw_graph(seed);
        let graph = build(&raw);
        let text = io::write_graph(&graph);
        let (parsed, _) = io::parse_graph(&text).expect("roundtrip parse");
        assert_eq!(parsed.num_nodes(), graph.num_nodes());
        assert_eq!(parsed.num_edges(), graph.num_edges());
        for (u, v, l) in graph.edges() {
            assert_eq!(parsed.edge_label(u, v), Some(l));
        }
        // Labels are re-interned but must preserve the equality relation.
        for a in 0..graph.num_nodes() as u32 {
            for b in 0..graph.num_nodes() as u32 {
                assert_eq!(
                    graph.label(a) == graph.label(b),
                    parsed.label(a) == parsed.label(b)
                );
            }
        }
    }
}

#[test]
fn stats_are_internally_consistent() {
    for seed in 300..364u64 {
        let raw = random_raw_graph(seed);
        let graph = build(&raw);
        let stats = sge_graph::GraphStats::of(&graph);
        assert_eq!(stats.nodes, graph.num_nodes());
        assert_eq!(stats.edges, graph.num_edges());
        assert!(stats.degree_min <= stats.degree_max);
        assert!(stats.degree_mean >= stats.degree_min as f64 - 1e-9);
        assert!(stats.degree_mean <= stats.degree_max as f64 + 1e-9);
        // Handshake lemma: sum of total degrees = 2 * directed edge count.
        let total: usize = (0..graph.num_nodes() as u32).map(|v| graph.degree(v)).sum();
        assert_eq!(total, 2 * graph.num_edges());
    }
}

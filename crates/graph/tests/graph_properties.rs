//! Property-based tests of the graph substrate: CSR construction, adjacency
//! queries and the text format must agree with a naive edge-list model for
//! arbitrary random graphs.

use proptest::prelude::*;
use sge_graph::{io, GraphBuilder};
use std::collections::{HashMap, HashSet};

/// A raw random graph description: node labels plus an edge list.
#[derive(Debug, Clone)]
struct RawGraph {
    labels: Vec<u32>,
    edges: Vec<(u32, u32, u32)>,
}

fn raw_graph_strategy() -> impl Strategy<Value = RawGraph> {
    (2usize..30).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..5, n);
        let edges = proptest::collection::vec(
            (0u32..n as u32, 0u32..n as u32, 0u32..3),
            0..(n * 3),
        );
        (labels, edges).prop_map(|(labels, edges)| RawGraph { labels, edges })
    })
}

fn build(raw: &RawGraph) -> sge_graph::Graph {
    let mut b = GraphBuilder::new();
    for &label in &raw.labels {
        b.add_node(label);
    }
    for &(u, v, l) in &raw.edges {
        b.add_edge(u, v, l);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_agrees_with_edge_list_model(raw in raw_graph_strategy()) {
        let graph = build(&raw);
        // Model: first label per (u,v) wins, duplicates collapsed.
        let mut model: HashMap<(u32, u32), u32> = HashMap::new();
        for &(u, v, l) in &raw.edges {
            model.entry((u, v)).or_insert(l);
        }
        prop_assert_eq!(graph.num_nodes(), raw.labels.len());
        prop_assert_eq!(graph.num_edges(), model.len());
        for (&(u, v), &l) in &model {
            prop_assert_eq!(graph.edge_label(u, v), Some(l));
        }
        // Degrees must match the model.
        for v in 0..raw.labels.len() as u32 {
            let out = model.keys().filter(|(a, _)| *a == v).count();
            let inn = model.keys().filter(|(_, b)| *b == v).count();
            prop_assert_eq!(graph.out_degree(v), out);
            prop_assert_eq!(graph.in_degree(v), inn);
            prop_assert_eq!(graph.degree(v), out + inn);
        }
        // Adjacency lists are sorted and edges() covers exactly the model.
        let edges: HashSet<(u32, u32, u32)> = graph.edges().collect();
        prop_assert_eq!(edges.len(), model.len());
        for (u, v, l) in edges {
            prop_assert_eq!(model.get(&(u, v)), Some(&l));
        }
        for v in 0..raw.labels.len() as u32 {
            let out: Vec<u32> = graph.out_edges(v).iter().map(|e| e.node).collect();
            let mut sorted = out.clone();
            sorted.sort_unstable();
            prop_assert_eq!(out, sorted);
        }
    }

    #[test]
    fn undirected_neighbors_are_symmetric(raw in raw_graph_strategy()) {
        let graph = build(&raw);
        for u in 0..graph.num_nodes() as u32 {
            for &v in &graph.undirected_neighbors(u) {
                prop_assert!(graph.undirected_neighbors(v).contains(&u));
                prop_assert!(graph.adjacent(u, v));
            }
        }
    }

    #[test]
    fn text_format_roundtrip_preserves_structure(raw in raw_graph_strategy()) {
        let graph = build(&raw);
        let text = io::write_graph(&graph);
        let (parsed, _) = io::parse_graph(&text).expect("roundtrip parse");
        prop_assert_eq!(parsed.num_nodes(), graph.num_nodes());
        prop_assert_eq!(parsed.num_edges(), graph.num_edges());
        for (u, v, l) in graph.edges() {
            prop_assert_eq!(parsed.edge_label(u, v), Some(l));
        }
        // Labels are re-interned but must preserve the equality relation.
        for a in 0..graph.num_nodes() as u32 {
            for b in 0..graph.num_nodes() as u32 {
                prop_assert_eq!(
                    graph.label(a) == graph.label(b),
                    parsed.label(a) == parsed.label(b)
                );
            }
        }
    }

    #[test]
    fn stats_are_internally_consistent(raw in raw_graph_strategy()) {
        let graph = build(&raw);
        let stats = sge_graph::GraphStats::of(&graph);
        prop_assert_eq!(stats.nodes, graph.num_nodes());
        prop_assert_eq!(stats.edges, graph.num_edges());
        prop_assert!(stats.degree_min <= stats.degree_max);
        prop_assert!(stats.degree_mean >= stats.degree_min as f64 - 1e-9);
        prop_assert!(stats.degree_mean <= stats.degree_max as f64 + 1e-9);
        // Handshake lemma: sum of total degrees = 2 * directed edge count.
        let total: usize = (0..graph.num_nodes() as u32).map(|v| graph.degree(v)).sum();
        prop_assert_eq!(total, 2 * graph.num_edges());
    }
}

//! Malformed-input property tests for the `.gfu`/`.gfd` text parser.
//!
//! The serving layer parses untrusted pattern text straight off a TCP
//! socket, so the parser must be total: every corruption of a valid file —
//! truncation, bad counts, out-of-range endpoints, random garbage — returns
//! `ParseError::Malformed` with an accurate line number and **never**
//! panics or over-allocates.

use sge_graph::io::{parse_graph, write_graph, ParseError};
use sge_graph::GraphBuilder;
use sge_util::SplitMix64;

/// Deterministic random graph file: optional name, string labels, random
/// edges (possibly with explicit edge labels).  Every line is non-blank.
fn random_graph_text(rng: &mut SplitMix64) -> String {
    let nodes = 1 + rng.next_below(8);
    let mut builder = GraphBuilder::new();
    if rng.next_bool(0.5) {
        builder = builder.name(format!("g{}", rng.next_below(1000)));
    }
    for _ in 0..nodes {
        builder.add_node(rng.next_below(4) as u32);
    }
    let edges = rng.next_below(2 * nodes);
    for _ in 0..edges {
        let u = rng.next_below(nodes) as u32;
        let v = rng.next_below(nodes) as u32;
        let label = rng.next_below(3) as u32;
        builder.add_edge(u, v, label);
    }
    write_graph(&builder.build())
}

fn expect_malformed(text: &str) -> (usize, String) {
    match parse_graph(text) {
        Err(ParseError::Malformed { line, message }) => (line, message),
        Err(ParseError::Io(err)) => panic!("expected Malformed, got Io({err}) for {text:?}"),
        Ok(_) => panic!("expected Malformed, got Ok for {text:?}"),
    }
}

#[test]
fn every_truncation_is_malformed_at_the_last_line() {
    let mut rng = SplitMix64::new(0xD15EA5E);
    for _ in 0..50 {
        let text = random_graph_text(&mut rng);
        let lines: Vec<&str> = text.lines().collect();
        assert!(parse_graph(&text).is_ok(), "untruncated parses: {text:?}");
        for keep in 0..lines.len() {
            let truncated = lines[..keep]
                .iter()
                .map(|l| format!("{l}\n"))
                .collect::<String>();
            let (line, message) = expect_malformed(&truncated);
            // The reported position is exactly where the input ended (line 0
            // for empty input), never a stale earlier line.
            assert_eq!(
                line, keep,
                "truncated to {keep} lines, error said line {line} ({message}) for {truncated:?}"
            );
        }
    }
}

#[test]
fn bad_counts_are_malformed_with_the_count_line() {
    let mut rng = SplitMix64::new(0xBADC0DE);
    let bad_tokens = [
        "x",
        "-1",
        "3.5",
        "",
        "0x10",
        "99999999999999999999999999",
        "NaN",
    ];
    for _ in 0..30 {
        let text = random_graph_text(&mut rng);
        let lines: Vec<&str> = text.lines().collect();
        let has_name = lines[0].starts_with('#');
        let node_count_idx = usize::from(has_name);
        let node_count: usize = lines[node_count_idx].parse().unwrap();
        let edge_count_idx = node_count_idx + node_count + 1;

        for idx in [node_count_idx, edge_count_idx] {
            for bad in bad_tokens {
                if bad.is_empty() {
                    continue; // a blank line is skipped, not a bad count
                }
                let mut corrupted: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
                corrupted[idx] = bad.to_string();
                let corrupted = corrupted.join("\n");
                let (line, message) = expect_malformed(&corrupted);
                assert_eq!(
                    line,
                    idx + 1,
                    "{message} for count {bad:?} at line {}",
                    idx + 1
                );
                assert!(
                    message.contains("invalid node count")
                        || message.contains("invalid edge count"),
                    "unexpected message '{message}'"
                );
            }
        }
    }
}

#[test]
fn huge_parseable_counts_do_not_allocate_or_panic() {
    // usize::MAX parses fine; the parser must reject it as truncation
    // instead of reserving capacity for it.
    for huge in ["18446744073709551615", "1000000000000"] {
        let text = format!("{huge}\n0\n0\n");
        let (line, message) = expect_malformed(&text);
        assert_eq!(line, 3);
        assert!(message.contains("unexpected end of file in node labels"));

        let with_edges = format!("2\n0\n0\n{huge}\n0 1\n");
        let (line, message) = expect_malformed(&with_edges);
        assert_eq!(line, 5);
        assert!(message.contains("unexpected end of file in edge list"));
    }
}

#[test]
fn out_of_range_endpoints_are_malformed_with_the_edge_line() {
    let mut rng = SplitMix64::new(0x0FF5E7);
    let mut tested = 0;
    while tested < 30 {
        let text = random_graph_text(&mut rng);
        let lines: Vec<&str> = text.lines().collect();
        let has_name = lines[0].starts_with('#');
        let node_count_idx = usize::from(has_name);
        let node_count: usize = lines[node_count_idx].parse().unwrap();
        let edge_count_idx = node_count_idx + node_count + 1;
        let edge_count: usize = lines[edge_count_idx].parse().unwrap();
        if edge_count == 0 {
            continue;
        }
        tested += 1;

        let victim = edge_count_idx + 1 + rng.next_below(edge_count);
        let mut fields: Vec<String> = lines[victim]
            .split_whitespace()
            .map(|f| f.to_string())
            .collect();
        let endpoint = rng.next_below(2); // tail or head
        fields[endpoint] = (node_count + rng.next_below(10)).to_string();
        let mut corrupted: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        corrupted[victim] = fields.join(" ");
        let corrupted = corrupted.join("\n");

        let (line, message) = expect_malformed(&corrupted);
        assert_eq!(line, victim + 1, "{message}");
        assert!(message.contains("references a node"), "{message}");
    }
}

#[test]
fn corrupted_edge_fields_are_malformed_never_panic() {
    for (text, expected_line) in [
        ("2\n0\n0\n1\nx 1\n", 5),       // non-numeric tail
        ("2\n0\n0\n1\n0 y\n", 5),       // non-numeric head
        ("2\n0\n0\n1\n0 1 z\n", 5),     // non-numeric edge label
        ("2\n0\n0\n1\n-1 1\n", 5),      // negative tail
        ("2\n0\n0\n1\n0 1 2 3 4\n", 5), // extra fields are ignored → Ok
    ] {
        match parse_graph(text) {
            Err(ParseError::Malformed { line, .. }) => assert_eq!(line, expected_line, "{text:?}"),
            Ok(_) => assert!(text.contains("2 3 4"), "unexpected Ok for {text:?}"),
            Err(other) => panic!("unexpected {other:?} for {text:?}"),
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SplitMix64::new(0x6A12BA6E);
    let alphabet: Vec<char> = "0123456789 #-.\nabcxyz\t".chars().collect();
    for _ in 0..500 {
        let len = rng.next_below(200);
        let garbage: String = (0..len)
            .map(|_| alphabet[rng.next_below(alphabet.len())])
            .collect();
        let _ = parse_graph(&garbage); // must return, never panic
    }
    // Structured-ish garbage: valid prefix + random tail.
    for _ in 0..200 {
        let mut text = random_graph_text(&mut rng);
        let cut = rng.next_below(text.len().max(1));
        text.truncate(cut);
        let tail_len = rng.next_below(30);
        let tail: String = (0..tail_len)
            .map(|_| alphabet[rng.next_below(alphabet.len())])
            .collect();
        text.push_str(&tail);
        let _ = parse_graph(&text);
    }
}

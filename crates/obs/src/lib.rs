//! First-party observability for the enumeration stack — hand-rolled and
//! std-only like everything else in the workspace.
//!
//! Four building blocks, each usable on its own:
//!
//! * [`MetricsRegistry`] — named counters, gauges and latency histograms.
//!   Registration takes a lock once per name; the returned handles are
//!   `Arc`-backed, so the hot path is a single relaxed atomic add.  A
//!   [`MetricsRegistry::snapshot`] renders every metric in name order, which
//!   is what the `METRICS` wire verb serializes.
//! * [`TraceSink`] — per-run enumeration counters: observed candidates and
//!   consistency checks (*states*) per plan position, plus scheduler totals
//!   (steals, steal requests, tasks).  The sequential, work-stealing and
//!   rayon-style engines all drive the same `SearchContext`, which records
//!   into an attached sink; because every candidate list is generated exactly
//!   once per expansion and every consistency check happens exactly once
//!   regardless of scheduling, the per-position totals are
//!   *schedule-invariant* on complete runs.
//! * [`QueryTrace`] — a flat span list (plan → admission wait → enumeration →
//!   …) with offsets/durations derived from caller-supplied clock readings.
//!   Fed from [`sge_util::Clock`], the spans stay byte-identical under the
//!   deterministic simulator's virtual clock.
//! * [`EventLog`] — a bounded ring buffer of JSON event lines with an
//!   optional append-to-file sink (the server's `--log` flag).
//!
//! The zero-overhead contract: nothing here runs unless attached.  An engine
//! without a sink pays one predictable `Option` test per state; a service
//! without an event log pays nothing.

use sge_util::{LatencyHistogram, RunningStats};
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing counter handle.  Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not (yet) attached to any registry.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle.  Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A gauge not (yet) attached to any registry.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Adds one — for level gauges tracking open resources.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero.
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .cell
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A latency histogram handle: a [`RunningStats`] (exact mean/min/max) plus a
/// bucketed [`LatencyHistogram`] (quantiles).  Cloning shares the cells.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<Mutex<(RunningStats, LatencyHistogram)>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram not (yet) attached to any registry.
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(Mutex::new((RunningStats::new(), LatencyHistogram::new()))),
        }
    }

    /// Records one sample, in seconds.
    pub fn record(&self, seconds: f64) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        inner.0.push(seconds);
        inner.1.record(seconds);
    }

    /// A clone of the underlying running stats and bucketed histogram — for
    /// callers (the service STATS snapshot) that need the exact pair.
    pub fn stats(&self) -> (RunningStats, LatencyHistogram) {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        (inner.0.clone(), inner.1.clone())
    }

    /// A compact summary for metric snapshots.
    pub fn summary(&self) -> HistogramSummary {
        let (running, histogram) = self.stats();
        HistogramSummary {
            count: running.count(),
            mean_seconds: running.mean(),
            min_seconds: running.min().unwrap_or(0.0),
            max_seconds: running.max().unwrap_or(0.0),
            p50_seconds: histogram.quantile_seconds(0.50).unwrap_or(0.0),
            p90_seconds: histogram.quantile_seconds(0.90).unwrap_or(0.0),
            p99_seconds: histogram.quantile_seconds(0.99).unwrap_or(0.0),
        }
    }
}

/// Point-in-time summary of one [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact mean of all samples, in seconds.
    pub mean_seconds: f64,
    /// Smallest sample (0 when empty).
    pub min_seconds: f64,
    /// Largest sample (0 when empty).
    pub max_seconds: f64,
    /// Median at bucket resolution.
    pub p50_seconds: f64,
    /// 90th percentile at bucket resolution.
    pub p90_seconds: f64,
    /// 99th percentile at bucket resolution.
    pub p99_seconds: f64,
}

/// One registered metric.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The value of one metric in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(u64),
    /// A histogram summary.
    Histogram(HistogramSummary),
}

/// A point-in-time reading of every registered metric, sorted by name.
pub type MetricsSnapshot = Vec<(String, MetricValue)>;

/// A registry of named metrics.
///
/// `counter`/`gauge`/`histogram` register on first use and return the
/// existing handle on every later call with the same name; handles are cheap
/// to clone and record lock-free (counters, gauges) or under a short
/// per-metric lock (histograms).  Asking for an existing name with a
/// *different* kind returns a fresh detached handle rather than panicking —
/// the registry keeps the first registration.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or fetches) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(counter) => counter.clone(),
            _ => Counter::new(),
        }
    }

    /// Registers (or fetches) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(gauge) => gauge.clone(),
            _ => Gauge::new(),
        }
    }

    /// Registers (or fetches) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(histogram) => histogram.clone(),
            _ => Histogram::new(),
        }
    }

    /// Reads every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.lock()
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.value()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                (name.clone(), value)
            })
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Per-run enumeration counters, recorded by `SearchContext` when attached.
///
/// One slot per plan position for observed candidates (entries produced by
/// candidate generation) and observed states (consistency checks performed),
/// plus run-wide scheduler counters filled in after a parallel run.  All
/// cells are relaxed atomics: workers of one run record concurrently, and
/// totals are read only after the run joined.
#[derive(Debug)]
pub struct TraceSink {
    candidates: Vec<AtomicU64>,
    states: Vec<AtomicU64>,
    steals: AtomicU64,
    steal_requests: AtomicU64,
    tasks_executed: AtomicU64,
}

impl TraceSink {
    /// A zeroed sink for a plan with `positions` ordered positions.
    pub fn new(positions: usize) -> Self {
        TraceSink {
            candidates: (0..positions).map(|_| AtomicU64::new(0)).collect(),
            states: (0..positions).map(|_| AtomicU64::new(0)).collect(),
            steals: AtomicU64::new(0),
            steal_requests: AtomicU64::new(0),
            tasks_executed: AtomicU64::new(0),
        }
    }

    /// Number of plan positions this sink was sized for.
    pub fn positions(&self) -> usize {
        self.states.len()
    }

    /// Records `count` generated candidates at `position`.
    #[inline]
    pub fn record_candidates(&self, position: usize, count: u64) {
        if let Some(cell) = self.candidates.get(position) {
            cell.fetch_add(count, Ordering::Relaxed);
        }
    }

    /// Records one consistency check (a visited *state*) at `position`.
    #[inline]
    pub fn record_state(&self, position: usize) {
        if let Some(cell) = self.states.get(position) {
            cell.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds successful steals (work-stealing scheduler only).
    pub fn add_steals(&self, n: u64) {
        self.steals.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds issued steal requests.
    pub fn add_steal_requests(&self, n: u64) {
        self.steal_requests.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds executed tasks.
    pub fn add_tasks(&self, n: u64) {
        self.tasks_executed.fetch_add(n, Ordering::Relaxed);
    }

    /// Observed candidates per position.
    pub fn candidates_per_position(&self) -> Vec<u64> {
        self.candidates
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Observed states (consistency checks) per position.
    pub fn states_per_position(&self) -> Vec<u64> {
        self.states
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Sum of observed candidates over all positions.
    pub fn candidates_total(&self) -> u64 {
        self.candidates_per_position().iter().sum()
    }

    /// Sum of observed states over all positions; on a complete run this
    /// equals the engine's reported `states`.
    pub fn states_total(&self) -> u64 {
        self.states_per_position().iter().sum()
    }

    /// Successful steals recorded for this run.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Steal requests recorded for this run.
    pub fn steal_requests(&self) -> u64 {
        self.steal_requests.load(Ordering::Relaxed)
    }

    /// Tasks executed, summed over workers.
    pub fn tasks_executed(&self) -> u64 {
        self.tasks_executed.load(Ordering::Relaxed)
    }
}

/// One completed span of a [`QueryTrace`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Span name (`plan`, `admission_wait`, `enumeration`, …).
    pub name: String,
    /// Offset of the span start from the trace origin, in seconds.
    pub start_seconds: f64,
    /// Span duration in seconds.
    pub duration_seconds: f64,
}

/// An ordered list of spans covering one query, with every timestamp derived
/// from caller-supplied clock readings ([`sge_util::Clock::now`] values) —
/// under the simulator's virtual clock the rendered spans are deterministic.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    origin: Duration,
    spans: Vec<SpanRecord>,
}

impl QueryTrace {
    /// Starts a trace whose spans are reported relative to `origin`.
    pub fn begin(origin: Duration) -> Self {
        QueryTrace {
            origin,
            spans: Vec::new(),
        }
    }

    /// The trace origin (the clock reading `begin` was called with).
    pub fn origin(&self) -> Duration {
        self.origin
    }

    /// Records the span `name` covering `[start, end]`; readings before the
    /// origin (or an end before the start) clamp to zero rather than going
    /// negative.
    pub fn record_span(&mut self, name: &str, start: Duration, end: Duration) {
        let offset = start.saturating_sub(self.origin);
        let duration = end.saturating_sub(start);
        self.spans.push(SpanRecord {
            name: name.to_string(),
            start_seconds: offset.as_secs_f64(),
            duration_seconds: duration.as_secs_f64(),
        });
    }

    /// The recorded spans, in recording order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }
}

/// A bounded ring buffer of structured (JSON-line) events with an optional
/// append-only writer.  The ring keeps the most recent `capacity` lines for
/// in-process inspection; when a writer is attached every line is also
/// appended (and flushed) to it — the server's `--log PATH` flag.
pub struct EventLog {
    capacity: usize,
    inner: Mutex<EventLogInner>,
}

struct EventLogInner {
    ring: VecDeque<String>,
    writer: Option<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl EventLog {
    /// A ring-only event log keeping the most recent `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity: capacity.max(1),
            inner: Mutex::new(EventLogInner {
                ring: VecDeque::new(),
                writer: None,
            }),
        }
    }

    /// An event log that additionally appends every line to the file at
    /// `path` (created if missing).
    pub fn with_file(capacity: usize, path: &str) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let log = EventLog::new(capacity);
        {
            let mut inner = log.lock();
            inner.writer = Some(Box::new(file));
        }
        Ok(log)
    }

    /// Records one event line (one JSON object, no trailing newline).
    pub fn record(&self, line: &str) {
        let mut inner = self.lock();
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(line.to_string());
        if let Some(writer) = inner.writer.as_mut() {
            let _ = writeln!(writer, "{line}");
            let _ = writer.flush();
        }
    }

    /// The buffered (most recent) lines, oldest first.
    pub fn recent(&self) -> Vec<String> {
        self.lock().ring.iter().cloned().collect()
    }

    /// Number of buffered lines.
    pub fn len(&self) -> usize {
        self.lock().ring.len()
    }

    /// `true` when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, EventLogInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_shared_handles_sorted_snapshot() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("z.total");
        let b = registry.counter("z.total");
        a.add(2);
        b.inc();
        registry.gauge("a.level").set(7);
        registry.histogram("m.latency").record(0.5);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.level", "m.latency", "z.total"]);
        assert_eq!(snapshot[0].1, MetricValue::Gauge(7));
        assert_eq!(snapshot[2].1, MetricValue::Counter(3));
        match &snapshot[1].1 {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 1);
                assert!((h.mean_seconds - 0.5).abs() < 1e-12);
                assert_eq!(h.max_seconds, 0.5);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn kind_mismatch_returns_detached_handle_not_panic() {
        let registry = MetricsRegistry::new();
        registry.counter("x").inc();
        let gauge = registry.gauge("x");
        gauge.set(99); // goes nowhere visible
        assert_eq!(
            registry.snapshot(),
            vec![("x".into(), MetricValue::Counter(1))]
        );
    }

    #[test]
    fn trace_sink_accumulates_per_position() {
        let sink = TraceSink::new(3);
        sink.record_candidates(0, 5);
        sink.record_candidates(1, 2);
        sink.record_candidates(1, 3);
        sink.record_state(0);
        sink.record_state(0);
        sink.record_state(2);
        sink.record_candidates(9, 100); // out of range: ignored
        sink.record_state(9);
        sink.add_steals(4);
        sink.add_tasks(7);
        assert_eq!(sink.candidates_per_position(), vec![5, 5, 0]);
        assert_eq!(sink.states_per_position(), vec![2, 0, 1]);
        assert_eq!(sink.candidates_total(), 10);
        assert_eq!(sink.states_total(), 3);
        assert_eq!(sink.steals(), 4);
        assert_eq!(sink.tasks_executed(), 7);
        assert_eq!(sink.positions(), 3);
    }

    #[test]
    fn query_trace_spans_are_relative_and_clamped() {
        let mut trace = QueryTrace::begin(Duration::from_secs(10));
        trace.record_span(
            "plan",
            Duration::from_secs(10),
            Duration::from_millis(10_250),
        );
        trace.record_span(
            "enumeration",
            Duration::from_millis(10_250),
            Duration::from_millis(10_750),
        );
        // A span that "ends before it starts" clamps to zero.
        trace.record_span("weird", Duration::from_secs(9), Duration::from_secs(8));
        let spans = trace.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "plan");
        assert!((spans[0].start_seconds - 0.0).abs() < 1e-12);
        assert!((spans[0].duration_seconds - 0.25).abs() < 1e-12);
        assert!((spans[1].start_seconds - 0.25).abs() < 1e-12);
        assert!((spans[1].duration_seconds - 0.5).abs() < 1e-12);
        assert_eq!(spans[2].start_seconds, 0.0);
        assert_eq!(spans[2].duration_seconds, 0.0);
    }

    #[test]
    fn event_log_ring_evicts_oldest() {
        let log = EventLog::new(3);
        for i in 0..5 {
            log.record(&format!("{{\"event\":\"e{i}\"}}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(
            log.recent(),
            vec![
                "{\"event\":\"e2\"}",
                "{\"event\":\"e3\"}",
                "{\"event\":\"e4\"}"
            ]
        );
        assert!(!log.is_empty());
    }

    #[test]
    fn event_log_appends_to_file() {
        let path =
            std::env::temp_dir().join(format!("sge-obs-eventlog-{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        {
            let log = EventLog::with_file(8, &path_str).unwrap();
            log.record("{\"event\":\"open\"}");
            log.record("{\"event\":\"close\"}");
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"event\":\"open\"}\n{\"event\":\"close\"}\n");
        let _ = std::fs::remove_file(&path);
    }
}

//! Parallel subgraph enumeration: parallel RI and parallel RI-DS-SI-FC.
//!
//! This crate is the paper's headline system.  It plugs the sequential
//! search machinery of `sge-ri` (candidate generation, consistency checks,
//! domains, orderings) into the private-deque work-stealing engine of
//! `sge-stealing`:
//!
//! * a *task* is a `(position, candidate target node)` pair — the partial
//!   mapping is **not** stored in tasks; it travels only when a task group is
//!   stolen,
//! * the children of the state-space root (`µ1 ↦ v_t` for every candidate
//!   `v_t`) are distributed round-robin over the workers' private deques,
//! * task groups of a configurable size (default 4) are the unit of stealing,
//! * Dijkstra-ring termination detection ends the search.
//!
//! Two ablation schedulers are also provided:
//!
//! * [`no_stealing`] — the same initial distribution with stealing disabled
//!   (the "no work stealing" baseline of Fig. 3),
//! * [`rayon_pool`] — first-level dynamic parallelism over the root
//!   candidates, each expanded with the sequential matcher (what you get "for
//!   free" from a library scheduler such as rayon; useful to quantify what
//!   the paper's bespoke scheme adds).
//!
//! Every scheduler accepts a prepared [`sge_ri::SearchContext`] through the
//! `*_prepared` entry points, so preprocessing is paid once per instance no
//! matter how many runs are executed — this is what the unified `sge::Engine`
//! builds on.
//!
//! # Example
//!
//! ```
//! use sge_graph::generators;
//! use sge_parallel::{enumerate_parallel, ParallelConfig};
//! use sge_ri::Algorithm;
//!
//! let pattern = generators::directed_cycle(3, 0);
//! let target = generators::clique(5, 0);
//! let config = ParallelConfig::new(Algorithm::RiDsSiFc).with_workers(4);
//! let result = enumerate_parallel(&pattern, &target, &config);
//! assert_eq!(result.matches, 60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod problem;
pub mod rayon_pool;
pub mod runner;

pub use problem::SubgraphProblem;
pub use rayon_pool::{enumerate_rayon, enumerate_rayon_prepared};
pub use runner::{
    enumerate_parallel, enumerate_prepared, no_stealing, ParallelConfig, ParallelResult,
};

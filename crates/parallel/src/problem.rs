//! Adapter exposing the RI search as a [`BacktrackProblem`].

use sge_graph::NodeId;
use sge_ri::{CollectingVisitor, MatchVisitor, SearchContext, WorkerState};
use sge_stealing::BacktrackProblem;

/// The RI / RI-DS state-space search wrapped for the work-stealing engine.
///
/// Levels are positions of the static node ordering; choices are candidate
/// target nodes.  The per-worker state is `sge_ri::WorkerState` (partial
/// mapping + injectivity flags), which the engine reconstructs on a thief from
/// the transferred prefix of choices — exactly the paper's "copy the partial
/// mapping only for stolen tasks".
pub struct SubgraphProblem<'a> {
    ctx: &'a SearchContext<'a>,
    collector: Option<CollectingVisitor>,
    visitor: Option<&'a dyn MatchVisitor>,
}

impl<'a> SubgraphProblem<'a> {
    /// Wraps a prepared search context.
    pub fn new(ctx: &'a SearchContext<'a>) -> Self {
        SubgraphProblem {
            ctx,
            collector: None,
            visitor: None,
        }
    }

    /// Additionally collect up to `limit` full mappings (pattern node → target
    /// node).  Collection uses a mutex and is meant for modest limits.
    pub fn with_collection(mut self, limit: usize) -> Self {
        self.collector = Some(CollectingVisitor::new(limit));
        self
    }

    /// Streams every match to `visitor` (called concurrently from worker
    /// threads).
    pub fn with_visitor(mut self, visitor: &'a dyn MatchVisitor) -> Self {
        self.visitor = Some(visitor);
        self
    }

    /// The collected mappings (empty unless [`Self::with_collection`] was used).
    pub fn take_collected(&self) -> Vec<Vec<NodeId>> {
        self.collector
            .as_ref()
            .map(|c| c.take())
            .unwrap_or_default()
    }
}

impl BacktrackProblem for SubgraphProblem<'_> {
    type State = WorkerState;
    type Choice = NodeId;

    fn depth(&self) -> usize {
        self.ctx.num_positions()
    }

    fn new_state(&self) -> WorkerState {
        self.ctx.new_state()
    }

    fn candidates(&self, level: usize, state: &WorkerState, out: &mut Vec<NodeId>) {
        self.ctx.candidates(level, state, out);
    }

    fn is_consistent(&self, level: usize, choice: NodeId, state: &WorkerState) -> bool {
        self.ctx.is_consistent(level, choice, state)
    }

    fn apply(&self, level: usize, choice: NodeId, state: &mut WorkerState) {
        state.assign(level, choice);
    }

    fn undo(&self, level: usize, state: &mut WorkerState) {
        state.unassign(level);
    }

    fn on_solution(&self, worker_id: usize, state: &WorkerState) {
        // Build the mapping only for observers that still want it: once the
        // collector is full, a visitor-less run stops allocating per match.
        let collector = self.collector.as_ref().filter(|c| !c.is_full());
        if self.visitor.is_none() && collector.is_none() {
            return;
        }
        let mapping = self.ctx.mapping_by_pattern_node(state);
        if let Some(visitor) = self.visitor {
            visitor.on_match(worker_id, &mapping);
        }
        if let Some(collector) = collector {
            collector.on_match(worker_id, &mapping);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::generators;
    use sge_ri::Algorithm;
    use sge_stealing::{run, EngineConfig};

    #[test]
    fn problem_counts_match_sequential() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(5, 0);
        let sequential =
            sge_ri::enumerate(&pattern, &target, &sge_ri::MatchConfig::new(Algorithm::Ri));
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let problem = SubgraphProblem::new(&ctx);
        let result = run(&problem, &EngineConfig::with_workers(2));
        assert_eq!(result.solutions, sequential.matches);
        assert_eq!(result.states, sequential.states);
    }

    #[test]
    fn collection_gathers_valid_mappings() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(4, 0);
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::RiDs);
        let problem = SubgraphProblem::new(&ctx).with_collection(5);
        let result = run(&problem, &EngineConfig::with_workers(3));
        assert_eq!(result.solutions, 24);
        let collected = problem.take_collected();
        assert_eq!(collected.len(), 5);
        for mapping in collected {
            for (u, v, l) in pattern.edges() {
                assert_eq!(
                    target.edge_label(mapping[u as usize], mapping[v as usize]),
                    Some(l)
                );
            }
        }
    }
}

//! Rayon-based comparator scheduler.
//!
//! The paper's scheduler is a bespoke private-deque work-stealing runtime.  A
//! natural question for a Rust reproduction is how much of its benefit one gets
//! "for free" from [rayon]'s work-stealing thread pool.  This module
//! parallelizes only the *first level* of the state-space tree: each root task
//! (`µ1 ↦ v_t`) is a rayon job that runs the sequential search over its
//! subtree.  Rayon balances those jobs across threads, but — unlike the
//! paper's engine — cannot split a single large subtree once it is running,
//! which is exactly the situation the paper's Fig. 3/4 analysis shows matters
//! on irregular instances.
//!
//! The experiment harness uses this as an ablation baseline; it is not part of
//! the reproduction of any specific figure.

use crate::runner::ParallelResult;
use rayon::prelude::*;
use sge_graph::{Graph, NodeId};
use sge_ri::{Algorithm, SearchContext, WorkerState};
use sge_util::PhaseTimer;
use std::time::Instant;

/// Recursively explores the subtree rooted at `depth` and returns
/// `(matches, states)`.
fn explore(
    ctx: &SearchContext<'_>,
    state: &mut WorkerState,
    depth: usize,
    buffers: &mut Vec<Vec<NodeId>>,
) -> (u64, u64) {
    let np = ctx.num_positions();
    let mut matches = 0u64;
    let mut states = 0u64;
    let mut candidates = std::mem::take(&mut buffers[depth]);
    ctx.candidates(depth, state, &mut candidates);
    for &vt in &candidates {
        states += 1;
        if !ctx.is_consistent(depth, vt, state) {
            continue;
        }
        state.assign(depth, vt);
        if depth + 1 == np {
            matches += 1;
        } else {
            let (m, s) = explore(ctx, state, depth + 1, buffers);
            matches += m;
            states += s;
        }
        state.unassign(depth);
    }
    buffers[depth] = candidates;
    (matches, states)
}

/// Enumerates embeddings using a rayon pool with `workers` threads: the root
/// candidates are distributed by rayon, each subtree is searched sequentially.
pub fn enumerate_rayon(
    pattern: &Graph,
    target: &Graph,
    algorithm: Algorithm,
    workers: usize,
) -> ParallelResult {
    let mut timer = PhaseTimer::new();
    let ctx = timer.time("preprocess", || {
        SearchContext::prepare(pattern, target, algorithm)
    });

    let mut result = ParallelResult {
        algorithm,
        workers,
        matches: 0,
        states: 0,
        preprocess_seconds: timer.seconds("preprocess"),
        match_seconds: 0.0,
        timed_out: false,
        steals: 0,
        steal_requests: 0,
        worker_states_stddev: 0.0,
        worker_stats: Vec::new(),
        mappings: Vec::new(),
    };

    if ctx.num_positions() == 0 {
        result.matches = 1;
        return result;
    }
    if ctx.impossible() {
        return result;
    }

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers.max(1))
        .build()
        .expect("failed to build rayon pool");

    let start = Instant::now();
    let np = ctx.num_positions();
    let mut roots: Vec<NodeId> = Vec::new();
    ctx.candidates(0, &ctx.new_state(), &mut roots);

    let (matches, states) = pool.install(|| {
        roots
            .par_iter()
            .map(|&root| {
                let mut state = ctx.new_state();
                let mut buffers = vec![Vec::new(); np];
                let mut matches = 0u64;
                let mut states = 1u64; // the root consistency check below
                if ctx.is_consistent(0, root, &state) {
                    state.assign(0, root);
                    if np == 1 {
                        matches += 1;
                    } else {
                        let (m, s) = explore(&ctx, &mut state, 1, &mut buffers);
                        matches += m;
                        states += s;
                    }
                    state.unassign(0);
                }
                (matches, states)
            })
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
    });

    result.matches = matches;
    result.states = states;
    result.match_seconds = start.elapsed().as_secs_f64();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::generators;
    use sge_ri::MatchConfig;

    #[test]
    fn rayon_counts_match_sequential() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(6, 0);
        for algorithm in [Algorithm::Ri, Algorithm::RiDsSiFc] {
            let sequential =
                sge_ri::enumerate(&pattern, &target, &MatchConfig::new(algorithm));
            let result = enumerate_rayon(&pattern, &target, algorithm, 2);
            assert_eq!(result.matches, sequential.matches, "{algorithm}");
            assert_eq!(result.states, sequential.states, "{algorithm}");
        }
    }

    #[test]
    fn rayon_handles_empty_and_impossible_patterns() {
        let empty = sge_graph::GraphBuilder::new().build();
        let target = generators::clique(4, 0);
        assert_eq!(enumerate_rayon(&empty, &target, Algorithm::Ri, 2).matches, 1);

        let mut pb = sge_graph::GraphBuilder::new();
        pb.add_node(99);
        let impossible = pb.build();
        assert_eq!(
            enumerate_rayon(&impossible, &target, Algorithm::RiDs, 2).matches,
            0
        );
    }
}

//! Library-scheduler comparator: first-level dynamic parallelism.
//!
//! The paper's scheduler is a bespoke private-deque work-stealing runtime.  A
//! natural question for a Rust reproduction is how much of its benefit one
//! gets "for free" from a generic library scheduler à la rayon.  This module
//! parallelizes only the *first level* of the state-space tree: the root
//! tasks (`µ1 ↦ v_t`) form a shared queue that worker threads drain with an
//! atomic cursor — exactly the load-balancing granularity `rayon::par_iter`
//! achieves on this workload — and each claimed subtree is searched
//! sequentially.  Unlike the paper's engine, a single large subtree can never
//! be split once it is running, which is the situation the paper's Fig. 3/4
//! analysis shows matters on irregular instances.
//!
//! (The build environment is offline, so the real `rayon` crate is not a
//! dependency; the scheduler below reproduces its observable behaviour on
//! this first-level workload with `std::thread` and an atomic cursor.)
//!
//! The experiment harness uses this as an ablation baseline; it is not part
//! of the reproduction of any specific figure.

use crate::runner::{ParallelConfig, ParallelResult};
use sge_graph::{Graph, NodeId};
use sge_ri::{Algorithm, CollectingVisitor, MatchVisitor, SearchContext, WorkerState};
use sge_stealing::WorkerStats;
use sge_util::{MatchBudget, PhaseTimer};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// How often (in visited states) a worker consults the wall clock.
const DEADLINE_CHECK_INTERVAL: u64 = 4096;

/// Shared early-stop state: match budget, deadline, cancellation and the
/// stop flag.
struct Stop {
    flag: AtomicBool,
    timed_out: AtomicBool,
    budget: MatchBudget,
    deadline: Option<Instant>,
    cancel: Option<std::sync::Arc<sge_util::CancelToken>>,
    cancelled: AtomicBool,
}

impl Stop {
    fn new(config: &ParallelConfig, start: Instant) -> Self {
        Stop {
            flag: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            budget: MatchBudget::new(config.max_matches),
            deadline: config.time_limit.map(|limit| start + limit),
            cancel: config.cancel.clone(),
            cancelled: AtomicBool::new(false),
        }
    }

    #[inline]
    fn stopped(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// `true` once the external cancellation token has fired; latches the
    /// result flag and the stop flag on first observation.
    fn cancel_requested(&self) -> bool {
        match &self.cancel {
            Some(token) if token.is_cancelled() => {
                self.cancelled.store(true, Ordering::SeqCst);
                self.flag.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    /// Claims one slot of the match budget; `true` means "count this match".
    /// Cancellation trips this path like an exhausted budget: matches found
    /// after the token fired are discarded.
    fn claim(&self) -> bool {
        if self.cancel_requested() {
            return false;
        }
        let counted = self.budget.claim();
        if self.budget.is_exhausted() {
            self.flag.store(true, Ordering::SeqCst);
        }
        counted
    }

    fn check_interrupts(&self) {
        self.cancel_requested();
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.timed_out.store(true, Ordering::SeqCst);
                self.flag.store(true, Ordering::SeqCst);
            }
        }
    }
}

struct Explorer<'a, 'g> {
    ctx: &'a SearchContext<'g>,
    stop: &'a Stop,
    visitor: Option<&'a dyn MatchVisitor>,
    collector: Option<&'a CollectingVisitor>,
    worker_id: usize,
    buffers: Vec<Vec<NodeId>>,
    matches: u64,
    states: u64,
}

impl Explorer<'_, '_> {
    /// Recursively explores the subtree rooted at `depth`.
    fn explore(&mut self, state: &mut WorkerState, depth: usize) {
        let np = self.ctx.num_positions();
        let mut candidates = std::mem::take(&mut self.buffers[depth]);
        self.ctx.candidates(depth, state, &mut candidates);
        for &vt in &candidates {
            if self.stop.stopped() {
                break;
            }
            self.states += 1;
            if self.states.is_multiple_of(DEADLINE_CHECK_INTERVAL) {
                self.stop.check_interrupts();
            }
            if !self.ctx.is_consistent(depth, vt, state) {
                continue;
            }
            state.assign(depth, vt);
            if depth + 1 == np {
                self.record_match(state);
            } else {
                self.explore(state, depth + 1);
            }
            state.unassign(depth);
        }
        self.buffers[depth] = candidates;
    }

    fn record_match(&mut self, state: &WorkerState) {
        if !self.stop.claim() {
            return;
        }
        self.matches += 1;
        // Build the mapping only for observers that still want it: once the
        // collector is full, a visitor-less run stops allocating per match.
        let collector = self.collector.filter(|c| !c.is_full());
        if self.visitor.is_none() && collector.is_none() {
            return;
        }
        let mapping = self.ctx.mapping_by_pattern_node(state);
        if let Some(visitor) = self.visitor {
            visitor.on_match(self.worker_id, &mapping);
        }
        if let Some(collector) = collector {
            collector.on_match(self.worker_id, &mapping);
        }
    }
}

/// Runs the first-level dynamic scheduler over an already-prepared
/// [`SearchContext`] (preprocessing is not re-paid; `preprocess_seconds` is
/// 0).  Honors `workers`, `max_matches`, `time_limit` and `collect_limit`
/// from `config`; `task_group_size`, `steal_enabled` and `seed` do not apply
/// to this scheduler.  Steal counters in the result are always 0.
pub fn enumerate_rayon_prepared(
    ctx: &SearchContext<'_>,
    config: &ParallelConfig,
    visitor: Option<&dyn MatchVisitor>,
) -> ParallelResult {
    let workers = config.workers.max(1);
    let mut result = ParallelResult::empty(ctx.algorithm(), workers);

    if ctx.num_positions() == 0 {
        crate::runner::empty_pattern_outcome(config, visitor, &mut result);
        return result;
    }
    if ctx.impossible() {
        return result;
    }

    let start = Instant::now();
    let np = ctx.num_positions();
    let mut roots: Vec<NodeId> = Vec::new();
    ctx.candidates(0, &ctx.new_state(), &mut roots);

    let collector = CollectingVisitor::new(config.collect_limit);
    let stop = Stop::new(config, start);
    // An already-expired deadline (or pre-fired cancellation token) stops the
    // run before any worker claims a root, mirroring the sequential matcher
    // and the stealing engine.
    stop.check_interrupts();
    let cursor = AtomicUsize::new(0);

    let worker_stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker_id| {
                let roots = &roots;
                let stop = &stop;
                let cursor = &cursor;
                let collector = &collector;
                scope.spawn(move || {
                    let mut explorer = Explorer {
                        ctx,
                        stop,
                        visitor,
                        collector: (config.collect_limit > 0).then_some(collector),
                        worker_id,
                        buffers: vec![Vec::new(); np],
                        matches: 0,
                        states: 0,
                    };
                    let mut state = ctx.new_state();
                    loop {
                        if stop.stopped() {
                            break;
                        }
                        let index = cursor.fetch_add(1, Ordering::SeqCst);
                        let Some(&root) = roots.get(index) else {
                            break;
                        };
                        // The root consistency check counts as a state, as in
                        // the sequential driver and the stealing engine.
                        explorer.states += 1;
                        if !ctx.is_consistent(0, root, &state) {
                            continue;
                        }
                        state.assign(0, root);
                        if np == 1 {
                            explorer.record_match(&state);
                        } else {
                            explorer.explore(&mut state, 1);
                        }
                        state.unassign(0);
                    }
                    WorkerStats {
                        worker_id,
                        states: explorer.states,
                        solutions: explorer.matches,
                        ..WorkerStats::default()
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("rayon-pool worker panicked"))
            .collect()
    });

    let run = sge_stealing::RunResult::from_workers(
        worker_stats,
        start.elapsed().as_secs_f64(),
        stop.timed_out.load(Ordering::SeqCst),
    );
    result.matches = run.solutions;
    result.states = run.states;
    result.match_seconds = run.elapsed_seconds;
    result.timed_out = run.timed_out;
    result.limit_hit = stop.budget.is_exhausted();
    result.cancelled = stop.cancelled.load(Ordering::SeqCst);
    result.worker_states_stddev = run.worker_states_stddev();
    result.worker_stats = run.workers;
    result.mappings = collector.take();
    result.mappings.sort_unstable();
    result
}

/// Enumerates embeddings with the first-level dynamic pool: root candidates
/// are claimed by `workers` threads, each subtree is searched sequentially.
///
/// Thin shim over [`SearchContext::prepare`] + [`enumerate_rayon_prepared`].
pub fn enumerate_rayon(
    pattern: &Graph,
    target: &Graph,
    algorithm: Algorithm,
    workers: usize,
) -> ParallelResult {
    let mut timer = PhaseTimer::new();
    let ctx = timer.time("preprocess", || {
        SearchContext::prepare(pattern, target, algorithm)
    });
    let config = ParallelConfig::new(algorithm).with_workers(workers);
    let mut result = enumerate_rayon_prepared(&ctx, &config, None);
    result.preprocess_seconds = timer.seconds("preprocess");
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::generators;
    use sge_ri::MatchConfig;
    use std::time::Duration;

    #[test]
    fn rayon_counts_match_sequential() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(6, 0);
        for algorithm in [Algorithm::Ri, Algorithm::RiDsSiFc] {
            let sequential = sge_ri::enumerate(&pattern, &target, &MatchConfig::new(algorithm));
            let result = enumerate_rayon(&pattern, &target, algorithm, 2);
            assert_eq!(result.matches, sequential.matches, "{algorithm}");
            assert_eq!(result.states, sequential.states, "{algorithm}");
        }
    }

    #[test]
    fn rayon_handles_empty_and_impossible_patterns() {
        let empty = sge_graph::GraphBuilder::new().build();
        let target = generators::clique(4, 0);
        assert_eq!(
            enumerate_rayon(&empty, &target, Algorithm::Ri, 2).matches,
            1
        );

        let mut pb = sge_graph::GraphBuilder::new();
        pb.add_node(99);
        let impossible = pb.build();
        assert_eq!(
            enumerate_rayon(&impossible, &target, Algorithm::RiDs, 2).matches,
            0
        );
    }

    #[test]
    fn rayon_respects_max_matches() {
        let pattern = generators::directed_path(2, 0);
        let target = generators::clique(10, 0); // 90 embeddings
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        for workers in [1usize, 3] {
            let config = ParallelConfig::new(Algorithm::Ri)
                .with_workers(workers)
                .with_max_matches(11);
            let result = enumerate_rayon_prepared(&ctx, &config, None);
            assert_eq!(result.matches, 11, "workers={workers}");
            assert!(result.limit_hit);
        }
    }

    #[test]
    fn rayon_collects_sorted_mappings() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(4, 0); // 24 embeddings
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::RiDs);
        let config = ParallelConfig::new(Algorithm::RiDs)
            .with_workers(3)
            .with_collected_mappings(100);
        let result = enumerate_rayon_prepared(&ctx, &config, None);
        assert_eq!(result.mappings.len(), 24);
        let mut sorted = result.mappings.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, result.mappings);
        for mapping in &result.mappings {
            for (u, v, l) in pattern.edges() {
                assert_eq!(
                    target.edge_label(mapping[u as usize], mapping[v as usize]),
                    Some(l)
                );
            }
        }
    }

    #[test]
    fn rayon_time_limit_is_reported() {
        let pattern = generators::undirected_cycle(6, 0);
        let target = generators::grid(5, 5);
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let config = ParallelConfig::new(Algorithm::Ri)
            .with_workers(2)
            .with_time_limit(Duration::from_millis(1));
        let limited = enumerate_rayon_prepared(&ctx, &config, None);
        let full = enumerate_rayon_prepared(
            &ctx,
            &ParallelConfig::new(Algorithm::Ri).with_workers(2),
            None,
        );
        if limited.timed_out {
            assert!(limited.matches <= full.matches);
        } else {
            assert_eq!(limited.matches, full.matches);
        }
    }
}

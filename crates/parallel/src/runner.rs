//! High-level parallel enumeration API.

use crate::problem::SubgraphProblem;
use sge_graph::{Graph, NodeId};
use sge_ri::{Algorithm, MatchVisitor, SearchContext};
use sge_stealing::{run, EngineConfig, WorkerStats};
use sge_util::{CancelToken, PhaseTimer};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a parallel enumeration run.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Which member of the RI family performs the search.
    pub algorithm: Algorithm,
    /// Number of worker threads (the paper sweeps 1, 2, 4, 8, 16).
    ///
    /// Under planner-routed scheduling this is *sized from the corrected
    /// cost estimate* (`sge-plan`'s `RoutingConfig::states_per_worker`)
    /// rather than fixed per deployment: small trees never reach this
    /// runner at all, and large ones arrive with just enough workers that
    /// each has a meaningful share of estimated states to chew through —
    /// the regime where the paper's stealing actually amortizes.
    pub workers: usize,
    /// Task-group (coalescing) size; the paper settles on 4.
    pub task_group_size: usize,
    /// Work stealing on (the paper's scheduler) or off (static initial
    /// partition, the Fig. 3 baseline).
    pub steal_enabled: bool,
    /// Stop cooperatively after this many matches (`None` = enumerate all).
    /// The reported count is exactly `min(max_matches, total)`.
    pub max_matches: Option<u64>,
    /// Optional wall-clock limit for the matching phase.
    pub time_limit: Option<Duration>,
    /// Collect up to this many full mappings in the result.
    pub collect_limit: usize,
    /// External cooperative cancellation, polled alongside the match budget
    /// and deadline; matches found after the token fires are discarded and
    /// the result reports `cancelled`.
    pub cancel: Option<Arc<CancelToken>>,
    /// Seed for victim selection.
    pub seed: u64,
}

impl ParallelConfig {
    /// Default parallel configuration: all available cores, task groups of 4,
    /// stealing enabled, no match or time limit.
    pub fn new(algorithm: Algorithm) -> Self {
        ParallelConfig {
            algorithm,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            task_group_size: 4,
            steal_enabled: true,
            max_matches: None,
            time_limit: None,
            collect_limit: 0,
            cancel: None,
            seed: 0xC0FF_EE00,
        }
    }

    /// Sets the number of workers.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the task-group size.
    pub fn with_task_group_size(mut self, size: usize) -> Self {
        self.task_group_size = size.max(1);
        self
    }

    /// Enables or disables work stealing.
    pub fn with_stealing(mut self, enabled: bool) -> Self {
        self.steal_enabled = enabled;
        self
    }

    /// Sets a match-count limit (cooperative early stop across all workers).
    pub fn with_max_matches(mut self, limit: u64) -> Self {
        self.max_matches = Some(limit);
        self
    }

    /// Sets a matching-phase time limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Collects up to `limit` mappings.
    pub fn with_collected_mappings(mut self, limit: usize) -> Self {
        self.collect_limit = limit;
        self
    }

    /// Attaches an external cancellation token.
    pub fn with_cancel_token(mut self, token: Arc<CancelToken>) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Outcome of a parallel enumeration run.
#[derive(Clone, Debug)]
pub struct ParallelResult {
    /// Algorithm used.
    pub algorithm: Algorithm,
    /// Number of workers used.
    pub workers: usize,
    /// Number of embeddings found.
    pub matches: u64,
    /// Total states visited across all workers.
    pub states: u64,
    /// Preprocessing time (domains + ordering) in seconds; `0.0` when the run
    /// reused an externally prepared [`SearchContext`].
    pub preprocess_seconds: f64,
    /// Matching (parallel search) wall-clock time in seconds.
    pub match_seconds: f64,
    /// Whether the time limit cut the search short.
    pub timed_out: bool,
    /// Whether the match limit stopped the search early.
    pub limit_hit: bool,
    /// Whether an external [`CancelToken`] stopped the search early.
    pub cancelled: bool,
    /// Total successful steals.
    pub steals: u64,
    /// Total steal requests issued.
    pub steal_requests: u64,
    /// Standard deviation of per-worker visited states (the Fig. 3 load
    /// imbalance metric).
    pub worker_states_stddev: f64,
    /// Per-worker counters.
    pub worker_stats: Vec<WorkerStats>,
    /// Collected mappings, if requested — sorted lexicographically, so that a
    /// complete (non-truncated) collection is byte-identical across worker
    /// counts, task-group sizes and scheduler seeds.
    pub mappings: Vec<Vec<NodeId>>,
}

impl ParallelResult {
    pub(crate) fn empty(algorithm: Algorithm, workers: usize) -> Self {
        ParallelResult {
            algorithm,
            workers,
            matches: 0,
            states: 0,
            preprocess_seconds: 0.0,
            match_seconds: 0.0,
            timed_out: false,
            limit_hit: false,
            cancelled: false,
            steals: 0,
            steal_requests: 0,
            worker_states_stddev: 0.0,
            worker_stats: Vec::new(),
            mappings: Vec::new(),
        }
    }

    /// Total time (preprocessing + matching).
    pub fn total_seconds(&self) -> f64 {
        self.preprocess_seconds + self.match_seconds
    }

    /// States visited per second of matching time.
    pub fn states_per_second(&self) -> f64 {
        if self.match_seconds > 0.0 {
            self.states as f64 / self.match_seconds
        } else {
            0.0
        }
    }
}

/// Uniform handling of the zero-position (empty pattern) edge case: exactly
/// one empty embedding exists, it counts against the match budget, and the
/// visitor / collector observe it like any other match — so every scheduler
/// agrees with the sequential matcher.
pub(crate) fn empty_pattern_outcome(
    config: &ParallelConfig,
    visitor: Option<&dyn MatchVisitor>,
    result: &mut ParallelResult,
) {
    if config.max_matches == Some(0) {
        result.limit_hit = true;
        return;
    }
    result.matches = 1;
    result.limit_hit = config.max_matches == Some(1);
    let mapping: Vec<NodeId> = Vec::new();
    if let Some(visitor) = visitor {
        visitor.on_match(0, &mapping);
    }
    if config.collect_limit > 0 {
        result.mappings.push(mapping);
    }
}

/// Runs the work-stealing scheduler over an already-prepared
/// [`SearchContext`] — the prepared-artifact entry point the unified
/// `sge::Engine` builds on.  Preprocessing cost is *not* re-paid here;
/// `result.preprocess_seconds` is 0.
///
/// `config.algorithm` is ignored in favor of the context's algorithm.  When
/// `visitor` is given it observes every match from whichever worker found it.
pub fn enumerate_prepared(
    ctx: &SearchContext<'_>,
    config: &ParallelConfig,
    visitor: Option<&dyn MatchVisitor>,
) -> ParallelResult {
    let mut result = ParallelResult::empty(ctx.algorithm(), config.workers);

    if ctx.num_positions() == 0 {
        empty_pattern_outcome(config, visitor, &mut result);
        return result;
    }
    if ctx.impossible() {
        return result;
    }

    let mut problem = SubgraphProblem::new(ctx);
    if config.collect_limit > 0 {
        problem = problem.with_collection(config.collect_limit);
    }
    if let Some(visitor) = visitor {
        problem = problem.with_visitor(visitor);
    }

    let mut engine = EngineConfig::with_workers(config.workers)
        .task_group_size(config.task_group_size)
        .steal(config.steal_enabled);
    engine.seed = config.seed;
    if let Some(limit) = config.time_limit {
        engine = engine.time_limit(limit);
    }
    if let Some(limit) = config.max_matches {
        engine = engine.max_solutions(limit);
    }
    if let Some(token) = &config.cancel {
        engine = engine.cancel_token(Arc::clone(token));
    }

    let run_result = run(&problem, &engine);

    result.matches = run_result.solutions;
    result.states = run_result.states;
    result.match_seconds = run_result.elapsed_seconds;
    result.timed_out = run_result.timed_out;
    result.limit_hit = run_result.limit_hit;
    result.cancelled = run_result.cancelled;
    result.steals = run_result.steals;
    result.steal_requests = run_result.steal_requests;
    result.worker_states_stddev = run_result.worker_states_stddev();
    result.worker_stats = run_result.workers;
    // Scheduler-level counters are only known after the workers joined; fold
    // them into the attached trace sink (per-position candidate/state counts
    // were recorded live through the shared context).
    if let Some(sink) = ctx.trace_sink() {
        sink.add_steals(result.steals);
        sink.add_steal_requests(result.steal_requests);
        sink.add_tasks(result.worker_stats.iter().map(|w| w.tasks_executed).sum());
    }
    result.mappings = problem.take_collected();
    // Workers race for the collector, so the raw order is schedule-dependent;
    // sorting restores determinism (see `ParallelResult::mappings`).
    result.mappings.sort_unstable();
    result
}

/// Enumerates all embeddings of `pattern` in `target` with the private-deque
/// work-stealing scheduler (parallel RI / parallel RI-DS / parallel
/// RI-DS-SI-FC, depending on `config.algorithm`).
///
/// Thin shim over [`SearchContext::prepare`] + [`enumerate_prepared`];
/// callers that run the same instance repeatedly should prepare once (or use
/// `sge::Engine`) to amortize preprocessing.
pub fn enumerate_parallel(
    pattern: &Graph,
    target: &Graph,
    config: &ParallelConfig,
) -> ParallelResult {
    let mut timer = PhaseTimer::new();
    let ctx = timer.time("preprocess", || {
        SearchContext::prepare(pattern, target, config.algorithm)
    });
    let mut result = enumerate_prepared(&ctx, config, None);
    result.preprocess_seconds = timer.seconds("preprocess");
    result
}

/// Convenience wrapper: the same initial distribution with stealing disabled —
/// the "no work stealing" baseline of Fig. 3.
pub fn no_stealing(pattern: &Graph, target: &Graph, config: &ParallelConfig) -> ParallelResult {
    let config = config.clone().with_stealing(false);
    enumerate_parallel(pattern, target, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::generators;
    use sge_ri::MatchConfig;

    fn sequential_matches(pattern: &Graph, target: &Graph, algorithm: Algorithm) -> (u64, u64) {
        let r = sge_ri::enumerate(pattern, target, &MatchConfig::new(algorithm));
        (r.matches, r.states)
    }

    #[test]
    fn parallel_counts_equal_sequential_for_all_algorithms() {
        let pattern = generators::undirected_cycle(4, 0);
        let target = generators::grid(4, 4);
        for algorithm in Algorithm::ALL {
            let (matches, states) = sequential_matches(&pattern, &target, algorithm);
            for workers in [1usize, 2, 4] {
                let config = ParallelConfig::new(algorithm).with_workers(workers);
                let result = enumerate_parallel(&pattern, &target, &config);
                assert_eq!(result.matches, matches, "{algorithm} workers={workers}");
                assert_eq!(result.states, states, "{algorithm} workers={workers}");
                assert!(!result.timed_out);
            }
        }
    }

    #[test]
    fn prepared_context_is_reusable_across_runs() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(6, 0);
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::RiDsSiFc);
        let (matches, states) = sequential_matches(&pattern, &target, Algorithm::RiDsSiFc);
        for workers in [1usize, 2, 3] {
            let config = ParallelConfig::new(Algorithm::RiDsSiFc).with_workers(workers);
            let result = enumerate_prepared(&ctx, &config, None);
            assert_eq!(result.matches, matches, "workers={workers}");
            assert_eq!(result.states, states, "workers={workers}");
            assert_eq!(result.preprocess_seconds, 0.0);
        }
    }

    #[test]
    fn task_group_size_does_not_change_counts() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(6, 0);
        let (matches, _) = sequential_matches(&pattern, &target, Algorithm::RiDsSiFc);
        for group_size in [1usize, 2, 4, 8, 16] {
            let config = ParallelConfig::new(Algorithm::RiDsSiFc)
                .with_workers(3)
                .with_task_group_size(group_size);
            let result = enumerate_parallel(&pattern, &target, &config);
            assert_eq!(result.matches, matches, "group_size={group_size}");
        }
    }

    #[test]
    fn no_stealing_finds_the_same_matches() {
        let pattern = generators::undirected_path(3, 0);
        let target = generators::grid(3, 4);
        let (matches, states) = sequential_matches(&pattern, &target, Algorithm::Ri);
        let config = ParallelConfig::new(Algorithm::Ri).with_workers(4);
        let result = no_stealing(&pattern, &target, &config);
        assert_eq!(result.matches, matches);
        assert_eq!(result.states, states);
        assert_eq!(result.steals, 0);
    }

    #[test]
    fn impossible_instances_short_circuit() {
        let mut pb = sge_graph::GraphBuilder::new();
        pb.add_node(77);
        let pattern = pb.build();
        let target = generators::clique(5, 0);
        let config = ParallelConfig::new(Algorithm::RiDsSiFc).with_workers(2);
        let result = enumerate_parallel(&pattern, &target, &config);
        assert_eq!(result.matches, 0);
        assert_eq!(result.states, 0);
    }

    #[test]
    fn empty_pattern_has_one_match() {
        let pattern = sge_graph::GraphBuilder::new().build();
        let target = generators::clique(4, 0);
        let config = ParallelConfig::new(Algorithm::Ri).with_workers(2);
        let result = enumerate_parallel(&pattern, &target, &config);
        assert_eq!(result.matches, 1);
    }

    #[test]
    fn max_matches_stops_workers_cooperatively() {
        // A single directed edge in K12 has 132 embeddings; ask for 17.
        let pattern = generators::directed_path(2, 0);
        let target = generators::clique(12, 0);
        for workers in [1usize, 2, 4] {
            let config = ParallelConfig::new(Algorithm::Ri)
                .with_workers(workers)
                .with_max_matches(17);
            let result = enumerate_parallel(&pattern, &target, &config);
            assert_eq!(result.matches, 17, "workers={workers}");
            assert!(result.limit_hit);
        }
    }

    #[test]
    fn collected_mappings_are_embeddings_and_sorted() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(5, 0);
        let config = ParallelConfig::new(Algorithm::RiDs)
            .with_workers(3)
            .with_collected_mappings(7);
        let result = enumerate_parallel(&pattern, &target, &config);
        assert_eq!(result.mappings.len(), 7);
        let mut sorted = result.mappings.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, result.mappings, "mappings must come back sorted");
        for mapping in &result.mappings {
            for (u, v, l) in pattern.edges() {
                assert_eq!(
                    target.edge_label(mapping[u as usize], mapping[v as usize]),
                    Some(l)
                );
            }
        }
    }

    #[test]
    fn complete_collections_are_identical_across_worker_counts() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(5, 0);
        // 60 matches; collect them all under several schedules.
        let reference = enumerate_parallel(
            &pattern,
            &target,
            &ParallelConfig::new(Algorithm::Ri)
                .with_workers(1)
                .with_collected_mappings(100),
        );
        assert_eq!(reference.mappings.len(), 60);
        for workers in [2usize, 4] {
            let result = enumerate_parallel(
                &pattern,
                &target,
                &ParallelConfig::new(Algorithm::Ri)
                    .with_workers(workers)
                    .with_collected_mappings(100),
            );
            assert_eq!(result.mappings, reference.mappings, "workers={workers}");
        }
    }

    #[test]
    fn result_accessors_are_consistent() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(5, 0);
        let config = ParallelConfig::new(Algorithm::Ri).with_workers(2);
        let result = enumerate_parallel(&pattern, &target, &config);
        assert!(result.total_seconds() >= result.match_seconds);
        assert!(result.states_per_second() >= 0.0);
        assert_eq!(
            result.worker_stats.iter().map(|w| w.states).sum::<u64>(),
            result.states
        );
    }

    #[test]
    fn time_limit_is_respected() {
        let pattern = generators::undirected_cycle(6, 0);
        let target = generators::grid(5, 5);
        let config = ParallelConfig::new(Algorithm::Ri)
            .with_workers(2)
            .with_time_limit(Duration::from_millis(1));
        let result = enumerate_parallel(&pattern, &target, &config);
        // Either it finished very quickly or it was cut off.
        let full = sequential_matches(&pattern, &target, Algorithm::Ri).0;
        if result.timed_out {
            assert!(result.matches <= full);
        } else {
            assert_eq!(result.matches, full);
        }
    }
}

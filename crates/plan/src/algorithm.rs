//! The RI algorithm family: which preprocessing steps a plan performs.

/// Which member of the RI family to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Plain RI: static GreatestConstraintFirst ordering, no domains.
    Ri,
    /// RI-DS: precomputed bitmask domains (label + degree + arc consistency).
    RiDs,
    /// RI-DS-SI: RI-DS with domain-size tie-breaking in the node ordering.
    RiDsSi,
    /// RI-DS-SI-FC: RI-DS-SI plus forward checking of singleton domains.
    RiDsSiFc,
}

impl Algorithm {
    /// All algorithm variants, in the order the paper introduces them.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Ri,
        Algorithm::RiDs,
        Algorithm::RiDsSi,
        Algorithm::RiDsSiFc,
    ];

    /// Does this variant precompute domains?
    pub fn uses_domains(self) -> bool {
        !matches!(self, Algorithm::Ri)
    }

    /// Does this variant break ordering ties by domain size (the SI improvement)?
    pub fn uses_domain_size_tie_break(self) -> bool {
        matches!(self, Algorithm::RiDsSi | Algorithm::RiDsSiFc)
    }

    /// Does this variant run forward checking (the FC improvement)?
    pub fn uses_forward_checking(self) -> bool {
        matches!(self, Algorithm::RiDsSiFc)
    }

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Ri => "RI",
            Algorithm::RiDs => "RI-DS",
            Algorithm::RiDsSi => "RI-DS-SI",
            Algorithm::RiDsSiFc => "RI-DS-SI-FC",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    /// Parses the paper's variant names, case-insensitively; `-` and `_` are
    /// interchangeable (`ri-ds-si-fc`, `RI_DS_SI_FC`, …).
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        match text.to_ascii_lowercase().replace('_', "-").as_str() {
            "ri" => Ok(Algorithm::Ri),
            "ri-ds" => Ok(Algorithm::RiDs),
            "ri-ds-si" => Ok(Algorithm::RiDsSi),
            "ri-ds-si-fc" => Ok(Algorithm::RiDsSiFc),
            other => Err(format!(
                "unknown algorithm '{other}' (expected ri, ri-ds, ri-ds-si or ri-ds-si-fc)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_metadata() {
        assert!(!Algorithm::Ri.uses_domains());
        assert!(Algorithm::RiDs.uses_domains());
        assert!(!Algorithm::RiDs.uses_domain_size_tie_break());
        assert!(Algorithm::RiDsSi.uses_domain_size_tie_break());
        assert!(!Algorithm::RiDsSi.uses_forward_checking());
        assert!(Algorithm::RiDsSiFc.uses_forward_checking());
        assert_eq!(Algorithm::RiDsSiFc.to_string(), "RI-DS-SI-FC");
    }

    #[test]
    fn algorithm_from_str() {
        assert_eq!("ri".parse::<Algorithm>().unwrap(), Algorithm::Ri);
        assert_eq!("RI_DS".parse::<Algorithm>().unwrap(), Algorithm::RiDs);
        assert_eq!(
            "ri-ds-si-fc".parse::<Algorithm>().unwrap(),
            Algorithm::RiDsSiFc
        );
        assert!("vf2".parse::<Algorithm>().is_err());
    }
}

//! A coarse per-position cost model over a match order.
//!
//! The estimates answer "roughly how many candidates will this position see,
//! and how many search states does the prefix imply?" from nothing but the
//! target's label-frequency tables (and the domain sizes when available).
//! They are *planning* numbers — independence assumptions everywhere, no
//! correlation between constraints — good enough to compare orders and to
//! make `EXPLAIN` informative, not a cardinality oracle.

use crate::domains::Domains;
use crate::ordering::MatchOrder;
use sge_graph::{Graph, GraphStats, NodeId};

/// Cost estimate for one position of a match order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PositionCost {
    /// The pattern node matched at this position.
    pub pattern_node: NodeId,
    /// Estimated raw candidates generated per visit of this position.
    pub est_candidates: f64,
    /// Estimated search states at this depth: the product of the candidate
    /// estimates along the prefix up to and including this position.
    pub est_states: f64,
}

/// The per-position estimates plus their total.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlanCost {
    /// One entry per position, in match order.
    pub positions: Vec<PositionCost>,
    /// Sum of `est_states` over all positions — the expected size of the
    /// explored search tree.
    pub est_total_states: f64,
}

/// Upper clamp keeping the cumulative products finite and JSON-friendly.
const EST_CAP: f64 = 1e18;

/// Estimates the cost of `order` for `pattern` against a target described by
/// `stats` (and `domains`, when the algorithm computed them).
///
/// Per position: an unconstrained (root) position expects one candidate per
/// member of its domain — or per target node carrying its label, or per
/// target node for unlabeled plain-RI roots.  A constrained position starts
/// from the average adjacency-list length for its tightest back-edge label
/// (`edge_label_count / nodes`) and multiplies in the selectivity of the
/// label/domain filter and of every additional back-edge, treating all
/// filters as independent.
pub fn estimate(
    pattern: &Graph,
    order: &MatchOrder,
    domains: Option<&Domains>,
    stats: &GraphStats,
) -> PlanCost {
    let nodes = stats.nodes.max(1) as f64;
    let mut positions = Vec::with_capacity(order.len());
    let mut prefix_states = 1.0f64;
    let mut total = 0.0f64;
    for (depth, step) in order.plan.steps.iter().enumerate() {
        let vp = order.positions[depth];
        // How many target nodes pass the per-node filter for vp.
        let eligible = match domains {
            Some(domains) => domains.size(vp) as f64,
            None => stats.node_label_count(pattern.label(vp)) as f64,
        };
        let est_candidates = if step.constraints.is_empty() {
            eligible
        } else {
            // Average adjacency-list length per back-edge label.
            let avg_adj: Vec<f64> = step
                .constraints
                .iter()
                .map(|c| stats.edge_label_count(c.label) as f64 / nodes)
                .collect();
            // Seed from the tightest back-edge; every *other* back-edge then
            // keeps a candidate with probability ≈ avg_adj / nodes (a random
            // endpoint is adjacent under that label), and the node filter
            // keeps it with probability eligible / nodes.
            let (seed_idx, seed) = avg_adj
                .iter()
                .copied()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("constraints are non-empty");
            let node_selectivity = (eligible / nodes).min(1.0);
            let extra: f64 = avg_adj
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != seed_idx)
                .map(|(_, &adj)| (adj / nodes).min(1.0))
                .product();
            seed * node_selectivity * extra
        };
        prefix_states = (prefix_states * est_candidates.max(0.0)).min(EST_CAP);
        total = (total + prefix_states).min(EST_CAP);
        positions.push(PositionCost {
            pattern_node: vp,
            est_candidates,
            est_states: prefix_states,
        });
    }
    PlanCost {
        positions,
        est_total_states: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::greatest_constraint_first;
    use sge_graph::generators;

    #[test]
    fn root_estimate_is_the_label_frequency() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(5, 0);
        let order = greatest_constraint_first(&pattern, None, false);
        let stats = GraphStats::of(&target);
        let cost = estimate(&pattern, &order, None, &stats);
        assert_eq!(cost.positions.len(), 3);
        assert_eq!(cost.positions[0].est_candidates, 5.0);
        assert_eq!(cost.positions[0].est_states, 5.0);
        // Later positions are constrained, so their per-visit estimate is
        // bounded by the average adjacency length (4 in K5).
        for p in &cost.positions[1..] {
            assert!(p.est_candidates <= 4.0 + 1e-9, "{p:?}");
            assert!(p.est_candidates > 0.0, "{p:?}");
        }
        assert!(cost.est_total_states >= cost.positions[0].est_states);
    }

    #[test]
    fn domains_tighten_the_root_estimate() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(5, 0);
        let order = greatest_constraint_first(&pattern, None, false);
        let stats = GraphStats::of(&target);
        let domains = Domains::compute(&pattern, &target);
        let with = estimate(&pattern, &order, Some(&domains), &stats);
        let without = estimate(&pattern, &order, None, &stats);
        assert!(with.est_total_states <= without.est_total_states + 1e-9);
    }

    #[test]
    fn estimates_stay_finite_on_dense_graphs() {
        let pattern = generators::clique(6, 0);
        let target = generators::clique(40, 0);
        let order = greatest_constraint_first(&pattern, None, false);
        let stats = GraphStats::of(&target);
        let cost = estimate(&pattern, &order, None, &stats);
        assert!(cost.est_total_states.is_finite());
        for p in &cost.positions {
            assert!(p.est_states.is_finite() && p.est_candidates.is_finite());
        }
    }

    #[test]
    fn empty_order_costs_nothing() {
        let pattern = sge_graph::GraphBuilder::new().build();
        let order = greatest_constraint_first(&pattern, None, false);
        let stats = GraphStats::of(&pattern);
        let cost = estimate(&pattern, &order, None, &stats);
        assert!(cost.positions.is_empty());
        assert_eq!(cost.est_total_states, 0.0);
    }
}

//! RI-DS domains: per-pattern-node sets of compatible target nodes.
//!
//! RI-DS precomputes, for every pattern node `v_p`, the *domain*
//! `D(v_p) ⊆ V(G_t)` of target nodes it may be mapped onto:
//!
//! 1. **Label/degree filter** — `v_t ∈ D(v_p)` requires `lab(v_t) = lab(v_p)`,
//!    `deg⁻(v_t) ≥ deg⁻(v_p)` and `deg⁺(v_t) ≥ deg⁺(v_p)`.
//! 2. **Arc-consistency sweep** — `v_t` is removed from `D(v_p)` if some edge
//!    `(v_p, w_p)` (or `(w_p, v_p)`) of the pattern has no compatible supporting
//!    edge `(v_t, w_t)` with `w_t ∈ D(w_p)` in the target.
//!
//! Domains are bitmasks over the target nodes ([`sge_util::Bitset`]), exactly
//! as in the original implementation, so the forward-checking improvement of
//! this paper (removing a singleton's value from every other domain) is a
//! word-parallel operation.

use sge_graph::{Graph, NodeId};
use sge_util::Bitset;

/// Per-pattern-node candidate sets over the target nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Domains {
    sets: Vec<Bitset>,
    target_nodes: usize,
}

impl Domains {
    /// Computes domains for `pattern` against `target`: label + degree filter
    /// followed by one arc-consistency sweep over the pattern edges.
    pub fn compute(pattern: &Graph, target: &Graph) -> Domains {
        let np = pattern.num_nodes();
        let nt = target.num_nodes();
        let mut sets: Vec<Bitset> = Vec::with_capacity(np);

        for vp in 0..np as NodeId {
            let mut dom = Bitset::new(nt);
            let lp = pattern.label(vp);
            let out_p = pattern.out_degree(vp);
            let in_p = pattern.in_degree(vp);
            for vt in 0..nt as NodeId {
                if target.label(vt) == lp
                    && target.out_degree(vt) >= out_p
                    && target.in_degree(vt) >= in_p
                {
                    dom.insert(vt as usize);
                }
            }
            sets.push(dom);
        }

        let mut domains = Domains {
            sets,
            target_nodes: nt,
        };
        domains.arc_consistency_sweep(pattern, target);
        domains
    }

    /// One pass of neighborhood (arc) consistency: drop `v_t` from `D(v_p)`
    /// when some pattern edge incident to `v_p` has no supporting target edge
    /// whose other endpoint lies in the neighbor's domain.
    fn arc_consistency_sweep(&mut self, pattern: &Graph, target: &Graph) {
        let np = pattern.num_nodes();
        for vp in 0..np as NodeId {
            let mut to_remove: Vec<usize> = Vec::new();
            for vt in self.sets[vp as usize].iter() {
                if !self.supported(pattern, target, vp, vt as NodeId) {
                    to_remove.push(vt);
                }
            }
            for vt in to_remove {
                self.sets[vp as usize].remove(vt);
            }
        }
    }

    /// Does `v_t` support every pattern edge incident to `v_p`?
    fn supported(&self, pattern: &Graph, target: &Graph, vp: NodeId, vt: NodeId) -> bool {
        for e in pattern.out_edges(vp) {
            let wp = e.node;
            let found = target
                .out_edges(vt)
                .iter()
                .any(|te| te.label == e.label && self.sets[wp as usize].contains(te.node as usize));
            if !found {
                return false;
            }
        }
        for e in pattern.in_edges(vp) {
            let wp = e.node;
            let found = target
                .in_edges(vt)
                .iter()
                .any(|te| te.label == e.label && self.sets[wp as usize].contains(te.node as usize));
            if !found {
                return false;
            }
        }
        true
    }

    /// Number of target nodes the domains range over.
    pub fn target_nodes(&self) -> usize {
        self.target_nodes
    }

    /// Number of pattern nodes.
    pub fn pattern_nodes(&self) -> usize {
        self.sets.len()
    }

    /// Size of the domain of pattern node `vp`.
    pub fn size(&self, vp: NodeId) -> usize {
        self.sets[vp as usize].count()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, vp: NodeId, vt: NodeId) -> bool {
        self.sets[vp as usize].contains(vt as usize)
    }

    /// The raw bitmask of pattern node `vp`.
    pub fn set(&self, vp: NodeId) -> &Bitset {
        &self.sets[vp as usize]
    }

    /// `true` if some domain is empty — no isomorphic subgraph can exist.
    pub fn any_empty(&self) -> bool {
        self.sets.iter().any(|s| s.is_empty())
    }

    /// Sum of all domain sizes (a measure of remaining search freedom used by
    /// the experiment harness).
    pub fn total_size(&self) -> usize {
        self.sets.iter().map(|s| s.count()).sum()
    }

    /// Forward checking on singleton domains (the FC improvement of the paper).
    ///
    /// Every pattern node with a singleton domain will necessarily be assigned
    /// to that single target node, so — by injectivity — that target node can
    /// be removed from the domain of every *other* pattern node.  Newly created
    /// singletons are processed until a fixpoint is reached.
    ///
    /// Returns `false` if a domain becomes empty (no matches exist) and `true`
    /// otherwise.
    pub fn forward_check(&mut self) -> bool {
        let np = self.sets.len();
        let mut processed = vec![false; np];
        loop {
            // Find an unprocessed singleton.
            let next = (0..np).find(|&vp| !processed[vp] && self.sets[vp].count() == 1);
            let Some(vp) = next else {
                return true;
            };
            processed[vp] = true;
            let forced = self.sets[vp]
                .singleton()
                .expect("count()==1 implies a singleton value");
            for other in 0..np {
                if other == vp {
                    continue;
                }
                if self.sets[other].contains(forced) {
                    self.sets[other].remove(forced);
                    if self.sets[other].is_empty() {
                        return false;
                    }
                }
            }
        }
    }

    /// Domain sizes per pattern node (useful for diagnostics and tests).
    pub fn sizes(&self) -> Vec<usize> {
        self.sets.iter().map(|s| s.count()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::{generators, GraphBuilder};

    #[test]
    fn label_and_degree_filter() {
        // Pattern: one node labeled 1 with out-degree 1.
        let mut pb = GraphBuilder::new();
        let a = pb.add_node(1);
        let b = pb.add_node(2);
        pb.add_edge(a, b, 0);
        let pattern = pb.build();

        // Target: node 0 labeled 1 with an out-edge, node 1 labeled 1 without,
        // node 2 labeled 2.
        let mut tb = GraphBuilder::new();
        let t0 = tb.add_node(1);
        let t1 = tb.add_node(1);
        let t2 = tb.add_node(2);
        tb.add_edge(t0, t2, 0);
        let target = tb.build();

        let domains = Domains::compute(&pattern, &target);
        assert!(domains.contains(a, t0));
        assert!(!domains.contains(a, t1), "t1 has out-degree 0 < 1");
        assert!(!domains.contains(a, t2), "t2 has the wrong label");
        assert!(domains.contains(b, t2));
    }

    #[test]
    fn arc_consistency_removes_unsupported_nodes() {
        // Pattern: edge a(1) -> b(2).
        let mut pb = GraphBuilder::new();
        let a = pb.add_node(1);
        let b = pb.add_node(2);
        pb.add_edge(a, b, 0);
        let pattern = pb.build();

        // Target: t0(1) -> t1(3)  (wrong head label) and t2(1) -> t3(2).
        let mut tb = GraphBuilder::new();
        let t0 = tb.add_node(1);
        let t1 = tb.add_node(3);
        let t2 = tb.add_node(1);
        let t3 = tb.add_node(2);
        tb.add_edge(t0, t1, 0);
        tb.add_edge(t2, t3, 0);
        let target = tb.build();

        let domains = Domains::compute(&pattern, &target);
        // t0 passes the degree/label filter but has no out-neighbor in D(b),
        // so the AC sweep must remove it.
        assert!(!domains.contains(a, t0));
        assert!(domains.contains(a, t2));
        assert!(domains.contains(b, t3));
        assert!(!domains.contains(b, t1));
    }

    #[test]
    fn edge_labels_constrain_domains() {
        let mut pb = GraphBuilder::new();
        let a = pb.add_node(0);
        let b = pb.add_node(0);
        pb.add_edge(a, b, 9);
        let pattern = pb.build();

        let mut tb = GraphBuilder::new();
        let t0 = tb.add_node(0);
        let t1 = tb.add_node(0);
        let t2 = tb.add_node(0);
        let t3 = tb.add_node(0);
        tb.add_edge(t0, t1, 9);
        tb.add_edge(t2, t3, 5);
        let target = tb.build();

        let domains = Domains::compute(&pattern, &target);
        assert!(domains.contains(a, t0));
        assert!(
            !domains.contains(a, t2),
            "edge label 5 cannot support pattern edge labeled 9"
        );
    }

    #[test]
    fn domains_never_exclude_actual_matches() {
        // For a pattern extracted from the target (identity embedding), every
        // pattern node's own image must stay in its domain.
        let target = generators::grid(3, 3);
        // Pattern = the subgraph induced on nodes {0,1,3,4} re-indexed.
        let mut pb = GraphBuilder::new();
        pb.add_nodes(4, 0);
        let map = [0u32, 1, 3, 4];
        for (i, &ti) in map.iter().enumerate() {
            for (j, &tj) in map.iter().enumerate() {
                if target.has_edge(ti, tj) {
                    pb.add_edge(i as u32, j as u32, 0);
                }
            }
        }
        let pattern = pb.build();
        let mut domains = Domains::compute(&pattern, &target);
        for (i, &ti) in map.iter().enumerate() {
            assert!(
                domains.contains(i as u32, ti),
                "identity image removed from domain of pattern node {i}"
            );
        }
        assert!(domains.forward_check());
        for (i, &ti) in map.iter().enumerate() {
            // Forward checking may only remove a value if it is forced
            // elsewhere; with symmetric domains here nothing forces removal of
            // the identity images.
            assert!(domains.contains(i as u32, ti));
        }
    }

    #[test]
    fn forward_check_propagates_singletons() {
        // Pattern: two isolated nodes with the same label; target: two nodes of
        // that label. Force a singleton by giving node 0 a degree requirement
        // only one target satisfies.
        let mut pb = GraphBuilder::new();
        let a = pb.add_node(0);
        let b = pb.add_node(0);
        let c = pb.add_node(1);
        pb.add_edge(a, c, 0);
        let pattern = pb.build();

        let mut tb = GraphBuilder::new();
        let t0 = tb.add_node(0); // can host a (has out-edge to label 1)
        let t1 = tb.add_node(0); // can only host b
        let t2 = tb.add_node(1);
        tb.add_edge(t0, t2, 0);
        let target = tb.build();

        let mut domains = Domains::compute(&pattern, &target);
        assert_eq!(domains.size(a), 1);
        assert!(domains.contains(b, t0));
        assert!(domains.contains(b, t1));
        assert!(domains.forward_check());
        // a is forced onto t0, so t0 must have been removed from D(b).
        assert!(!domains.contains(b, t0));
        assert!(domains.contains(b, t1));
        assert_eq!(domains.size(c), 1);
    }

    #[test]
    fn forward_check_detects_contradiction() {
        // Two pattern nodes both forced onto the same single target node.
        let mut pb = GraphBuilder::new();
        pb.add_node(5);
        pb.add_node(5);
        let pattern = pb.build();
        let mut tb = GraphBuilder::new();
        tb.add_node(5);
        let target = tb.build();

        let mut domains = Domains::compute(&pattern, &target);
        assert_eq!(domains.size(0), 1);
        assert_eq!(domains.size(1), 1);
        assert!(!domains.forward_check(), "both nodes need the same image");
    }

    #[test]
    fn empty_domain_detected() {
        let mut pb = GraphBuilder::new();
        pb.add_node(42);
        let pattern = pb.build();
        let target = generators::clique(3, 0);
        let domains = Domains::compute(&pattern, &target);
        assert!(domains.any_empty());
        assert_eq!(domains.total_size(), 0);
    }

    #[test]
    fn sizes_and_accessors() {
        let pattern = generators::directed_path(2, 0);
        let target = generators::directed_path(4, 0);
        let domains = Domains::compute(&pattern, &target);
        assert_eq!(domains.pattern_nodes(), 2);
        assert_eq!(domains.target_nodes(), 4);
        assert_eq!(domains.sizes().len(), 2);
        // Pattern node 0 (has out-edge) cannot map to the last target node.
        assert!(!domains.contains(0, 3));
        assert!(domains.set(0).count() > 0);
    }
}

//! Query planning for subgraph enumeration.
//!
//! The enumeration performance of the RI family lives or dies on the match
//! order.  This crate extracts everything that *decides* how a query will be
//! executed out of the executor (`sge-ri`) into an inspectable, swappable
//! artifact:
//!
//! * [`Planner`] consumes a pattern, a target (plus its
//!   [`sge_graph::GraphStats`] label-frequency tables) and an [`Algorithm`]
//!   and produces a self-contained [`QueryPlan`];
//! * [`QueryPlan`] carries the match order ([`MatchOrder`], including the
//!   [`CandidatePlan`] back-edge metadata driving intersection-based
//!   candidate generation), the RI-DS [`Domains`], the impossibility verdict
//!   and a per-position [`cost::PlanCost`] estimate — everything an executor
//!   needs and everything `EXPLAIN` reports;
//! * [`Strategy`] selects one of the pluggable [`OrderingStrategy`]
//!   implementations: [`strategy::RiGreedy`] (the paper's
//!   GreatestConstraintFirst heuristic, bit-for-bit identical to the
//!   pre-planner behavior), [`strategy::LeastFrequentLabelFirst`]
//!   (seed and extend by the rarest target label, GraphQL/CFL-style) and
//!   [`strategy::DegreeDescending`] (structure-only degree sort).
//!
//! Any permutation of the pattern nodes yields a *correct* enumeration — the
//! executor's candidate generation and consistency checks are
//! order-agnostic — so strategies only trade performance, never results.
//! That property is what makes the strategy space safely benchmarkable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod cost;
pub mod domains;
pub mod ordering;
pub mod planner;
pub mod route;
pub mod strategy;

pub use algorithm::Algorithm;
pub use cost::{PlanCost, PositionCost};
pub use domains::Domains;
pub use ordering::{
    finish_order, greatest_constraint_first, CandidatePlan, EdgeConstraint, KernelChoice,
    MatchOrder, ParentLink, PlanStep, PrefilterSpec,
};
pub use planner::{min_eccentricity_root, undirected_eccentricity, Planner, QueryPlan};
pub use route::{CostModel, RoutingConfig, RoutingDecision, SchedulerChoice};
pub use strategy::{OrderingStrategy, Strategy};

//! GreatestConstraintFirst static node ordering.
//!
//! RI fixes the order in which pattern nodes are matched *before* the search
//! starts ("static variable ordering").  The heuristic greedily grows the
//! ordering so that the next node is the one most constrained by the nodes
//! already ordered, introducing new constraints as early as possible:
//!
//! 1. the first node is one of maximum degree;
//! 2. every following node maximizes, in lexicographic priority,
//!    * `w_m` — the number of its neighbors already in the ordering,
//!    * `w_n` — the number of its neighbors outside the ordering that are
//!      themselves adjacent to the ordering,
//!    * its degree;
//! 3. (RI-DS) nodes whose domain is a singleton are hoisted to the very front —
//!    their assignment is forced, so performing it first prunes everything
//!    below;
//! 4. (RI-DS-SI, this paper) remaining ties are broken in favour of the node
//!    with the *smaller* domain — the constraint-first principle applied to the
//!    domain information that RI-DS already computed.
//!
//! Each position also records a *parent*: the earliest ordered neighbor, whose
//! image during the search supplies the candidate target nodes (its out- or
//! in-neighborhood depending on the pattern edge direction).

use crate::domains::Domains;
use sge_graph::{label_sig_bit, Graph, Label, NodeId};

/// How candidates for a position are generated from its parent's image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParentLink {
    /// Position (index into [`MatchOrder::positions`]) of the parent.
    pub parent_pos: usize,
    /// `true` if the pattern contains the edge `parent -> child`, so candidates
    /// are the out-neighbors of the parent's image; `false` if only
    /// `child -> parent` exists, so candidates are the in-neighbors.
    pub out_from_parent: bool,
}

/// One pattern edge between a position's node and an *earlier* position,
/// expressed as a constraint the candidate images must satisfy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeConstraint {
    /// Position (index into [`MatchOrder::positions`]) of the earlier node.
    pub parent_pos: usize,
    /// `true` for the pattern edge `earlier -> this` (candidates must appear in
    /// the out-neighborhood of the earlier node's image), `false` for
    /// `this -> earlier` (candidates must appear in its in-neighborhood).
    pub out_from_parent: bool,
    /// The pattern edge's label; the supporting target edge must carry it too.
    pub label: Label,
}

/// Which intersection kernel the planner selected for one position.
///
/// The choice is a *hint*: the matcher honors `Bitmap` only when the target's
/// [`sge_graph::AdjacencyBitmaps`] sidecar actually has a row for every
/// constraint of the step, and falls back to galloping otherwise (a row may
/// be missing because the neighborhood is below the density threshold or the
/// sidecar hit its memory cap).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelChoice {
    /// Width-bucketed merge/gallop over sorted CSR adjacency (the default).
    #[default]
    Gallop,
    /// Word-wise AND over dense bitmap adjacency rows.
    Bitmap,
}

impl KernelChoice {
    /// Stable lowercase name used by EXPLAIN and the bench report.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelChoice::Gallop => "gallop",
            KernelChoice::Bitmap => "bitmap",
        }
    }
}

/// Cheap per-candidate feasibility test computed from the pattern node.
///
/// A target node `t` can only be the image of pattern node `v` if `t`'s
/// neighborhood covers, label-for-label, every pattern edge incident to `v`.
/// This records the *necessary* conditions checkable in O(1) per candidate:
/// minimum directed degrees and Bloom-style label signatures
/// (see [`sge_graph::label_sig_bit`]) that the target node's signatures must
/// be a superset of.  False passes are possible (the kernel still verifies);
/// false rejects are not, so filtering cannot change the match set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefilterSpec {
    /// Signature bits required of the candidate's out-neighborhood.
    pub out_sig: u64,
    /// Signature bits required of the candidate's in-neighborhood.
    pub in_sig: u64,
    /// Minimum out-degree of the candidate.
    pub min_out_degree: u32,
    /// Minimum in-degree of the candidate.
    pub min_in_degree: u32,
}

impl PrefilterSpec {
    /// Derives the spec for pattern node `v`: required degrees are `v`'s own
    /// directed degrees, and each incident pattern edge contributes its edge
    /// label's bit plus the far endpoint's node-label bit.
    pub fn for_node(pattern: &Graph, v: NodeId) -> PrefilterSpec {
        let mut out_sig = 0u64;
        for e in pattern.out_edges(v) {
            out_sig |= label_sig_bit(pattern.label(e.node)) | label_sig_bit(e.label);
        }
        let mut in_sig = 0u64;
        for e in pattern.in_edges(v) {
            in_sig |= label_sig_bit(pattern.label(e.node)) | label_sig_bit(e.label);
        }
        PrefilterSpec {
            out_sig,
            in_sig,
            min_out_degree: pattern.out_degree(v) as u32,
            min_in_degree: pattern.in_degree(v) as u32,
        }
    }

    /// `true` when the spec cannot reject anything (isolated pattern node).
    pub fn is_trivial(&self) -> bool {
        *self == PrefilterSpec::default()
    }
}

/// Everything the intersection-based candidate generator needs for one
/// position: all edges back into the ordered prefix, plus the node's
/// self-loop label when it has one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanStep {
    /// Every pattern edge between this position's node and earlier positions.
    /// A node pair connected in both directions contributes two constraints.
    pub constraints: Vec<EdgeConstraint>,
    /// Label of the pattern self-loop on this node, when present.
    pub self_loop: Option<Label>,
    /// Intersection kernel selected by the planner for this position.
    pub kernel: KernelChoice,
    /// Candidate prefilter derived from the pattern node at this position.
    pub prefilter: PrefilterSpec,
}

/// Per-position constraint sets driving multi-parent candidate intersection.
///
/// Where the legacy single-parent scheme generates candidates from *one*
/// ordered neighbor and re-verifies every remaining back-edge per candidate,
/// the plan lists *all* back-edges so candidates can be produced by
/// intersecting the (sorted CSR) adjacency lists of every already-mapped
/// neighbor — after which those edges are guaranteed by construction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CandidatePlan {
    /// One step per position of the ordering.
    pub steps: Vec<PlanStep>,
}

/// A static matching order over the pattern nodes plus the parent links used
/// for candidate generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchOrder {
    /// `positions[i]` is the pattern node matched at depth `i`.
    pub positions: Vec<NodeId>,
    /// Inverse permutation: `position_of[v]` is the depth at which pattern node
    /// `v` is matched.
    pub position_of: Vec<usize>,
    /// Parent link per position (`None` for roots of the ordering, e.g. the
    /// first node or the first node of a new connected component).
    pub parents: Vec<Option<ParentLink>>,
    /// Full back-edge constraints per position (the multi-parent counterpart
    /// of `parents`, used by the intersection-based candidate generator).
    pub plan: CandidatePlan,
}

impl MatchOrder {
    /// Number of positions (= pattern nodes).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when the pattern is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Computes the GreatestConstraintFirst ordering.
///
/// * `domains` — when present (RI-DS family), nodes with singleton domains are
///   hoisted to the front of the ordering.
/// * `domain_size_tie_break` — when `true` (the SI improvement), ties after
///   `w_m`, `w_n` and degree are broken in favour of the smaller domain.
///   Requires `domains` to be present to have any effect.
pub fn greatest_constraint_first(
    pattern: &Graph,
    domains: Option<&Domains>,
    domain_size_tie_break: bool,
) -> MatchOrder {
    finish_order(
        pattern,
        greedy_positions(pattern, domains, domain_size_tie_break),
    )
}

/// The position sequence of [`greatest_constraint_first`] without the
/// finishing pass — the raw output of the RI greedy heuristic, reused by
/// [`crate::strategy::RiGreedy`].
pub fn greedy_positions(
    pattern: &Graph,
    domains: Option<&Domains>,
    domain_size_tie_break: bool,
) -> Vec<NodeId> {
    let n = pattern.num_nodes();
    let mut in_order = vec![false; n];
    let mut positions: Vec<NodeId> = Vec::with_capacity(n);

    // Precompute undirected neighborhoods once (merge-based, no per-call
    // sort); the heuristic only looks at adjacency, not direction.
    let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (v, list) in neighbors.iter_mut().enumerate() {
        pattern.undirected_neighbors_into(v as NodeId, list);
    }

    // RI-DS: singleton-domain nodes first (their assignment is forced).
    if let Some(doms) = domains {
        let mut singletons: Vec<NodeId> = (0..n as NodeId).filter(|&v| doms.size(v) == 1).collect();
        singletons.sort_unstable();
        for v in singletons {
            in_order[v as usize] = true;
            positions.push(v);
        }
    }

    while positions.len() < n {
        let mut best: Option<(usize, usize, usize, usize, NodeId)> = None;
        for v in 0..n as NodeId {
            if in_order[v as usize] {
                continue;
            }
            // w_m: neighbors of v already in the ordering.
            let w_m = neighbors[v as usize]
                .iter()
                .filter(|&&w| in_order[w as usize])
                .count();
            // w_n: neighbors of v outside the ordering that are adjacent to the
            // ordering (they will become constrained soon after v is placed).
            let w_n = neighbors[v as usize]
                .iter()
                .filter(|&&w| {
                    !in_order[w as usize]
                        && neighbors[w as usize].iter().any(|&x| in_order[x as usize])
                })
                .count();
            let degree = pattern.degree(v);
            // Smaller domain preferred => store the *negated rank* as "larger is
            // better"; without SI all candidates share the same value so the
            // criterion is inert.
            let domain_rank = if domain_size_tie_break {
                match domains {
                    Some(doms) => usize::MAX - doms.size(v),
                    None => 0,
                }
            } else {
                0
            };
            let key = (w_m, w_n, degree, domain_rank, v);
            let better = match &best {
                None => true,
                Some((bm, bn, bd, br, bv)) => {
                    // Lexicographic maximum; final component (node id) is a
                    // deterministic tie-break preferring the smaller id.
                    (w_m, w_n, degree, domain_rank) > (*bm, *bn, *bd, *br)
                        || ((w_m, w_n, degree, domain_rank) == (*bm, *bn, *bd, *br) && v < *bv)
                }
            };
            if better {
                best = Some(key);
            }
        }
        let (_, _, _, _, chosen) = best.expect("at least one unordered node remains");
        in_order[chosen as usize] = true;
        positions.push(chosen);
    }

    positions
}

/// Builds the inverse permutation and parent links for a given position
/// sequence. Exposed for tests that want to force a specific ordering.
pub fn finish_order(pattern: &Graph, positions: Vec<NodeId>) -> MatchOrder {
    let n = positions.len();
    let mut position_of = vec![usize::MAX; pattern.num_nodes()];
    for (i, &v) in positions.iter().enumerate() {
        position_of[v as usize] = i;
    }
    let mut parents: Vec<Option<ParentLink>> = Vec::with_capacity(n);
    let mut steps: Vec<PlanStep> = Vec::with_capacity(n);
    for (i, &v) in positions.iter().enumerate() {
        let mut parent: Option<ParentLink> = None;
        let mut step = PlanStep {
            constraints: Vec::new(),
            self_loop: pattern.edge_label(v, v),
            kernel: KernelChoice::default(),
            prefilter: PrefilterSpec::for_node(pattern, v),
        };
        for (j, &u) in positions.iter().enumerate().take(i) {
            if let Some(label) = pattern.edge_label(u, v) {
                if parent.is_none() {
                    // Earliest ordered neighbor becomes the single parent.
                    parent = Some(ParentLink {
                        parent_pos: j,
                        out_from_parent: true,
                    });
                }
                step.constraints.push(EdgeConstraint {
                    parent_pos: j,
                    out_from_parent: true,
                    label,
                });
            }
            if let Some(label) = pattern.edge_label(v, u) {
                if parent.is_none() {
                    parent = Some(ParentLink {
                        parent_pos: j,
                        out_from_parent: false,
                    });
                }
                step.constraints.push(EdgeConstraint {
                    parent_pos: j,
                    out_from_parent: false,
                    label,
                });
            }
        }
        parents.push(parent);
        steps.push(step);
    }
    MatchOrder {
        positions,
        position_of,
        parents,
        plan: CandidatePlan { steps },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::Domains;
    use sge_graph::{generators, GraphBuilder};

    fn is_permutation(order: &MatchOrder, n: usize) -> bool {
        let mut seen = vec![false; n];
        for &v in &order.positions {
            if seen[v as usize] {
                return false;
            }
            seen[v as usize] = true;
        }
        order.positions.len() == n && seen.iter().all(|&s| s)
    }

    #[test]
    fn ordering_is_a_permutation() {
        for pattern in [
            generators::directed_path(6, 0),
            generators::clique(5, 0),
            generators::star(7, 0, 1),
            generators::grid(3, 3),
        ] {
            let order = greatest_constraint_first(&pattern, None, false);
            assert!(is_permutation(&order, pattern.num_nodes()));
            // position_of really is the inverse permutation.
            for (i, &v) in order.positions.iter().enumerate() {
                assert_eq!(order.position_of[v as usize], i);
            }
        }
    }

    #[test]
    fn first_node_has_maximum_degree() {
        let pattern = generators::star(5, 0, 1);
        let order = greatest_constraint_first(&pattern, None, false);
        assert_eq!(order.positions[0], 0, "star center must be ordered first");
    }

    #[test]
    fn connected_pattern_has_parents_after_root() {
        let pattern = generators::grid(3, 3);
        let order = greatest_constraint_first(&pattern, None, false);
        assert!(order.parents[0].is_none());
        for i in 1..order.len() {
            let parent = order.parents[i].expect("connected pattern: every non-root has a parent");
            assert!(parent.parent_pos < i);
            let child = order.positions[i];
            let parent_node = order.positions[parent.parent_pos];
            if parent.out_from_parent {
                assert!(pattern.has_edge(parent_node, child));
            } else {
                assert!(pattern.has_edge(child, parent_node));
            }
        }
    }

    #[test]
    fn disconnected_pattern_gets_multiple_roots() {
        let mut b = GraphBuilder::new();
        b.add_nodes(4, 0);
        b.add_undirected_edge(0, 1, 0);
        b.add_undirected_edge(2, 3, 0);
        let pattern = b.build();
        let order = greatest_constraint_first(&pattern, None, false);
        let roots = order.parents.iter().filter(|p| p.is_none()).count();
        assert_eq!(roots, 2);
    }

    #[test]
    fn each_new_node_maximizes_neighbors_in_ordering() {
        // Greedy invariant: when node at position i was chosen, no other
        // unordered node had strictly more neighbors inside the prefix.
        let pattern = generators::grid(3, 4);
        let order = greatest_constraint_first(&pattern, None, false);
        for i in 1..order.len() {
            let prefix: Vec<_> = order.positions[..i].to_vec();
            let count_in_prefix = |v: sge_graph::NodeId| {
                pattern
                    .undirected_neighbors(v)
                    .iter()
                    .filter(|&&w| prefix.contains(&w))
                    .count()
            };
            let chosen = count_in_prefix(order.positions[i]);
            for &other in &order.positions[i + 1..] {
                assert!(
                    count_in_prefix(other) <= chosen,
                    "node {other} was more constrained than the chosen node at position {i}"
                );
            }
        }
    }

    #[test]
    fn singleton_domains_are_hoisted_to_front() {
        // Pattern: path a-b-c with distinct labels; target: one node per label
        // for 'a', many for the others → D(a) is a singleton.
        let mut pb = GraphBuilder::new();
        let a = pb.add_node(7);
        let b = pb.add_node(1);
        let c = pb.add_node(1);
        pb.add_undirected_edge(a, b, 0);
        pb.add_undirected_edge(b, c, 0);
        let pattern = pb.build();

        let mut tb = GraphBuilder::new();
        let ta = tb.add_node(7);
        for _ in 0..5 {
            tb.add_node(1);
        }
        for v in 1..=5u32 {
            tb.add_undirected_edge(ta, v, 0);
        }
        tb.add_undirected_edge(1, 2, 0);
        let target = tb.build();

        let domains = Domains::compute(&pattern, &target);
        assert_eq!(domains.size(a), 1);
        let order = greatest_constraint_first(&pattern, Some(&domains), false);
        assert_eq!(order.positions[0], a);
    }

    #[test]
    fn si_tie_break_prefers_smaller_domain() {
        // Pattern: star center x with two leaves y, z of identical degree; give
        // y a rarer label so its domain is smaller than z's. With SI, y must be
        // ordered before z.
        let mut pb = GraphBuilder::new();
        let x = pb.add_node(0);
        let y = pb.add_node(1);
        let z = pb.add_node(2);
        pb.add_undirected_edge(x, y, 0);
        pb.add_undirected_edge(x, z, 0);
        let pattern = pb.build();

        let mut tb = GraphBuilder::new();
        let hub = tb.add_node(0);
        // two nodes with label 1 (domain of y), five with label 2 (domain of z)
        for _ in 0..2 {
            let v = tb.add_node(1);
            tb.add_undirected_edge(hub, v, 0);
        }
        for _ in 0..5 {
            let v = tb.add_node(2);
            tb.add_undirected_edge(hub, v, 0);
        }
        let target = tb.build();

        let domains = Domains::compute(&pattern, &target);
        assert!(domains.size(y) < domains.size(z));

        let si = greatest_constraint_first(&pattern, Some(&domains), true);
        let pos_y = si.position_of[y as usize];
        let pos_z = si.position_of[z as usize];
        assert!(pos_y < pos_z, "SI must order the smaller-domain leaf first");
    }

    #[test]
    fn empty_pattern_gives_empty_order() {
        let pattern = GraphBuilder::new().build();
        let order = greatest_constraint_first(&pattern, None, false);
        assert!(order.is_empty());
        assert_eq!(order.len(), 0);
        assert!(order.plan.steps.is_empty());
    }

    #[test]
    fn plan_lists_every_back_edge() {
        // A clique stores both directions of every pair, so position i must
        // carry exactly 2*i constraints (one per direction per earlier node).
        let pattern = generators::clique(4, 0);
        let order = greatest_constraint_first(&pattern, None, false);
        for (i, step) in order.plan.steps.iter().enumerate() {
            assert_eq!(step.constraints.len(), 2 * i, "position {i}");
            assert_eq!(step.self_loop, None);
            for c in &step.constraints {
                assert!(c.parent_pos < i);
                let child = order.positions[i];
                let parent = order.positions[c.parent_pos];
                if c.out_from_parent {
                    assert_eq!(pattern.edge_label(parent, child), Some(c.label));
                } else {
                    assert_eq!(pattern.edge_label(child, parent), Some(c.label));
                }
            }
        }
        // The single-parent link agrees with the earliest constraint.
        for (i, parent) in order.parents.iter().enumerate() {
            let first = order.plan.steps[i].constraints.first();
            match (parent, first) {
                (Some(link), Some(c)) => {
                    assert_eq!(link.parent_pos, c.parent_pos);
                    assert_eq!(link.out_from_parent, c.out_from_parent);
                }
                (None, None) => {}
                other => panic!("parent/plan mismatch at {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn plan_steps_carry_prefilter_and_default_kernel() {
        use sge_graph::label_sig_bit;
        let mut pb = GraphBuilder::new();
        let a = pb.add_node(3);
        let b = pb.add_node(4);
        let c = pb.add_node(5);
        pb.add_edge(a, b, 7);
        pb.add_edge(c, a, 8);
        let pattern = pb.build();
        let order = greatest_constraint_first(&pattern, None, false);
        let pos_a = order.position_of[a as usize];
        let step = &order.plan.steps[pos_a];
        assert_eq!(step.kernel, KernelChoice::Gallop);
        assert_eq!(
            step.prefilter,
            PrefilterSpec {
                out_sig: label_sig_bit(4) | label_sig_bit(7),
                in_sig: label_sig_bit(5) | label_sig_bit(8),
                min_out_degree: 1,
                min_in_degree: 1,
            }
        );
        assert!(!step.prefilter.is_trivial());
        // An isolated node would carry the trivial pass-all spec.
        assert!(PrefilterSpec::default().is_trivial());
    }

    #[test]
    fn plan_records_self_loops_and_edge_labels() {
        let mut pb = GraphBuilder::new();
        let a = pb.add_node(0);
        let b = pb.add_node(0);
        pb.add_edge(a, a, 9);
        pb.add_edge(a, b, 7);
        pb.add_edge(b, a, 8);
        let pattern = pb.build();
        let order = greatest_constraint_first(&pattern, None, false);
        let pos_a = order.position_of[a as usize];
        let pos_b = order.position_of[b as usize];
        assert_eq!(order.plan.steps[pos_a].self_loop, Some(9));
        assert_eq!(order.plan.steps[pos_b].self_loop, None);
        let later = pos_a.max(pos_b);
        let labels: Vec<_> = order.plan.steps[later]
            .constraints
            .iter()
            .map(|c| (c.out_from_parent, c.label))
            .collect();
        // Both directed edges between a and b appear, with their own labels.
        assert_eq!(labels.len(), 2);
        assert!(labels.contains(&(true, if later == pos_b { 7 } else { 8 })));
        assert!(labels.contains(&(false, if later == pos_b { 8 } else { 7 })));
    }
}

//! The [`Planner`]: preprocessing in, [`QueryPlan`] out.

use crate::algorithm::Algorithm;
use crate::cost::{self, PlanCost};
use crate::domains::Domains;
use crate::ordering::{finish_order, KernelChoice, MatchOrder};
use crate::strategy::{PlanningInput, Strategy};
use sge_graph::{Graph, GraphStats, NodeId};
use sge_util::Bitset;
use std::sync::Arc;

/// The self-contained outcome of planning one enumeration instance.
///
/// A plan is everything an executor needs — the match order with its
/// back-edge [`crate::CandidatePlan`], the domains, whether preprocessing
/// already proved infeasibility, and whether the executor must re-check
/// degrees during the search — plus the [`PlanCost`] estimates that make the
/// plan inspectable (`EXPLAIN`).  Domains sit behind an [`Arc`] so a plan
/// can be cloned into long-lived prepared engines without copying bitmasks.
#[derive(Clone)]
pub struct QueryPlan {
    /// The algorithm variant this plan was built for.
    pub algorithm: Algorithm,
    /// The ordering strategy that produced the match order.
    pub strategy: Strategy,
    /// The match order, parent links and back-edge constraint sets.
    pub order: MatchOrder,
    /// RI-DS domains (label + degree filter + arc consistency), when the
    /// algorithm computes them.
    pub domains: Option<Arc<Domains>>,
    /// `true` when preprocessing already proved that no match exists (an
    /// empty domain, or a forward-checking contradiction).
    pub impossible: bool,
    /// Plain RI checks degrees during the search; the RI-DS domains already
    /// encode the degree filter.
    pub check_degrees: bool,
    /// Per-position cost estimates for this order.
    pub cost: PlanCost,
    /// Target nodes the *root* position (position 0) may map to, or `None`
    /// for the whole target.  The sharded serving tier sets this to a
    /// shard's owned-node set so the union of per-shard enumerations is an
    /// exact, overlap-free partition of the match set.
    pub root_filter: Option<Arc<Bitset>>,
}

impl QueryPlan {
    /// Number of positions (= pattern nodes).
    pub fn num_positions(&self) -> usize {
        self.order.len()
    }
}

/// Builds [`QueryPlan`]s for a fixed [`Strategy`].
///
/// ```
/// use sge_graph::generators;
/// use sge_plan::{Algorithm, Planner, Strategy};
///
/// let pattern = generators::directed_cycle(3, 0);
/// let target = generators::clique(5, 0);
/// let plan = Planner::new(Strategy::RiGreedy).plan(&pattern, &target, Algorithm::RiDsSiFc);
/// assert_eq!(plan.num_positions(), 3);
/// assert!(!plan.impossible);
/// assert_eq!(plan.cost.positions.len(), 3);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Planner {
    strategy: Strategy,
}

impl Planner {
    /// A planner using `strategy` for its match orders.
    pub fn new(strategy: Strategy) -> Self {
        Planner { strategy }
    }

    /// The strategy this planner orders with.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Plans `pattern` against `target`, computing the target statistics
    /// internally.  Callers that plan many patterns against one target
    /// should compute [`GraphStats`] once and use [`Planner::plan_with_stats`].
    pub fn plan(&self, pattern: &Graph, target: &Graph, algorithm: Algorithm) -> QueryPlan {
        self.plan_with_stats(pattern, target, &GraphStats::of(target), algorithm)
    }

    /// Plans with precomputed target statistics: domain computation and
    /// forward checking (as the algorithm requires), strategy ordering,
    /// back-edge plan construction, cost estimation.
    pub fn plan_with_stats(
        &self,
        pattern: &Graph,
        target: &Graph,
        target_stats: &GraphStats,
        algorithm: Algorithm,
    ) -> QueryPlan {
        let mut impossible = false;
        let domains = if algorithm.uses_domains() {
            let mut domains = Domains::compute(pattern, target);
            if domains.any_empty()
                || (algorithm.uses_forward_checking() && !domains.forward_check())
            {
                impossible = true;
            }
            Some(Arc::new(domains))
        } else {
            None
        };
        let input = PlanningInput {
            target_stats,
            domains: domains.as_deref(),
            domain_size_tie_break: algorithm.uses_domain_size_tie_break(),
        };
        let positions = self.strategy.implementation().positions(pattern, &input);
        let mut order = finish_order(pattern, positions);
        select_kernels(&mut order, target_stats);
        let cost = cost::estimate(pattern, &order, domains.as_deref(), target_stats);
        QueryPlan {
            algorithm,
            strategy: self.strategy,
            order,
            domains,
            impossible,
            check_degrees: !algorithm.uses_domains(),
            cost,
            root_filter: None,
        }
    }

    /// Plans with a *forced root*: `root` is pinned to position 0 and the
    /// rest of the order grows greedily from it (most connections into the
    /// prefix first, smaller id on ties), so a [`QueryPlan::root_filter`]
    /// restricting position 0 restricts exactly the chosen root vertex.
    ///
    /// The configured [`Strategy`] is bypassed — rooted orders are their own
    /// strategy — but domains, kernel selection and cost estimation run the
    /// same pipeline as [`Planner::plan_with_stats`].
    pub fn plan_rooted(
        &self,
        pattern: &Graph,
        target: &Graph,
        target_stats: &GraphStats,
        algorithm: Algorithm,
        root: NodeId,
        root_filter: Option<Arc<Bitset>>,
    ) -> QueryPlan {
        let mut impossible = false;
        let domains = if algorithm.uses_domains() {
            let mut domains = Domains::compute(pattern, target);
            if domains.any_empty()
                || (algorithm.uses_forward_checking() && !domains.forward_check())
            {
                impossible = true;
            }
            Some(Arc::new(domains))
        } else {
            None
        };
        let positions = rooted_positions(pattern, root);
        let mut order = finish_order(pattern, positions);
        select_kernels(&mut order, target_stats);
        let cost = cost::estimate(pattern, &order, domains.as_deref(), target_stats);
        QueryPlan {
            algorithm,
            strategy: self.strategy,
            order,
            domains,
            impossible,
            check_degrees: !algorithm.uses_domains(),
            cost,
            root_filter,
        }
    }
}

/// The undirected eccentricity of `v` in `graph`: the longest shortest-path
/// distance from `v`, ignoring edge direction.  `None` when some node is
/// unreachable from `v` (the graph is disconnected).
pub fn undirected_eccentricity(graph: &Graph, v: NodeId) -> Option<usize> {
    let n = graph.num_nodes();
    if n == 0 {
        return None;
    }
    let mut depth = vec![usize::MAX; n];
    depth[v as usize] = 0;
    let mut frontier = vec![v];
    let mut level = 0usize;
    let mut visited = 1usize;
    let mut neighbors = Vec::new();
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            graph.undirected_neighbors_into(u, &mut neighbors);
            for &w in &neighbors {
                if depth[w as usize] == usize::MAX {
                    depth[w as usize] = level + 1;
                    visited += 1;
                    next.push(w);
                }
            }
        }
        if !next.is_empty() {
            level += 1;
        }
        frontier = next;
    }
    (visited == n).then_some(level)
}

/// The pattern node with minimum undirected eccentricity (smallest id on
/// ties) and that eccentricity — the natural root for sharded planning,
/// since it minimizes the replication radius a shard must provide.  `None`
/// for empty or disconnected patterns, which the sharded tier rejects.
pub fn min_eccentricity_root(pattern: &Graph) -> Option<(NodeId, usize)> {
    let mut best: Option<(NodeId, usize)> = None;
    for v in pattern.nodes() {
        let ecc = undirected_eccentricity(pattern, v)?;
        if best.is_none_or(|(_, b)| ecc < b) {
            best = Some((v, ecc));
        }
    }
    best
}

/// A position sequence growing greedily outward from a forced root: each
/// next node maximizes its number of undirected neighbors already placed
/// (smaller id on ties).  On a connected pattern every non-root position
/// has at least one placed neighbor, so every step after the root carries
/// back-edge constraints.
fn rooted_positions(pattern: &Graph, root: NodeId) -> Vec<NodeId> {
    let n = pattern.num_nodes();
    let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (v, list) in neighbors.iter_mut().enumerate() {
        pattern.undirected_neighbors_into(v as NodeId, list);
    }
    let mut in_order = vec![false; n];
    let mut positions = Vec::with_capacity(n);
    in_order[root as usize] = true;
    positions.push(root);
    while positions.len() < n {
        let mut best: Option<(usize, NodeId)> = None;
        for v in 0..n as NodeId {
            if in_order[v as usize] {
                continue;
            }
            let placed = neighbors[v as usize]
                .iter()
                .filter(|&&w| in_order[w as usize])
                .count();
            let better = match best {
                None => true,
                Some((bp, bv)) => placed > bp || (placed == bp && v < bv),
            };
            if better {
                best = Some((placed, v));
            }
        }
        let (_, chosen) = best.expect("unordered node remains");
        in_order[chosen as usize] = true;
        positions.push(chosen);
    }
    positions
}

/// Mean total degree at or above which a target counts as kernel-dense.
const BITMAP_DEGREE_MEAN_MIN: f64 = 16.0;

/// Routes each constrained position to the bitmap kernel when the target's
/// degree distribution says dense neighborhoods dominate.
///
/// The rule is deliberately coarse: mean total degree at least
/// [`BITMAP_DEGREE_MEAN_MIN`] *and* at least a quarter of the node count —
/// i.e. adjacency bitmap rows are reasonably full, so a word-wise AND beats
/// galloping over the CSR lists.  Sparse targets (grids, cycles, the PPI
/// collections) keep the default gallop kernel.  Positions without back-edge
/// constraints scan domains or the whole node set and never intersect, so
/// their kernel hint stays `Gallop`.
fn select_kernels(order: &mut MatchOrder, stats: &GraphStats) {
    let dense = stats.nodes > 0
        && stats.degree_mean >= BITMAP_DEGREE_MEAN_MIN
        && stats.degree_mean >= stats.nodes as f64 / 4.0;
    if !dense {
        return;
    }
    for step in &mut order.plan.steps {
        if !step.constraints.is_empty() {
            step.kernel = KernelChoice::Bitmap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::{generators, GraphBuilder};

    #[test]
    fn plans_carry_consistent_metadata() {
        let pattern = generators::undirected_cycle(4, 0);
        let target = generators::grid(4, 4);
        for algorithm in Algorithm::ALL {
            for strategy in Strategy::ALL {
                let plan = Planner::new(strategy).plan(&pattern, &target, algorithm);
                assert_eq!(plan.algorithm, algorithm);
                assert_eq!(plan.strategy, strategy);
                assert_eq!(plan.num_positions(), 4);
                assert_eq!(plan.cost.positions.len(), 4);
                assert_eq!(plan.domains.is_some(), algorithm.uses_domains());
                assert_eq!(plan.check_degrees, !algorithm.uses_domains());
                assert!(!plan.impossible);
            }
        }
    }

    #[test]
    fn impossible_detected_through_domains() {
        let mut pb = GraphBuilder::new();
        pb.add_node(42);
        let pattern = pb.build();
        let target = generators::clique(3, 0);
        let plan = Planner::default().plan(&pattern, &target, Algorithm::RiDs);
        assert!(plan.impossible);
        // Plain RI has no domains, so planning alone cannot prove it.
        let plan = Planner::default().plan(&pattern, &target, Algorithm::Ri);
        assert!(!plan.impossible);
    }

    #[test]
    fn dense_targets_route_constrained_positions_to_bitmap() {
        let pattern = generators::directed_cycle(4, 0);
        let dense = generators::clique(32, 0); // mean degree 62 ≥ 16 and ≥ 32/4
        let plan = Planner::default().plan(&pattern, &dense, Algorithm::RiDs);
        for (i, step) in plan.order.plan.steps.iter().enumerate() {
            let expect = if step.constraints.is_empty() {
                KernelChoice::Gallop
            } else {
                KernelChoice::Bitmap
            };
            assert_eq!(step.kernel, expect, "position {i}");
        }
        assert!(plan
            .order
            .plan
            .steps
            .iter()
            .any(|s| s.kernel == KernelChoice::Bitmap));
    }

    #[test]
    fn sparse_targets_keep_the_gallop_kernel() {
        let pattern = generators::directed_cycle(4, 0);
        for target in [generators::grid(8, 8), generators::clique(5, 0)] {
            let plan = Planner::default().plan(&pattern, &target, Algorithm::RiDs);
            assert!(plan
                .order
                .plan
                .steps
                .iter()
                .all(|s| s.kernel == KernelChoice::Gallop));
        }
    }

    #[test]
    fn strategies_reorder_but_cover_the_same_nodes() {
        let pattern = generators::grid(3, 3);
        let target = generators::grid(5, 5);
        let mut orders = Vec::new();
        for strategy in Strategy::ALL {
            let plan = Planner::new(strategy).plan(&pattern, &target, Algorithm::RiDsSiFc);
            let mut sorted = plan.order.positions.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..9).collect::<Vec<_>>(), "{strategy}");
            orders.push(plan.order.positions.clone());
        }
        assert_eq!(orders.len(), 3);
    }
}

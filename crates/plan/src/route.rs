//! Planner-routed scheduler selection with a self-correcting cost model.
//!
//! The paper's parallelism only pays off when the search tree is deep enough
//! to amortize task distribution: on small instances the work-stealing
//! scheduler runs at a fraction of sequential speed (the BENCH_pr3/pr4 ws4
//! regression).  This module closes the loop the planner already almost has:
//! [`PlanCost::est_total_states`] predicts the tree size, [`Planner::route`]
//! turns the (corrected) prediction into a [`SchedulerChoice`], and a
//! [`CostModel`] shrinks prediction error over time by folding the *observed*
//! state counts of finished runs into a per-target EWMA correction factor.
//!
//! The crate stays executor-agnostic: a [`SchedulerChoice`] names a shape
//! (sequential, or work-stealing with a worker count), and the service layer
//! maps it onto the engine's concrete scheduler type.

use crate::cost::PlanCost;
use crate::planner::Planner;
use std::collections::HashMap;
use std::sync::Mutex;

/// The scheduler shape the planner recommends for one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerChoice {
    /// Run on the caller's thread; small trees never amortize task handoff.
    Sequential,
    /// Fan out over the work-stealing pool with `workers` workers.
    WorkStealing {
        /// Planner-sized worker count (≥ 2, ≤ [`RoutingConfig::max_workers`]).
        workers: usize,
    },
}

impl SchedulerChoice {
    /// Stable wire name (`sequential` / `work-stealing`).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerChoice::Sequential => "sequential",
            SchedulerChoice::WorkStealing { .. } => "work-stealing",
        }
    }
}

impl std::fmt::Display for SchedulerChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerChoice::Sequential => write!(f, "sequential"),
            SchedulerChoice::WorkStealing { workers } => {
                write!(f, "work-stealing(workers={workers})")
            }
        }
    }
}

/// Tunable knobs for [`Planner::route`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoutingConfig {
    /// Corrected-estimate threshold below which queries stay sequential.
    pub sequential_threshold: f64,
    /// Target number of estimated states per worker when fanning out; the
    /// worker count is the corrected estimate divided by this, clamped to
    /// `[2, max_workers]`.
    pub states_per_worker: f64,
    /// Upper bound on planner-sized workers (defaults to the host
    /// parallelism).
    pub max_workers: usize,
}

impl RoutingConfig {
    /// Host-derived defaults: threshold 50k states, 25k states per worker,
    /// `max_workers` = available parallelism.
    pub fn detect() -> Self {
        let max_workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        RoutingConfig {
            sequential_threshold: 50_000.0,
            states_per_worker: 25_000.0,
            max_workers,
        }
    }

    /// A fully pinned config for deterministic tests and the simulator.
    pub fn pinned(sequential_threshold: f64, states_per_worker: f64, max_workers: usize) -> Self {
        RoutingConfig {
            sequential_threshold,
            states_per_worker,
            max_workers,
        }
    }
}

impl Default for RoutingConfig {
    fn default() -> Self {
        RoutingConfig::detect()
    }
}

/// The routing verdict for one query, with everything EXPLAIN reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoutingDecision {
    /// The recommended scheduler shape.
    pub choice: SchedulerChoice,
    /// The planner's raw `est_total_states`.
    pub raw_est_states: f64,
    /// The estimate after applying the cost-model correction factor.
    pub corrected_est_states: f64,
    /// The correction factor that was applied (1.0 when uncorrected).
    pub correction: f64,
    /// The sequential threshold the corrected estimate was compared against.
    pub threshold: f64,
}

impl Planner {
    /// Routes a planned query to a scheduler shape.
    ///
    /// `correction` is the cost model's multiplier for this target (1.0 when
    /// unknown).  The corrected estimate `raw × correction` goes sequential
    /// below `config.sequential_threshold` (small trees never amortize task
    /// handoff — the count-only sequential fast path also short-circuits
    /// mapping collection); above it, the worker count is sized so each
    /// worker sees roughly `config.states_per_worker` states.  A host without
    /// parallelism (`max_workers <= 1`) always routes sequential.
    pub fn route(
        &self,
        cost: &PlanCost,
        correction: f64,
        config: &RoutingConfig,
    ) -> RoutingDecision {
        let raw = cost.est_total_states.max(0.0);
        let correction = if correction.is_finite() && correction > 0.0 {
            correction
        } else {
            1.0
        };
        let corrected = (raw * correction).min(f64::MAX);
        let choice = if config.max_workers <= 1
            || corrected < config.sequential_threshold
            || !corrected.is_finite()
        {
            SchedulerChoice::Sequential
        } else {
            let per_worker = config.states_per_worker.max(1.0);
            let sized = (corrected / per_worker).ceil() as usize;
            SchedulerChoice::WorkStealing {
                workers: sized.clamp(2, config.max_workers.max(2)),
            }
        };
        RoutingDecision {
            choice,
            raw_est_states: raw,
            corrected_est_states: corrected,
            correction,
            threshold: config.sequential_threshold,
        }
    }
}

/// Smoothing factor for the per-target EWMA: each observation moves the
/// correction 30% of the way toward the newly observed ratio.
const EWMA_ALPHA: f64 = 0.3;

/// Ratio clamp keeping one pathological observation from poisoning the model.
const RATIO_CLAMP: f64 = 1e6;

/// Per-target correction factors learned from finished runs.
///
/// Keyed by an opaque target identity (the service uses its target name);
/// each observation of a *complete* run folds `observed / estimated` into an
/// EWMA.  Truncated runs (timeout, match limit, cancellation) must not be
/// fed in — their observed counts undercount the true tree.
#[derive(Debug, Default)]
pub struct CostModel {
    factors: Mutex<HashMap<String, f64>>,
}

impl CostModel {
    /// An empty model (every target starts at correction 1.0).
    pub fn new() -> Self {
        CostModel::default()
    }

    /// The current correction factor for `target` (1.0 when unseen).
    pub fn correction_for(&self, target: &str) -> f64 {
        self.lock().get(target).copied().unwrap_or(1.0)
    }

    /// Folds one complete run into the model and returns the updated factor.
    ///
    /// `estimated` is the planner's raw `est_total_states`, `observed` the
    /// true state count from the run's `EnumerationOutcome`/`TraceSink`.
    /// Non-positive or non-finite estimates are ignored (nothing to correct
    /// against).
    pub fn observe(&self, target: &str, estimated: f64, observed: u64) -> f64 {
        if !estimated.is_finite() || estimated <= 0.0 {
            return self.correction_for(target);
        }
        let ratio = ((observed as f64) / estimated).clamp(1.0 / RATIO_CLAMP, RATIO_CLAMP);
        let mut factors = self.lock();
        let entry = factors.entry(target.to_string()).or_insert(1.0);
        *entry += EWMA_ALPHA * (ratio - *entry);
        *entry
    }

    /// Number of targets with a learned factor.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no run has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, f64>> {
        self.factors
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use crate::Planner;

    fn cost_with_total(total: f64) -> PlanCost {
        PlanCost {
            positions: Vec::new(),
            est_total_states: total,
        }
    }

    fn planner() -> Planner {
        Planner::new(Strategy::RiGreedy)
    }

    #[test]
    fn small_estimates_route_sequential() {
        let config = RoutingConfig::pinned(1000.0, 500.0, 8);
        let decision = planner().route(&cost_with_total(999.0), 1.0, &config);
        assert_eq!(decision.choice, SchedulerChoice::Sequential);
        assert_eq!(decision.correction, 1.0);
        assert_eq!(decision.threshold, 1000.0);
    }

    #[test]
    fn large_estimates_route_work_stealing_with_sized_workers() {
        let config = RoutingConfig::pinned(1000.0, 500.0, 8);
        let decision = planner().route(&cost_with_total(2000.0), 1.0, &config);
        assert_eq!(
            decision.choice,
            SchedulerChoice::WorkStealing { workers: 4 }
        );
    }

    #[test]
    fn worker_count_clamps_to_max() {
        let config = RoutingConfig::pinned(1000.0, 500.0, 3);
        let decision = planner().route(&cost_with_total(1e9), 1.0, &config);
        assert_eq!(
            decision.choice,
            SchedulerChoice::WorkStealing { workers: 3 }
        );
    }

    #[test]
    fn single_core_always_routes_sequential() {
        let config = RoutingConfig::pinned(1000.0, 500.0, 1);
        let decision = planner().route(&cost_with_total(1e12), 1.0, &config);
        assert_eq!(decision.choice, SchedulerChoice::Sequential);
    }

    #[test]
    fn correction_factor_swings_the_decision() {
        let config = RoutingConfig::pinned(1000.0, 500.0, 8);
        // Raw estimate says parallel, but the model learned a 100x
        // overestimate for this target.
        let corrected = planner().route(&cost_with_total(5000.0), 0.01, &config);
        assert_eq!(corrected.choice, SchedulerChoice::Sequential);
        assert!((corrected.corrected_est_states - 50.0).abs() < 1e-9);
        // And the other way: an underestimating planner gets boosted over the
        // threshold.
        let boosted = planner().route(&cost_with_total(200.0), 10.0, &config);
        assert_eq!(boosted.choice, SchedulerChoice::WorkStealing { workers: 4 });
    }

    #[test]
    fn bogus_corrections_fall_back_to_identity() {
        let config = RoutingConfig::pinned(1000.0, 500.0, 8);
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let decision = planner().route(&cost_with_total(100.0), bad, &config);
            assert_eq!(decision.correction, 1.0, "correction {bad} not sanitized");
        }
    }

    #[test]
    fn cost_model_converges_toward_observed_ratio() {
        let model = CostModel::new();
        assert_eq!(model.correction_for("t"), 1.0);
        // The planner consistently overestimates 10x: observed/estimated = 0.1.
        let mut last = 1.0;
        for _ in 0..50 {
            last = model.observe("t", 1000.0, 100);
        }
        assert!(
            (last - 0.1).abs() < 1e-6,
            "correction {last} did not converge"
        );
        assert_eq!(model.len(), 1);
    }

    #[test]
    fn cost_model_error_shrinks_monotonically_on_repeats() {
        let model = CostModel::new();
        let target_ratio = 4.0; // planner underestimates 4x
        let mut prev_err = (model.correction_for("t") - target_ratio).abs();
        for _ in 0..20 {
            let factor = model.observe("t", 250.0, 1000);
            let err = (factor - target_ratio).abs();
            assert!(err <= prev_err + 1e-12, "error grew: {prev_err} -> {err}");
            prev_err = err;
        }
        assert!(prev_err < 0.01);
    }

    #[test]
    fn cost_model_ignores_unusable_estimates() {
        let model = CostModel::new();
        assert_eq!(model.observe("t", 0.0, 500), 1.0);
        assert_eq!(model.observe("t", f64::NAN, 500), 1.0);
        assert!(model.is_empty());
    }

    #[test]
    fn cost_model_is_per_target() {
        let model = CostModel::new();
        model.observe("a", 100.0, 1000);
        assert!(model.correction_for("a") > 1.0);
        assert_eq!(model.correction_for("b"), 1.0);
    }
}

//! Pluggable ordering strategies.
//!
//! A strategy turns a pattern (plus target statistics and, for the RI-DS
//! family, domains) into a permutation of the pattern nodes.  The executor's
//! candidate generation and consistency checks are order-agnostic, so every
//! strategy enumerates the *same* matches — only the shape (and therefore
//! the size) of the explored search tree changes.

use crate::domains::Domains;
use crate::ordering::greedy_positions;
use sge_graph::{Graph, GraphStats, NodeId};

/// Everything an [`OrderingStrategy`] may consult besides the pattern.
pub struct PlanningInput<'a> {
    /// Label-frequency statistics of the target graph.
    pub target_stats: &'a GraphStats,
    /// RI-DS domains, when the algorithm computes them.
    pub domains: Option<&'a Domains>,
    /// Whether ordering ties should be broken by domain size (the SI
    /// improvement; only meaningful when `domains` is present).
    pub domain_size_tie_break: bool,
}

/// A match-order heuristic: produces a permutation of the pattern nodes.
pub trait OrderingStrategy {
    /// Short stable name (used in reports and the wire protocol).
    fn name(&self) -> &'static str;
    /// The position sequence: `result[i]` is the pattern node matched at
    /// depth `i`.  Must be a permutation of `0..pattern.num_nodes()`.
    fn positions(&self, pattern: &Graph, input: &PlanningInput<'_>) -> Vec<NodeId>;
}

/// Which ordering strategy a [`crate::Planner`] uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The paper's GreatestConstraintFirst greedy (RI): structure-first,
    /// most-constrained-next, with RI-DS singleton hoisting and the SI
    /// domain-size tie-break when domains are available.  Bit-for-bit
    /// identical to the pre-planner ordering.
    #[default]
    RiGreedy,
    /// Seed and extend by the rarest target node label (GraphQL/CFL-style):
    /// positions whose label occurs least often in the target come first, so
    /// the top of the search tree has the fewest candidates.
    LeastFrequentLabelFirst,
    /// Pure structure: pattern nodes sorted by total degree, descending.
    /// The simplest baseline — no target information at all.
    DegreeDescending,
}

impl Strategy {
    /// Every selectable strategy, in presentation order.
    pub const ALL: [Strategy; 3] = [
        Strategy::RiGreedy,
        Strategy::LeastFrequentLabelFirst,
        Strategy::DegreeDescending,
    ];

    /// Short stable name (also the canonical `FromStr` spelling).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::RiGreedy => "ri-greedy",
            Strategy::LeastFrequentLabelFirst => "least-frequent-label",
            Strategy::DegreeDescending => "degree-descending",
        }
    }

    /// The strategy implementation behind this selector.
    pub fn implementation(self) -> &'static dyn OrderingStrategy {
        match self {
            Strategy::RiGreedy => &RiGreedy,
            Strategy::LeastFrequentLabelFirst => &LeastFrequentLabelFirst,
            Strategy::DegreeDescending => &DegreeDescending,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    /// Parses the strategy names used by the CLI tools and the wire
    /// protocol, case-insensitively; `-` and `_` are interchangeable and a
    /// few shorthands are accepted (`greedy`, `lfl`, `degree`).
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        match text.to_ascii_lowercase().replace('_', "-").as_str() {
            "ri-greedy" | "greedy" | "gcf" => Ok(Strategy::RiGreedy),
            "least-frequent-label" | "least-frequent-label-first" | "lfl" | "lflf" => {
                Ok(Strategy::LeastFrequentLabelFirst)
            }
            "degree-descending" | "degree-desc" | "degree" => Ok(Strategy::DegreeDescending),
            other => Err(format!(
                "unknown strategy '{other}' (expected ri-greedy, least-frequent-label or \
                 degree-descending)"
            )),
        }
    }
}

/// The paper's GreatestConstraintFirst heuristic (see
/// [`crate::ordering::greatest_constraint_first`]).
pub struct RiGreedy;

impl OrderingStrategy for RiGreedy {
    fn name(&self) -> &'static str {
        Strategy::RiGreedy.name()
    }

    fn positions(&self, pattern: &Graph, input: &PlanningInput<'_>) -> Vec<NodeId> {
        greedy_positions(pattern, input.domains, input.domain_size_tie_break)
    }
}

/// Rarest-target-label-first ordering.
///
/// The seed is the pattern node whose label is least frequent among the
/// target nodes (ties: higher degree, then smaller id).  Each extension step
/// prefers nodes adjacent to the ordered prefix — keeping the order
/// connected so candidates come from adjacency intersections rather than
/// full scans — and among those again picks the rarest label, breaking ties
/// by the number of already-ordered neighbors, degree, and id.  When domains
/// are available the *domain size* stands in for the raw label frequency:
/// it is the same signal sharpened by degree filtering and arc consistency.
pub struct LeastFrequentLabelFirst;

/// Frequency rank of a node: domain size when available (RI-DS family),
/// otherwise the target-label frequency.  Smaller is better.
fn rarity(v: NodeId, pattern: &Graph, input: &PlanningInput<'_>) -> usize {
    match input.domains {
        Some(domains) => domains.size(v),
        None => input.target_stats.node_label_count(pattern.label(v)),
    }
}

impl OrderingStrategy for LeastFrequentLabelFirst {
    fn name(&self) -> &'static str {
        Strategy::LeastFrequentLabelFirst.name()
    }

    fn positions(&self, pattern: &Graph, input: &PlanningInput<'_>) -> Vec<NodeId> {
        let n = pattern.num_nodes();
        let mut in_order = vec![false; n];
        let mut positions: Vec<NodeId> = Vec::with_capacity(n);
        // Per-node undirected neighborhoods, computed once up front; the
        // selection loop below is allocation-free.
        let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (v, list) in neighbors.iter_mut().enumerate() {
            pattern.undirected_neighbors_into(v as NodeId, list);
        }
        use std::cmp::Reverse;
        while positions.len() < n {
            // Lexicographic maximum of (adjacent-to-prefix, rarer label /
            // smaller domain, more ordered neighbors, higher degree, smaller
            // node id).
            let best = (0..n as NodeId)
                .filter(|&v| !in_order[v as usize])
                .max_by_key(|&v| {
                    let w_m = neighbors[v as usize]
                        .iter()
                        .filter(|&&w| in_order[w as usize])
                        .count();
                    let adjacent = w_m > 0 || positions.is_empty();
                    (
                        adjacent,
                        Reverse(rarity(v, pattern, input)),
                        w_m,
                        pattern.degree(v),
                        Reverse(v),
                    )
                });
            let chosen = best.expect("at least one unordered node remains");
            in_order[chosen as usize] = true;
            positions.push(chosen);
        }
        positions
    }
}

/// Total-degree-descending ordering (ties: smaller node id first).
pub struct DegreeDescending;

impl OrderingStrategy for DegreeDescending {
    fn name(&self) -> &'static str {
        Strategy::DegreeDescending.name()
    }

    fn positions(&self, pattern: &Graph, _input: &PlanningInput<'_>) -> Vec<NodeId> {
        let mut positions: Vec<NodeId> = (0..pattern.num_nodes() as NodeId).collect();
        positions.sort_by_key(|&v| (std::cmp::Reverse(pattern.degree(v)), v));
        positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::{generators, GraphBuilder, GraphStats};

    fn is_permutation(positions: &[NodeId], n: usize) -> bool {
        let mut seen = vec![false; n];
        for &v in positions {
            if seen[v as usize] {
                return false;
            }
            seen[v as usize] = true;
        }
        positions.len() == n && seen.iter().all(|&s| s)
    }

    #[test]
    fn strategy_names_round_trip_through_from_str() {
        for strategy in Strategy::ALL {
            assert_eq!(strategy.name().parse::<Strategy>().unwrap(), strategy);
            assert_eq!(strategy.implementation().name(), strategy.name());
        }
        assert_eq!("GREEDY".parse::<Strategy>().unwrap(), Strategy::RiGreedy);
        assert_eq!(
            "lfl".parse::<Strategy>().unwrap(),
            Strategy::LeastFrequentLabelFirst
        );
        assert_eq!(
            "degree".parse::<Strategy>().unwrap(),
            Strategy::DegreeDescending
        );
        assert!("random".parse::<Strategy>().is_err());
        assert_eq!(Strategy::default(), Strategy::RiGreedy);
    }

    #[test]
    fn every_strategy_emits_a_permutation() {
        let patterns = [
            generators::directed_path(5, 0),
            generators::clique(4, 0),
            generators::star(6, 0, 1),
            generators::grid(3, 3),
        ];
        let target = generators::grid(4, 4);
        let stats = GraphStats::of(&target);
        let input = PlanningInput {
            target_stats: &stats,
            domains: None,
            domain_size_tie_break: false,
        };
        for pattern in &patterns {
            for strategy in Strategy::ALL {
                let positions = strategy.implementation().positions(pattern, &input);
                assert!(
                    is_permutation(&positions, pattern.num_nodes()),
                    "{strategy} on {}",
                    pattern.name()
                );
            }
        }
    }

    #[test]
    fn least_frequent_label_seeds_with_the_rarest_label() {
        // Pattern: path a(7) - b(1) - c(1); target has one node labeled 7 and
        // five labeled 1, so a must be seeded first.
        let mut pb = GraphBuilder::new();
        let a = pb.add_node(7);
        let b = pb.add_node(1);
        let c = pb.add_node(1);
        pb.add_undirected_edge(a, b, 0);
        pb.add_undirected_edge(b, c, 0);
        let pattern = pb.build();

        let mut tb = GraphBuilder::new();
        tb.add_node(7);
        for _ in 0..5 {
            tb.add_node(1);
        }
        let target = tb.build();
        let stats = GraphStats::of(&target);
        let input = PlanningInput {
            target_stats: &stats,
            domains: None,
            domain_size_tie_break: false,
        };
        let positions = LeastFrequentLabelFirst.positions(&pattern, &input);
        assert_eq!(positions[0], a);
        // The extension stays connected: b (adjacent) precedes c.
        assert_eq!(positions, vec![a, b, c]);
    }

    #[test]
    fn degree_descending_sorts_by_degree() {
        let pattern = generators::star(4, 0, 1); // center 0 has degree 8
        let positions = DegreeDescending.positions(
            &pattern,
            &PlanningInput {
                target_stats: &GraphStats::of(&pattern),
                domains: None,
                domain_size_tie_break: false,
            },
        );
        assert_eq!(positions[0], 0);
        assert_eq!(&positions[1..], &[1, 2, 3, 4]);
    }
}

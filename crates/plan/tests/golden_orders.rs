//! Golden tests: `Strategy::RiGreedy` must reproduce the pre-planner
//! ordering **bit for bit** — positions, parent links and the full
//! back-edge candidate plan.
//!
//! The expected values below were captured from the implementation as it
//! stood *before* ordering/domain logic moved out of `sge-ri` into this
//! crate (PR 4), on fixed graphs covering plain RI, the RI-DS singleton
//! hoist and the SI domain-size tie-break.  Any drift here is a regression:
//! cached plans, bench trajectories and the paper-parity claims all assume
//! this order.

use sge_graph::{generators, Graph, GraphBuilder};
use sge_plan::{Algorithm, ParentLink, Planner, Strategy};

type ExpectedStep = (Vec<(usize, bool, u32)>, Option<u32>);

fn assert_plan(
    name: &str,
    pattern: &Graph,
    target: &Graph,
    algorithm: Algorithm,
    positions: &[u32],
    parents: &[Option<(usize, bool)>],
    steps: &[ExpectedStep],
) {
    let plan = Planner::new(Strategy::RiGreedy).plan(pattern, target, algorithm);
    assert_eq!(
        plan.order.positions, positions,
        "{name} {algorithm}: match order drifted"
    );
    let expected_parents: Vec<Option<ParentLink>> = parents
        .iter()
        .map(|p| {
            p.map(|(parent_pos, out_from_parent)| ParentLink {
                parent_pos,
                out_from_parent,
            })
        })
        .collect();
    assert_eq!(
        plan.order.parents, expected_parents,
        "{name} {algorithm}: parent links drifted"
    );
    assert_eq!(
        plan.order.plan.steps.len(),
        steps.len(),
        "{name} {algorithm}"
    );
    for (i, (expected_constraints, expected_loop)) in steps.iter().enumerate() {
        let step = &plan.order.plan.steps[i];
        let got: Vec<(usize, bool, u32)> = step
            .constraints
            .iter()
            .map(|c| (c.parent_pos, c.out_from_parent, c.label))
            .collect();
        assert_eq!(
            &got, expected_constraints,
            "{name} {algorithm}: constraints at position {i} drifted"
        );
        assert_eq!(
            step.self_loop, *expected_loop,
            "{name} {algorithm}: self-loop at position {i} drifted"
        );
    }
}

#[test]
fn grid34_cycle4_golden() {
    let pattern = generators::undirected_cycle(4, 0);
    let target = generators::grid(3, 4);
    let steps: Vec<ExpectedStep> = vec![
        (vec![], None),
        (vec![(0, true, 0), (0, false, 0)], None),
        (vec![(1, true, 0), (1, false, 0)], None),
        (
            vec![(0, true, 0), (0, false, 0), (2, true, 0), (2, false, 0)],
            None,
        ),
    ];
    for algorithm in Algorithm::ALL {
        assert_plan(
            "grid34_cycle4",
            &pattern,
            &target,
            algorithm,
            &[0, 1, 2, 3],
            &[None, Some((0, true)), Some((1, true)), Some((0, true))],
            &steps,
        );
    }
}

#[test]
fn clique5_cycle3_golden() {
    let pattern = generators::directed_cycle(3, 0);
    let target = generators::clique(5, 0);
    let steps: Vec<ExpectedStep> = vec![
        (vec![], None),
        (vec![(0, true, 0)], None),
        (vec![(0, false, 0), (1, true, 0)], None),
    ];
    for algorithm in Algorithm::ALL {
        assert_plan(
            "clique5_cycle3",
            &pattern,
            &target,
            algorithm,
            &[0, 1, 2],
            &[None, Some((0, true)), Some((0, false))],
            &steps,
        );
    }
}

#[test]
fn star_golden() {
    let pattern = generators::star(5, 0, 1);
    let mut tb = GraphBuilder::new();
    let hub = tb.add_node(0);
    for _ in 0..7 {
        let v = tb.add_node(1);
        tb.add_undirected_edge(hub, v, 0);
    }
    let target = tb.build();
    let mut steps: Vec<ExpectedStep> = vec![(vec![], None)];
    for _ in 0..5 {
        steps.push((vec![(0, true, 0)], None));
    }
    for algorithm in Algorithm::ALL {
        assert_plan(
            "star_in_hub",
            &pattern,
            &target,
            algorithm,
            &[0, 1, 2, 3, 4, 5],
            &[
                None,
                Some((0, true)),
                Some((0, true)),
                Some((0, true)),
                Some((0, true)),
                Some((0, true)),
            ],
            &steps,
        );
    }
}

#[test]
fn labeled_path_golden_covers_singleton_hoist() {
    // Pattern: path a(7) - b(1) - c(1); target: one node labeled 7 wired to
    // five labeled 1.  D(a) is a singleton, so the RI-DS family hoists a to
    // the front while plain RI orders the path center (max degree) first.
    let mut pb = GraphBuilder::new();
    let a = pb.add_node(7);
    let b = pb.add_node(1);
    let c = pb.add_node(1);
    pb.add_undirected_edge(a, b, 0);
    pb.add_undirected_edge(b, c, 0);
    let pattern = pb.build();

    let mut tb = GraphBuilder::new();
    let ta = tb.add_node(7);
    for _ in 0..5 {
        tb.add_node(1);
    }
    for v in 1..=5u32 {
        tb.add_undirected_edge(ta, v, 0);
    }
    tb.add_undirected_edge(1, 2, 0);
    let target = tb.build();

    assert_plan(
        "labeled_path",
        &pattern,
        &target,
        Algorithm::Ri,
        &[1, 0, 2],
        &[None, Some((0, true)), Some((0, true))],
        &[
            (vec![], None),
            (vec![(0, true, 0), (0, false, 0)], None),
            (vec![(0, true, 0), (0, false, 0)], None),
        ],
    );
    for algorithm in [Algorithm::RiDs, Algorithm::RiDsSi, Algorithm::RiDsSiFc] {
        assert_plan(
            "labeled_path",
            &pattern,
            &target,
            algorithm,
            &[0, 1, 2],
            &[None, Some((0, true)), Some((1, true))],
            &[
                (vec![], None),
                (vec![(0, true, 0), (0, false, 0)], None),
                (vec![(1, true, 0), (1, false, 0)], None),
            ],
        );
    }
}

//! Intersection kernels: scalar reference, width-bucketed vectorized
//! gallop, and bitmap word-AND, plus the parity diff tool.
//!
//! All kernels compute the same function — intersect a sorted candidate
//! buffer with a sorted labeled CSR adjacency list — and must produce
//! byte-identical results.  They differ only in the access pattern:
//!
//! * [`intersect_reference`] — the obviously-correct two-pointer scalar
//!   merge.  Never used on the hot path; it is the oracle every other kernel
//!   is diffed against.
//! * [`intersect_gallop`] — the production kernel for CSR lists, bucketed by
//!   the length ratio `|adj| / |out|`:
//!   * comparable lengths take a **branch-light chunked linear merge** whose
//!     inner loop is a branchless count-of-smaller over fixed-size chunks
//!     (the `core::simd`-style shape: a compare-and-sum LLVM auto-vectorizes
//!     under `#![forbid(unsafe_code)]`);
//!   * a much longer `adj` takes **exponential-probe galloping** per
//!     candidate;
//!   * a much *shorter* `adj` swaps iteration direction and gallops through
//!     the candidate buffer instead — the worst case of the old kernel,
//!     which probed a tiny adjacency list once per candidate.
//! * bitmap rows from [`sge_graph::AdjacencyBitmaps`] intersect via
//!   [`and_rows`] / [`collect_row`] — word-wise AND, no per-element work.
//!
//! [`assert_kernel_parity`] / [`check_kernel_parity`] pinpoint the first
//! diverging element between a kernel's output and the reference, in the
//! spirit of a score-matrix parity assert: not just "differs" but *where*
//! and *what*.

use sge_graph::{EdgeRef, Label, NodeId};
use std::sync::atomic::{AtomicU64, Ordering};

const WORD_BITS: usize = 64;

/// Length-ratio at which the gallop kernel switches strategies: `adj` more
/// than `WIDTH_RATIO`× longer than `out` gallops through `adj`; `out` more
/// than `WIDTH_RATIO`× longer than `adj` swaps direction and gallops through
/// `out`; anything in between takes the chunked linear merge.
pub const WIDTH_RATIO: usize = 8;

/// Chunk width of the branchless count-of-smaller scan in the merge bucket.
const CHUNK: usize = 8;

/// Which bucket [`intersect_gallop`] routed one invocation to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GallopRoute {
    /// Comparable lengths: chunked branch-light linear merge.
    Merge,
    /// `adj` much longer: exponential-probe gallop through `adj`.
    Gallop,
    /// `out` much longer: swapped iteration, galloping through `out`.
    GallopSwapped,
}

/// Totals of kernel invocations and prefilter rejections for one run.
///
/// `bitmap` counts bitmap rows ANDed, `gallop`/`merge` count
/// [`intersect_gallop`] invocations per bucket (the swapped bucket counts as
/// `gallop`), and `prefilter_rejected` counts candidates dropped by the
/// label-signature/min-degree prefilter before any kernel ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelUsage {
    /// Bitmap rows intersected via word-wise AND.
    pub bitmap: u64,
    /// Galloping intersections (probe-driven, either direction).
    pub gallop: u64,
    /// Chunked linear-merge intersections.
    pub merge: u64,
    /// Candidates rejected by the prefilter before any kernel ran.
    pub prefilter_rejected: u64,
}

impl KernelUsage {
    /// Field-wise sum.
    pub fn add(&mut self, other: KernelUsage) {
        self.bitmap += other.bitmap;
        self.gallop += other.gallop;
        self.merge += other.merge;
        self.prefilter_rejected += other.prefilter_rejected;
    }

    /// Field-wise saturating difference (`self - earlier`), for deriving the
    /// usage of one run from two snapshots of shared cells.
    pub fn since(&self, earlier: &KernelUsage) -> KernelUsage {
        KernelUsage {
            bitmap: self.bitmap.saturating_sub(earlier.bitmap),
            gallop: self.gallop.saturating_sub(earlier.gallop),
            merge: self.merge.saturating_sub(earlier.merge),
            prefilter_rejected: self
                .prefilter_rejected
                .saturating_sub(earlier.prefilter_rejected),
        }
    }

    /// Total kernel invocations across all three paths.
    pub fn intersections(&self) -> u64 {
        self.bitmap + self.gallop + self.merge
    }
}

/// Shared atomic kernel counters, updated by every worker driving one
/// [`crate::SearchContext`] and snapshotted by the engine into
/// `engine.kernel.*` metrics.
///
/// Workers accumulate locally per candidate fill and flush once, so the cost
/// is a handful of relaxed adds per fill — the same order as the optional
/// trace sink.
#[derive(Debug, Default)]
pub struct KernelCells {
    bitmap: AtomicU64,
    gallop: AtomicU64,
    merge: AtomicU64,
    prefilter_rejected: AtomicU64,
}

impl KernelCells {
    /// Folds one local accumulation into the shared cells.
    pub fn flush(&self, local: KernelUsage) {
        if local.bitmap != 0 {
            self.bitmap.fetch_add(local.bitmap, Ordering::Relaxed);
        }
        if local.gallop != 0 {
            self.gallop.fetch_add(local.gallop, Ordering::Relaxed);
        }
        if local.merge != 0 {
            self.merge.fetch_add(local.merge, Ordering::Relaxed);
        }
        if local.prefilter_rejected != 0 {
            self.prefilter_rejected
                .fetch_add(local.prefilter_rejected, Ordering::Relaxed);
        }
    }

    /// Current totals.
    pub fn snapshot(&self) -> KernelUsage {
        KernelUsage {
            bitmap: self.bitmap.load(Ordering::Relaxed),
            gallop: self.gallop.load(Ordering::Relaxed),
            merge: self.merge.load(Ordering::Relaxed),
            prefilter_rejected: self.prefilter_rejected.load(Ordering::Relaxed),
        }
    }
}

/// Scalar reference kernel: in-place two-pointer intersection of the sorted
/// buffer `out` with the sorted adjacency list `adj`, keeping nodes whose
/// supporting edge carries `label`.
pub fn intersect_reference(out: &mut Vec<NodeId>, adj: &[EdgeRef], label: Label) {
    let mut write = 0;
    let mut j = 0;
    for read in 0..out.len() {
        let v = out[read];
        while j < adj.len() && adj[j].node < v {
            j += 1;
        }
        if j >= adj.len() {
            break;
        }
        if adj[j].node == v && adj[j].label == label {
            out[write] = v;
            write += 1;
        }
    }
    out.truncate(write);
}

/// Production CSR kernel: same contract as [`intersect_reference`], bucketed
/// by length ratio (see [`WIDTH_RATIO`]).  Returns the bucket taken so
/// callers can account invocations per path.
pub fn intersect_gallop(out: &mut Vec<NodeId>, adj: &[EdgeRef], label: Label) -> GallopRoute {
    if out.len() > WIDTH_RATIO * adj.len() {
        intersect_swapped(out, adj, label);
        GallopRoute::GallopSwapped
    } else if adj.len() > WIDTH_RATIO * out.len() {
        intersect_probing(out, adj, label);
        GallopRoute::Gallop
    } else {
        intersect_merge(out, adj, label);
        GallopRoute::Merge
    }
}

/// Exponential-probe gallop: iterate `out`, probe `adj`.  Right when `adj`
/// is much longer than the surviving candidate set.
fn intersect_probing(out: &mut Vec<NodeId>, adj: &[EdgeRef], label: Label) {
    let mut write = 0;
    let mut from = 0;
    for read in 0..out.len() {
        let v = out[read];
        from = advance_probing(adj, from, v);
        if from >= adj.len() {
            break;
        }
        if adj[from].node == v && adj[from].label == label {
            out[write] = v;
            write += 1;
        }
    }
    out.truncate(write);
}

/// Swapped gallop: iterate `adj` (the short side), gallop through `out`.
/// Fixes the old kernel's worst case — a tiny adjacency list probed once per
/// element of a huge candidate buffer.
fn intersect_swapped(out: &mut Vec<NodeId>, adj: &[EdgeRef], label: Label) {
    let mut write = 0;
    let mut read = 0;
    for e in adj {
        if e.label != label {
            continue;
        }
        read = advance_ids(out, read.max(write), e.node);
        if read >= out.len() {
            break;
        }
        if out[read] == e.node {
            out[write] = e.node;
            write += 1;
            read += 1;
        }
    }
    out.truncate(write);
}

/// Chunked branch-light linear merge: iterate `out`, advance the `adj`
/// cursor with a branchless count-of-smaller over fixed-width chunks.
fn intersect_merge(out: &mut Vec<NodeId>, adj: &[EdgeRef], label: Label) {
    let mut write = 0;
    let mut from = 0;
    for read in 0..out.len() {
        let v = out[read];
        from = advance_chunked(adj, from, v);
        if from >= adj.len() {
            break;
        }
        if adj[from].node == v && adj[from].label == label {
            out[write] = v;
            write += 1;
        }
    }
    out.truncate(write);
}

/// First index `>= from` with `adj[i].node >= v`, via chunked linear scan.
///
/// The inner loop counts how many of the next [`CHUNK`] entries are still
/// `< v` with a compare-and-sum — no data-dependent branch inside the chunk,
/// which is the shape LLVM turns into vector compares.  Because `adj` is
/// sorted, the count equals the offset of the first entry `>= v` within the
/// chunk.
#[inline]
fn advance_chunked(adj: &[EdgeRef], mut from: usize, v: NodeId) -> usize {
    while from + CHUNK <= adj.len() {
        let below: usize = adj[from..from + CHUNK]
            .iter()
            .map(|e| (e.node < v) as usize)
            .sum();
        from += below;
        if below < CHUNK {
            return from;
        }
    }
    while from < adj.len() && adj[from].node < v {
        from += 1;
    }
    from
}

/// First index `>= from` with `adj[i].node >= v`, via exponential probes
/// bracketing a binary search.
#[inline]
fn advance_probing(adj: &[EdgeRef], from: usize, v: NodeId) -> usize {
    let mut lo = from;
    if lo >= adj.len() || adj[lo].node >= v {
        return lo;
    }
    // Invariant: adj[lo].node < v.
    let mut step = 1;
    while lo + step < adj.len() && adj[lo + step].node < v {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step).min(adj.len());
    lo + 1 + adj[lo + 1..hi].partition_point(|e| e.node < v)
}

/// [`advance_probing`] over a plain sorted id slice (the candidate buffer).
#[inline]
fn advance_ids(ids: &[NodeId], from: usize, v: NodeId) -> usize {
    let mut lo = from;
    if lo >= ids.len() || ids[lo] >= v {
        return lo;
    }
    let mut step = 1;
    while lo + step < ids.len() && ids[lo + step] < v {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step).min(ids.len());
    lo + 1 + ids[lo + 1..hi].partition_point(|&id| id < v)
}

/// Word-wise AND of `row` into `acc` (`acc` keeps only bits set in both).
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn and_rows(acc: &mut [u64], row: &[u64]) {
    assert_eq!(acc.len(), row.len(), "bitmap row width mismatch");
    for (a, &b) in acc.iter_mut().zip(row.iter()) {
        *a &= b;
    }
}

/// Appends the indices of every set bit of `words` to `out`, ascending.
pub fn collect_row(words: &[u64], out: &mut Vec<NodeId>) {
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let idx = w * WORD_BITS + bits.trailing_zeros() as usize;
            out.push(idx as NodeId);
            bits &= bits - 1;
        }
    }
}

/// The first point where a kernel's output diverges from the scalar
/// reference: the element index, the value each side holds there (`None`
/// once a side is exhausted), and both lengths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelDivergence {
    /// Which kernel diverged (e.g. `"bitmap"`, `"gallop"`).
    pub kernel: &'static str,
    /// Index of the first differing element.
    pub index: usize,
    /// The reference's element at `index`, if any.
    pub expected: Option<NodeId>,
    /// The kernel's element at `index`, if any.
    pub actual: Option<NodeId>,
    /// Total reference output length.
    pub expected_len: usize,
    /// Total kernel output length.
    pub actual_len: usize,
}

impl std::fmt::Display for KernelDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kernel '{}' diverges from the scalar reference at element {}: \
             expected {:?}, got {:?} (reference has {} elements, kernel {})",
            self.kernel, self.index, self.expected, self.actual, self.expected_len, self.actual_len
        )
    }
}

/// Compares a kernel's output against the scalar reference and reports the
/// first diverging element, if any.
pub fn check_kernel_parity(
    kernel: &'static str,
    expected: &[NodeId],
    actual: &[NodeId],
) -> Result<(), KernelDivergence> {
    let limit = expected.len().max(actual.len());
    for index in 0..limit {
        let e = expected.get(index).copied();
        let a = actual.get(index).copied();
        if e != a {
            return Err(KernelDivergence {
                kernel,
                index,
                expected: e,
                actual: a,
                expected_len: expected.len(),
                actual_len: actual.len(),
            });
        }
    }
    Ok(())
}

/// Panicking form of [`check_kernel_parity`] with the focused diff report as
/// the panic message.
///
/// # Panics
/// Panics when `actual` differs from `expected`.
pub fn assert_kernel_parity(kernel: &'static str, expected: &[NodeId], actual: &[NodeId]) {
    if let Err(divergence) = check_kernel_parity(kernel, expected, actual) {
        panic!("{divergence}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::{AdjacencyBitmaps, BitmapConfig, GraphBuilder};

    fn adj(entries: &[(NodeId, Label)]) -> Vec<EdgeRef> {
        entries
            .iter()
            .map(|&(node, label)| EdgeRef { node, label })
            .collect()
    }

    fn run(kernel: impl Fn(&mut Vec<NodeId>, &[EdgeRef], Label), seed: &[NodeId]) -> Vec<NodeId> {
        let mut out = seed.to_vec();
        let list = adj(&[(2, 0), (3, 1), (5, 0), (8, 0), (13, 0)]);
        kernel(&mut out, &list, 0);
        out
    }

    #[test]
    fn all_buckets_agree_with_the_reference() {
        let seed: Vec<NodeId> = vec![1, 2, 3, 5, 9, 13];
        let expected = run(intersect_reference, &seed);
        assert_eq!(expected, vec![2, 5, 13]); // 3 present but wrong label
        for kernel in [intersect_merge, intersect_probing, intersect_swapped] {
            assert_kernel_parity("bucket", &expected, &run(kernel, &seed));
        }
        assert_kernel_parity(
            "gallop",
            &expected,
            &run(
                |o, a, l| {
                    intersect_gallop(o, a, l);
                },
                &seed,
            ),
        );
    }

    #[test]
    fn route_follows_the_width_buckets() {
        let long_adj: Vec<EdgeRef> = adj(&(0..1000).map(|i| (i as NodeId, 0)).collect::<Vec<_>>());
        let mut out = vec![500 as NodeId];
        assert_eq!(
            intersect_gallop(&mut out, &long_adj, 0),
            GallopRoute::Gallop
        );
        assert_eq!(out, vec![500]);

        let mut out: Vec<NodeId> = (0..1000).collect();
        let tiny = adj(&[(37, 0)]);
        assert_eq!(
            intersect_gallop(&mut out, &tiny, 0),
            GallopRoute::GallopSwapped
        );
        assert_eq!(out, vec![37]);

        let mut out: Vec<NodeId> = (0..20).collect();
        let medium = adj(&(0..30).map(|i| (i as NodeId, 0)).collect::<Vec<_>>());
        assert_eq!(intersect_gallop(&mut out, &medium, 0), GallopRoute::Merge);
        assert_eq!(out, (0..20).collect::<Vec<NodeId>>());
    }

    #[test]
    fn swapped_gallop_handles_one_element_adjacency_against_huge_buffer() {
        // Regression for the old kernel's worst case: |out| = 10_000 against
        // |adj| = 1 must route to the swapped bucket and intersect correctly.
        let mut out: Vec<NodeId> = (0..10_000).collect();
        let single = adj(&[(9_999, 0)]);
        let mut expected = out.clone();
        intersect_reference(&mut expected, &single, 0);
        assert_eq!(
            intersect_gallop(&mut out, &single, 0),
            GallopRoute::GallopSwapped
        );
        assert_kernel_parity("gallop-swapped", &expected, &out);
        assert_eq!(out, vec![9_999]);

        // Same shape, but the lone edge carries the wrong label.
        let mut out: Vec<NodeId> = (0..10_000).collect();
        let single = adj(&[(9_999, 7)]);
        assert_eq!(
            intersect_gallop(&mut out, &single, 0),
            GallopRoute::GallopSwapped
        );
        assert!(out.is_empty());
    }

    #[test]
    fn empty_sides_are_handled() {
        for kernel in [intersect_merge, intersect_probing, intersect_swapped] {
            let mut out: Vec<NodeId> = Vec::new();
            kernel(&mut out, &adj(&[(1, 0)]), 0);
            assert!(out.is_empty());
            let mut out = vec![1 as NodeId, 2];
            kernel(&mut out, &[], 0);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn bitmap_row_helpers_match_reference() {
        let mut b = GraphBuilder::new();
        for _ in 0..70 {
            b.add_node(0);
        }
        for v in [1u32, 3, 63, 64, 69, 7, 12, 33] {
            b.add_edge(0, v, 0);
        }
        let g = b.build();
        let config = BitmapConfig {
            degree_threshold: 1,
            ..BitmapConfig::default()
        };
        let maps = AdjacencyBitmaps::build(&g, &config);
        let row = maps.out_row(0, 0).expect("forced row");

        let seed: Vec<NodeId> = vec![0, 1, 2, 3, 33, 63, 64, 65, 69];
        let mut expected = seed.clone();
        intersect_reference(&mut expected, g.out_edges(0), 0);

        // AND against a full accumulator, then collect.
        let mut acc = vec![u64::MAX; row.len()];
        and_rows(&mut acc, row);
        let mut dense: Vec<NodeId> = Vec::new();
        collect_row(&acc, &mut dense);
        let bitmap: Vec<NodeId> = seed
            .iter()
            .copied()
            .filter(|v| dense.binary_search(v).is_ok())
            .collect();
        assert_kernel_parity("bitmap", &expected, &bitmap);
    }

    #[test]
    fn parity_reports_pinpoint_the_first_divergence() {
        let expected: Vec<NodeId> = vec![1, 2, 3];
        let err = check_kernel_parity("demo", &expected, &[1, 9, 3]).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.expected, Some(2));
        assert_eq!(err.actual, Some(9));
        let text = err.to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("element 1"));

        let err = check_kernel_parity("demo", &expected, &[1, 2]).unwrap_err();
        assert_eq!(err.index, 2);
        assert_eq!(err.expected, Some(3));
        assert_eq!(err.actual, None);
        assert_eq!(err.actual_len, 2);

        assert!(check_kernel_parity("demo", &expected, &expected).is_ok());
    }

    #[test]
    fn kernel_cells_accumulate_and_snapshot() {
        let cells = KernelCells::default();
        cells.flush(KernelUsage {
            bitmap: 2,
            gallop: 3,
            merge: 5,
            prefilter_rejected: 7,
        });
        cells.flush(KernelUsage {
            bitmap: 1,
            ..KernelUsage::default()
        });
        let snap = cells.snapshot();
        assert_eq!(snap.bitmap, 3);
        assert_eq!(snap.gallop, 3);
        assert_eq!(snap.merge, 5);
        assert_eq!(snap.prefilter_rejected, 7);
        assert_eq!(snap.intersections(), 11);
        let earlier = KernelUsage {
            bitmap: 1,
            gallop: 1,
            merge: 1,
            prefilter_rejected: 1,
        };
        let delta = snap.since(&earlier);
        assert_eq!(delta.bitmap, 2);
        assert_eq!(delta.intersections(), 8);
    }

    /// Deterministic xorshift for the random cross-kernel property test.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn random_lists_keep_all_kernels_byte_identical() {
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
        for round in 0..200 {
            let n = 1 + rng.below(120) as usize;
            let labels = 1 + rng.below(3) as u32;
            // Random sorted adjacency with unique node ids.
            let mut nodes: Vec<NodeId> = (0..n as NodeId).filter(|_| rng.below(3) > 0).collect();
            nodes.dedup();
            let list: Vec<EdgeRef> = nodes
                .iter()
                .map(|&node| EdgeRef {
                    node,
                    label: rng.below(labels as u64) as Label,
                })
                .collect();
            // Random sorted candidate buffer.
            let seed: Vec<NodeId> = (0..n as NodeId).filter(|_| rng.below(4) > 1).collect();
            let label = rng.below(labels as u64) as Label;

            let mut expected = seed.clone();
            intersect_reference(&mut expected, &list, label);
            for (name, kernel) in [
                (
                    "merge",
                    intersect_merge as fn(&mut Vec<NodeId>, &[EdgeRef], Label),
                ),
                ("probing", intersect_probing),
                ("swapped", intersect_swapped),
            ] {
                let mut out = seed.clone();
                kernel(&mut out, &list, label);
                assert!(
                    check_kernel_parity(name, &expected, &out).is_ok(),
                    "round {round}: {}",
                    check_kernel_parity(name, &expected, &out).unwrap_err()
                );
            }
            let mut out = seed.clone();
            intersect_gallop(&mut out, &list, label);
            assert_kernel_parity("gallop", &expected, &out);
        }
    }
}

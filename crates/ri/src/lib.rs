//! Sequential subgraph enumeration: RI, RI-DS, RI-DS-SI and RI-DS-SI-FC.
//!
//! This crate implements the algorithms the paper parallelizes and improves:
//!
//! * **RI** (Bonnici et al., BMC Bioinformatics 2013) — backtracking over a
//!   *static* node ordering computed by the GreatestConstraintFirst heuristic
//!   ([`ordering`]), with cheap-first consistency checks and no expensive
//!   inference during the search.
//! * **RI-DS** — RI plus precomputed *domains*: for every pattern node the set
//!   of compatible target nodes, filtered by label, degree and one
//!   arc-consistency sweep ([`domains`]).  Domains are stored as bitmasks,
//!   pattern nodes with singleton domains are hoisted to the front of the
//!   ordering, and domains restrict both root candidates and every search step.
//! * **RI-DS-SI** — this paper's improvement: domain size breaks ties in the
//!   node ordering (most-constrained-first).
//! * **RI-DS-SI-FC** — additionally performs forward checking on singleton
//!   domains before the search starts (removing forced target nodes from every
//!   other domain, propagating until fixpoint).
//!
//! Since the planning extraction, this crate is a **pure executor**: node
//! ordering, domain computation and the cost model live in `sge-plan`
//! (re-exported here for compatibility), and a [`search::SearchContext`] is
//! built from a `sge_plan::QueryPlan` — either one the caller planned
//! explicitly (choosing a `sge_plan::Strategy`) or the default RI-greedy
//! plan produced by [`search::SearchContext::prepare`].
//!
//! The [`search::SearchContext`] type exposes the candidate generation and
//! consistency checking machinery in a form that the parallel runtime
//! (`sge-parallel`) reuses unchanged, so the sequential and parallel matchers
//! explore exactly the same search space.
//!
//! # Quick example
//!
//! ```
//! use sge_graph::generators;
//! use sge_ri::{enumerate, Algorithm, MatchConfig};
//!
//! // Find all directed 3-cycles in a 4-clique.
//! let pattern = generators::directed_cycle(3, 0);
//! let target = generators::clique(4, 0);
//! let result = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::Ri));
//! assert_eq!(result.matches, 24);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod matcher;
pub mod search;
pub mod visitor;

// Planning moved to `sge-plan`; the modules and types stay reachable under
// their historical `sge_ri` paths.
pub use sge_plan::{domains, ordering};

pub use kernels::{
    assert_kernel_parity, check_kernel_parity, intersect_gallop, intersect_reference, KernelCells,
    KernelDivergence, KernelUsage,
};
pub use matcher::{
    enumerate, enumerate_with, search_prepared, Algorithm, MatchConfig, MatchResult, SearchLimits,
    SearchRun,
};
pub use search::{CandidateMode, PreparedParts, SearchContext, WorkerState};
pub use sge_plan::{
    greatest_constraint_first, CandidatePlan, Domains, EdgeConstraint, KernelChoice, MatchOrder,
    ParentLink, PlanStep, Planner, QueryPlan, Strategy,
};
pub use visitor::{ChannelVisitor, CollectingVisitor, MatchVisitor, NoopVisitor};

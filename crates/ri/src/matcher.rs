//! The sequential enumeration driver.
//!
//! [`enumerate`] runs the full pipeline — preprocessing (domains + ordering)
//! followed by the depth-first search — and reports the quantities the paper's
//! evaluation is built on: match count, *search space size* (number of states
//! visited, i.e. consistency checks performed), preprocessing / matching /
//! total time, and whether a time limit was hit.

use crate::search::{SearchContext, WorkerState};
use sge_graph::{Graph, NodeId};
use sge_util::{CancelToken, PhaseTimer};
use std::sync::Arc;
use std::time::{Duration, Instant};

// The algorithm selector moved to the planning crate with the rest of the
// preprocessing machinery; re-exported here so `sge_ri::Algorithm` and
// `sge_ri::matcher::Algorithm` keep working.
pub use sge_plan::Algorithm;

/// Configuration of one enumeration run.
#[derive(Clone, Debug)]
pub struct MatchConfig {
    /// Algorithm variant.
    pub algorithm: Algorithm,
    /// Stop after this many matches (`None` = enumerate all).
    pub max_matches: Option<u64>,
    /// Wall-clock budget for the *matching* phase; exceeding it sets
    /// [`MatchResult::timed_out`] (the paper uses a 180 s limit).
    pub time_limit: Option<Duration>,
    /// Record the first `collect_limit` full mappings in the result.
    pub collect_limit: usize,
}

impl MatchConfig {
    /// Default configuration for an algorithm: enumerate everything, no time
    /// limit, do not collect mappings.
    pub fn new(algorithm: Algorithm) -> Self {
        MatchConfig {
            algorithm,
            max_matches: None,
            time_limit: None,
            collect_limit: 0,
        }
    }

    /// Sets a match-count limit.
    pub fn with_max_matches(mut self, limit: u64) -> Self {
        self.max_matches = Some(limit);
        self
    }

    /// Sets the matching-phase time limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Collects up to `limit` full mappings in the result.
    pub fn with_collected_mappings(mut self, limit: usize) -> Self {
        self.collect_limit = limit;
        self
    }

    /// The search-phase knobs of this configuration, for prepared runs.
    pub fn limits(&self) -> SearchLimits {
        SearchLimits {
            max_matches: self.max_matches,
            time_limit: self.time_limit,
            cancel: None,
            count_only: false,
        }
    }
}

/// Outcome of one enumeration run.
#[derive(Clone, Debug)]
pub struct MatchResult {
    /// Algorithm that produced this result.
    pub algorithm: Algorithm,
    /// Number of isomorphic (non-induced) subgraphs found.
    pub matches: u64,
    /// Search space size: number of states visited, i.e. `(position,
    /// candidate)` pairs for which a consistency check ran.
    pub states: u64,
    /// Preprocessing time in seconds (domain assignment + ordering).
    pub preprocess_seconds: f64,
    /// Matching (search) time in seconds.
    pub match_seconds: f64,
    /// Whether the time limit interrupted the search (counts are then lower
    /// bounds).
    pub timed_out: bool,
    /// Collected mappings (`pattern node -> target node`), at most
    /// `collect_limit` of them.
    pub mappings: Vec<Vec<NodeId>>,
}

impl MatchResult {
    /// Total time (preprocessing + matching) in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.preprocess_seconds + self.match_seconds
    }

    /// States visited per second of matching time.
    pub fn states_per_second(&self) -> f64 {
        if self.match_seconds > 0.0 {
            self.states as f64 / self.match_seconds
        } else {
            0.0
        }
    }
}

/// Search-phase knobs of one prepared run — everything *except* the
/// preprocessing choices, which are fixed once a [`SearchContext`] exists.
#[derive(Clone, Debug, Default)]
pub struct SearchLimits {
    /// Stop after this many matches (`None` = enumerate all).
    pub max_matches: Option<u64>,
    /// Wall-clock budget for the matching phase.
    pub time_limit: Option<Duration>,
    /// Cooperative cancellation flag, polled alongside the match budget;
    /// when it fires the search stops early and reports
    /// [`SearchRun::cancelled`] (counts become lower bounds, exactly like a
    /// timed-out run).  The streaming bridge uses this to stop enumeration
    /// once its consumer is gone.
    pub cancel: Option<Arc<CancelToken>>,
    /// Caller's promise that the visitor is a no-op (nothing observes
    /// individual matches or mappings).  Lets unbounded, untimed runs take
    /// the last-depth bitmap counting fast path, which adds the final
    /// position's states and matches by popcount instead of enumerating
    /// them.  Counters stay byte-identical either way.
    pub count_only: bool,
}

/// Raw outcome of one prepared sequential search (no preprocessing figures —
/// preprocessing happened when the [`SearchContext`] was built).
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchRun {
    /// Number of embeddings found.
    pub matches: u64,
    /// States visited (consistency checks performed).
    pub states: u64,
    /// Matching wall-clock seconds.
    pub match_seconds: f64,
    /// Whether the time limit interrupted the search.
    pub timed_out: bool,
    /// Whether the match limit stopped the search early.
    pub limit_hit: bool,
    /// Whether a [`CancelToken`] stopped the search early.
    pub cancelled: bool,
}

struct SearchDriver<'a, F> {
    ctx: &'a SearchContext<'a>,
    state: WorkerState,
    candidate_buffers: Vec<Vec<NodeId>>,
    states: u64,
    matches: u64,
    deadline: Option<Instant>,
    timed_out: bool,
    max_matches: Option<u64>,
    cancel: Option<&'a CancelToken>,
    cancelled: bool,
    count_only: bool,
    visitor: F,
}

impl<'a, F: FnMut(&SearchContext<'a>, &WorkerState)> SearchDriver<'a, F> {
    fn stop(&mut self) -> bool {
        if self.timed_out || self.cancelled {
            return true;
        }
        if let Some(cancel) = self.cancel {
            // The load is relaxed and only taken when a token exists, so
            // uncancellable runs pay nothing on the hot path.
            if cancel.is_cancelled() {
                self.cancelled = true;
                return true;
            }
        }
        if let Some(limit) = self.max_matches {
            if self.matches >= limit {
                return true;
            }
        }
        false
    }

    fn check_deadline(&mut self) {
        if let Some(deadline) = self.deadline {
            // Only consult the clock every 4096 states; Instant::now is cheap
            // but not free, and the paper measures in whole milliseconds.
            if self.states.is_multiple_of(4096) && Instant::now() >= deadline {
                self.timed_out = true;
            }
        }
    }

    fn search(&mut self, depth: usize) {
        let np = self.ctx.num_positions();
        // Last-depth counting fast path: when nothing observes individual
        // matches and no budget can interrupt mid-position, the final
        // position's states and matches come straight off the bitmap
        // popcount (byte-identical counts, see
        // `SearchContext::count_final_candidates`).
        let count_final = depth + 1 == np
            && self.count_only
            && self.max_matches.is_none()
            && self.deadline.is_none()
            && self.cancel.is_none();
        if count_final {
            if let Some(count) = self.ctx.count_final_candidates(depth, &self.state) {
                self.states += count.states;
                self.matches += count.matches;
                return;
            }
        }
        let mut candidates = std::mem::take(&mut self.candidate_buffers[depth]);
        self.ctx.candidates(depth, &self.state, &mut candidates);
        if count_final {
            if let Some(count) =
                self.ctx
                    .final_count_from_candidates(depth, &self.state, &candidates)
            {
                self.states += count.states;
                self.matches += count.matches;
                self.candidate_buffers[depth] = candidates;
                return;
            }
        }
        for &vt in &candidates {
            if self.stop() {
                break;
            }
            self.states += 1;
            self.check_deadline();
            if !self.ctx.is_consistent(depth, vt, &self.state) {
                continue;
            }
            self.state.assign(depth, vt);
            if depth + 1 == np {
                self.matches += 1;
                (self.visitor)(self.ctx, &self.state);
            } else {
                self.search(depth + 1);
            }
            self.state.unassign(depth);
        }
        self.candidate_buffers[depth] = candidates;
    }
}

/// Runs the depth-first search over an already-prepared [`SearchContext`],
/// invoking `visitor` for every match with the context and the complete
/// worker state (use [`SearchContext::mapping_by_pattern_node`] to extract
/// the mapping).
///
/// This is the prepared-artifact entry point the unified `sge::Engine` and
/// the parallel runtime build on: preprocessing (domains, forward checking,
/// GCF ordering) happened once when the context was built and is amortized
/// across repeated calls.  An empty pattern has exactly one (empty)
/// embedding; a context whose preprocessing proved infeasibility returns
/// immediately with zero matches.
pub fn search_prepared<F>(
    ctx: &SearchContext<'_>,
    limits: &SearchLimits,
    mut visitor: F,
) -> SearchRun
where
    F: FnMut(&SearchContext<'_>, &WorkerState),
{
    let mut run = SearchRun::default();
    if ctx.num_positions() == 0 {
        // The empty pattern has exactly one embedding: the empty mapping.
        // It is subject to the match limit and observed by the visitor like
        // any other match, so every scheduler agrees on this edge case.
        if limits.max_matches == Some(0) {
            run.limit_hit = true;
            return run;
        }
        run.matches = 1;
        run.limit_hit = limits.max_matches == Some(1);
        visitor(ctx, &ctx.new_state());
        return run;
    }
    if ctx.impossible() {
        return run;
    }

    let match_start = Instant::now();
    let deadline = limits.time_limit.map(|limit| match_start + limit);
    // Uniform deadline semantics across schedulers: a budget that is already
    // exhausted when the search would start reports `timed_out` with zero
    // work, instead of depending on whether the periodic in-search check
    // (every 4096 states) ever fires.
    if deadline.is_some_and(|deadline| Instant::now() >= deadline) {
        run.timed_out = true;
        run.match_seconds = match_start.elapsed().as_secs_f64();
        return run;
    }
    let state = ctx.new_state();
    let np = ctx.num_positions();
    let mut driver = SearchDriver {
        ctx,
        state,
        candidate_buffers: vec![Vec::new(); np],
        states: 0,
        matches: 0,
        deadline,
        timed_out: false,
        max_matches: limits.max_matches,
        cancel: limits.cancel.as_deref(),
        cancelled: false,
        count_only: limits.count_only,
        visitor: |ctx: &SearchContext<'_>, state: &WorkerState| visitor(ctx, state),
    };
    driver.search(0);

    run.matches = driver.matches;
    run.states = driver.states;
    run.timed_out = driver.timed_out;
    run.cancelled = driver.cancelled;
    run.limit_hit = limits
        .max_matches
        .is_some_and(|limit| driver.matches >= limit);
    run.match_seconds = match_start.elapsed().as_secs_f64();
    run
}

/// Enumerates all subgraphs of `target` isomorphic to `pattern` and invokes
/// `visitor` for every match.
///
/// Thin shim over [`SearchContext::prepare`] + [`search_prepared`]; callers
/// that run the same instance repeatedly should prepare once and call
/// [`search_prepared`] (or use `sge::Engine`) to amortize preprocessing.
pub fn enumerate_with<F>(
    pattern: &Graph,
    target: &Graph,
    config: &MatchConfig,
    visitor: F,
) -> MatchResult
where
    F: FnMut(&SearchContext<'_>, &WorkerState),
{
    let mut timer = PhaseTimer::new();
    let ctx = timer.time("preprocess", || {
        SearchContext::prepare(pattern, target, config.algorithm)
    });
    let run = search_prepared(&ctx, &config.limits(), visitor);
    MatchResult {
        algorithm: config.algorithm,
        matches: run.matches,
        states: run.states,
        preprocess_seconds: timer.seconds("preprocess"),
        match_seconds: run.match_seconds,
        timed_out: run.timed_out,
        mappings: Vec::new(),
    }
}

/// Enumerates all subgraphs of `target` isomorphic to `pattern`, optionally
/// collecting mappings (see [`MatchConfig::with_collected_mappings`]).
pub fn enumerate(pattern: &Graph, target: &Graph, config: &MatchConfig) -> MatchResult {
    let mut collected: Vec<Vec<NodeId>> = Vec::new();
    let limit = config.collect_limit;
    let mut result = enumerate_with(pattern, target, config, |ctx, state| {
        if collected.len() < limit {
            collected.push(ctx.mapping_by_pattern_node(state));
        }
    });
    result.mappings = collected;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::{generators, GraphBuilder};

    fn count(pattern: &Graph, target: &Graph, algorithm: Algorithm) -> u64 {
        enumerate(pattern, target, &MatchConfig::new(algorithm)).matches
    }

    #[test]
    fn directed_edge_in_clique() {
        // K4 with symmetric directed edges: every ordered pair is an embedding
        // of a single directed edge.
        let pattern = generators::directed_path(2, 0);
        let target = generators::clique(4, 0);
        for algo in Algorithm::ALL {
            assert_eq!(count(&pattern, &target, algo), 12, "{algo}");
        }
    }

    #[test]
    fn triangle_in_clique() {
        // Directed 3-cycles in K4: choose 3 of 4 vertices (4 ways), each
        // triangle hosts 3! = 6 cyclic node assignments (both rotations of both
        // orientations exist since edges are symmetric).
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(4, 0);
        for algo in Algorithm::ALL {
            assert_eq!(count(&pattern, &target, algo), 24, "{algo}");
        }
    }

    #[test]
    fn path_in_path() {
        let pattern = generators::directed_path(3, 0);
        let target = generators::directed_path(6, 0);
        for algo in Algorithm::ALL {
            assert_eq!(count(&pattern, &target, algo), 4, "{algo}");
        }
    }

    #[test]
    fn labels_restrict_matches() {
        let pattern = generators::labeled_triangle(1, 2, 3);
        // Target contains two labeled triangles, one with matching labels, one
        // rotated (labels 2,3,1 — which is the same cyclic labeling, so it also
        // matches with a rotated mapping) and one with a wrong label set.
        let mut tb = GraphBuilder::new();
        let a = tb.add_node(1);
        let b = tb.add_node(2);
        let c = tb.add_node(3);
        tb.add_edge(a, b, 0);
        tb.add_edge(b, c, 0);
        tb.add_edge(c, a, 0);
        let d = tb.add_node(1);
        let e = tb.add_node(2);
        let f = tb.add_node(2);
        tb.add_edge(d, e, 0);
        tb.add_edge(e, f, 0);
        tb.add_edge(f, d, 0);
        let target = tb.build();
        for algo in Algorithm::ALL {
            assert_eq!(count(&pattern, &target, algo), 1, "{algo}");
        }
    }

    #[test]
    fn edge_labels_must_match() {
        let mut pb = GraphBuilder::new();
        let p0 = pb.add_node(0);
        let p1 = pb.add_node(0);
        pb.add_edge(p0, p1, 7);
        let pattern = pb.build();

        let mut tb = GraphBuilder::new();
        let t0 = tb.add_node(0);
        let t1 = tb.add_node(0);
        let t2 = tb.add_node(0);
        tb.add_edge(t0, t1, 7);
        tb.add_edge(t1, t2, 8);
        let target = tb.build();
        for algo in Algorithm::ALL {
            assert_eq!(count(&pattern, &target, algo), 1, "{algo}");
        }
    }

    #[test]
    fn no_match_when_pattern_too_large() {
        let pattern = generators::clique(5, 0);
        let target = generators::clique(4, 0);
        for algo in Algorithm::ALL {
            assert_eq!(count(&pattern, &target, algo), 0, "{algo}");
        }
    }

    #[test]
    fn empty_pattern_has_one_embedding() {
        let pattern = GraphBuilder::new().build();
        let target = generators::clique(3, 0);
        for algo in Algorithm::ALL {
            assert_eq!(count(&pattern, &target, algo), 1, "{algo}");
        }
    }

    #[test]
    fn zero_match_instance_with_wrong_labels() {
        let mut pb = GraphBuilder::new();
        pb.add_node(99);
        let pattern = pb.build();
        let target = generators::clique(6, 0);
        for algo in Algorithm::ALL {
            assert_eq!(count(&pattern, &target, algo), 0, "{algo}");
        }
    }

    #[test]
    fn disconnected_pattern_counts_ordered_pairs() {
        // Two isolated pattern nodes in a 4-node edgeless target: 4*3 = 12
        // injective assignments.
        let mut pb = GraphBuilder::new();
        pb.add_nodes(2, 0);
        let pattern = pb.build();
        let mut tb = GraphBuilder::new();
        tb.add_nodes(4, 0);
        let target = tb.build();
        for algo in Algorithm::ALL {
            assert_eq!(count(&pattern, &target, algo), 12, "{algo}");
        }
    }

    #[test]
    fn max_matches_truncates_enumeration() {
        let pattern = generators::directed_path(2, 0);
        let target = generators::clique(6, 0);
        let config = MatchConfig::new(Algorithm::Ri).with_max_matches(5);
        let result = enumerate(&pattern, &target, &config);
        assert_eq!(result.matches, 5);
    }

    #[test]
    fn collected_mappings_are_valid_embeddings() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(4, 0);
        let config = MatchConfig::new(Algorithm::RiDsSiFc).with_collected_mappings(10);
        let result = enumerate(&pattern, &target, &config);
        assert_eq!(result.mappings.len(), 10);
        for mapping in &result.mappings {
            assert_eq!(mapping.len(), pattern.num_nodes());
            // Injective.
            let mut sorted = mapping.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), mapping.len());
            // Edge-preserving.
            for (u, v, l) in pattern.edges() {
                assert_eq!(
                    target.edge_label(mapping[u as usize], mapping[v as usize]),
                    Some(l)
                );
            }
        }
    }

    #[test]
    fn search_space_is_reported_and_nonzero() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(5, 0);
        let result = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::Ri));
        assert!(result.states > 0);
        assert!(result.total_seconds() >= 0.0);
        assert!(result.states_per_second() >= 0.0);
        assert!(!result.timed_out);
    }

    #[test]
    fn domain_variants_never_visit_more_states_than_ri_ds() {
        // The SI/FC improvements only prune; on a fixed instance their search
        // space must not exceed RI-DS's.
        let pattern = generators::undirected_cycle(4, 0);
        let target = generators::grid(4, 4);
        let ds = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::RiDs));
        let si = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::RiDsSi));
        let fc = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::RiDsSiFc));
        assert_eq!(ds.matches, si.matches);
        assert_eq!(ds.matches, fc.matches);
        assert!(
            fc.states <= ds.states.max(si.states) * 2,
            "FC should not blow up the search space"
        );
    }

    #[test]
    fn timeout_flag_set_for_tiny_deadline() {
        // A 6-cycle in a 6x6 grid is enough work that a zero time limit fires.
        let pattern = generators::undirected_cycle(6, 0);
        let target = generators::grid(6, 6);
        let config = MatchConfig::new(Algorithm::Ri).with_time_limit(Duration::from_nanos(1));
        let result = enumerate(&pattern, &target, &config);
        assert!(result.timed_out || result.match_seconds < 0.05);
    }

    #[test]
    fn cancel_token_stops_the_search_early() {
        let pattern = generators::directed_path(2, 0);
        let target = generators::clique(12, 0); // 132 embeddings
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let cancel = Arc::new(CancelToken::new());
        let limits = SearchLimits {
            cancel: Some(Arc::clone(&cancel)),
            ..SearchLimits::default()
        };
        let mut seen = 0u64;
        let run = search_prepared(&ctx, &limits, |_, _| {
            seen += 1;
            if seen == 3 {
                cancel.cancel();
            }
        });
        assert!(run.cancelled);
        assert_eq!(run.matches, 3, "the search stops at the next state");
        assert!(!run.timed_out);
        assert!(!run.limit_hit);
        // A token that never fires changes nothing.
        let untouched = SearchLimits {
            cancel: Some(Arc::new(CancelToken::new())),
            ..SearchLimits::default()
        };
        let full = search_prepared(&ctx, &untouched, |_, _| {});
        assert!(!full.cancelled);
        assert_eq!(full.matches, 132);
    }

    #[test]
    fn single_node_pattern_counts_label_occurrences() {
        let mut pb = GraphBuilder::new();
        pb.add_node(3);
        let pattern = pb.build();
        let mut tb = GraphBuilder::new();
        tb.add_node(3);
        tb.add_node(3);
        tb.add_node(4);
        let target = tb.build();
        for algo in Algorithm::ALL {
            assert_eq!(count(&pattern, &target, algo), 2, "{algo}");
        }
    }
}

//! Shared search machinery: candidate generation and consistency checking.
//!
//! Both the sequential matcher ([`crate::matcher`]) and the parallel runtime
//! (`sge-parallel`) drive the same [`SearchContext`], so they explore exactly
//! the same state-space tree.  A *state* in the paper's terminology is a
//! `(position, candidate target node)` pair for which a consistency check is
//! performed; the caller counts those.
//!
//! A context *executes* a [`QueryPlan`] produced by `sge-plan`: the plan
//! fixes the match order, the back-edge constraint sets and the domains; the
//! context adds the target-graph machinery (adjacency intersection,
//! consistency checks).  [`SearchContext::prepare`] plans with the default
//! RI-greedy strategy; [`SearchContext::prepare_planned`] accepts any
//! [`sge_plan::Strategy`].
//!
//! [`WorkerState`] is the per-worker mutable part: the partial mapping `M`
//! (target node per ordered position) and the injectivity flags.  In the
//! parallel runtime it is private to a worker and *never copied for private
//! tasks*; only when a task is stolen does the prefix of `M` travel to the
//! thief (Section 3 of the paper).

use crate::kernels::{self, GallopRoute, KernelCells, KernelUsage};
use crate::matcher::Algorithm;
use sge_graph::{AdjacencyBitmaps, BitmapConfig, EdgeRef, Graph, GraphStats, NodeId};
use sge_obs::TraceSink;
use sge_plan::ordering::{KernelChoice, MatchOrder, PlanStep, PrefilterSpec};
use sge_plan::{Domains, PlanCost, Planner, QueryPlan, Strategy};
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    /// Per-thread word buffer for the bitmap kernel's row AND accumulation.
    /// Thread-local so parallel workers sharing one [`SearchContext`] never
    /// contend, and reused across candidate fills so the hot path does not
    /// allocate.
    static BITMAP_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// How raw candidates are generated for positions with ordered neighbors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CandidateMode {
    /// Multi-parent intersection (the default): candidates are the galloping
    /// intersection of the adjacency lists of *every* already-mapped pattern
    /// neighbor (smallest adjacency first), filtered through the RI-DS domain
    /// bitset.  Edges back into the prefix are then guaranteed by
    /// construction, so [`SearchContext::is_consistent`] skips its per-edge
    /// probe loop.
    #[default]
    Intersection,
    /// The legacy scheme: candidates come from a *single* parent's adjacency
    /// list and every remaining back-edge is re-verified per candidate with a
    /// binary-searched `edge_label` probe.  Kept as a comparator for property
    /// tests and the bench harness.
    SingleParent,
}

impl std::fmt::Display for CandidateMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CandidateMode::Intersection => "intersection",
            CandidateMode::SingleParent => "single-parent",
        })
    }
}

impl std::str::FromStr for CandidateMode {
    type Err = String;

    /// Parses `intersection` / `single-parent` (case-insensitive, `_` and
    /// `-` interchangeable).
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        match text.to_ascii_lowercase().replace('_', "-").as_str() {
            "intersection" => Ok(CandidateMode::Intersection),
            "single-parent" => Ok(CandidateMode::SingleParent),
            other => Err(format!(
                "unknown candidate mode '{other}' (expected intersection or single-parent)"
            )),
        }
    }
}

/// Read-only description of one enumeration instance: pattern, target and
/// the [`QueryPlan`] being executed (ordering, domains, cost estimates).
///
/// Domains are held behind an [`Arc`] inside the plan so that prepared
/// What the last-depth counting fast path would contribute: every set bit
/// of the final AND is a visited state, and the non-used ones are matches.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FinalCount {
    /// States the enumerating path would have visited at this depth.
    pub states: u64,
    /// Matches among them (states minus injectivity rejections).
    pub matches: u64,
}

/// instances can be rebuilt against long-lived owned graphs (see
/// [`PreparedParts`]) without re-running or copying the domain computation.
pub struct SearchContext<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    plan: QueryPlan,
    /// Candidate generation scheme (intersection by default).
    mode: CandidateMode,
    /// Optional per-run observation sink.  When attached, candidate
    /// generation and consistency checks record per-position counters; when
    /// absent the cost is one predictable branch per call.
    sink: Option<Arc<TraceSink>>,
    /// Optional dense-adjacency bitmap sidecar of the target.  Required for
    /// the bitmap kernel and the candidate prefilter; when absent every
    /// position gallops over CSR and no candidates are prefiltered.
    bitmaps: Option<Arc<AdjacencyBitmaps>>,
    /// Shared kernel-invocation counters (always on; workers accumulate
    /// locally per candidate fill and flush a handful of relaxed adds).
    kernels: Arc<KernelCells>,
}

impl<'a> SearchContext<'a> {
    /// Runs the preprocessing phase of `algorithm` (domain computation, forward
    /// checking, node ordering) and returns a ready-to-search context using
    /// the default intersection-based candidate generator and RI-greedy
    /// ordering strategy.
    pub fn prepare(pattern: &'a Graph, target: &'a Graph, algorithm: Algorithm) -> Self {
        Self::prepare_with_mode(pattern, target, algorithm, CandidateMode::default())
    }

    /// [`Self::prepare`] with an explicit [`CandidateMode`] — the entry point
    /// for A/B comparisons between the intersection and single-parent paths.
    pub fn prepare_with_mode(
        pattern: &'a Graph,
        target: &'a Graph,
        algorithm: Algorithm,
        mode: CandidateMode,
    ) -> Self {
        Self::prepare_planned(pattern, target, algorithm, mode, Strategy::default())
    }

    /// Full preparation entry point: plans with `strategy` and executes
    /// under `mode`.
    pub fn prepare_planned(
        pattern: &'a Graph,
        target: &'a Graph,
        algorithm: Algorithm,
        mode: CandidateMode,
        strategy: Strategy,
    ) -> Self {
        let plan = Planner::new(strategy).plan(pattern, target, algorithm);
        let mut ctx = Self::from_plan(pattern, target, plan, mode);
        ctx.ensure_bitmaps();
        ctx
    }

    /// [`Self::prepare_planned`] with precomputed target statistics —
    /// callers that prepare many patterns against one long-lived target
    /// (the serving registry) compute [`GraphStats`] once instead of paying
    /// the full-target frequency pass per preparation.
    pub fn prepare_planned_with_stats(
        pattern: &'a Graph,
        target: &'a Graph,
        target_stats: &GraphStats,
        algorithm: Algorithm,
        mode: CandidateMode,
        strategy: Strategy,
    ) -> Self {
        let plan = Planner::new(strategy).plan_with_stats(pattern, target, target_stats, algorithm);
        let mut ctx = Self::from_plan(pattern, target, plan, mode);
        ctx.ensure_bitmaps();
        ctx
    }

    /// [`Self::prepare_planned_with_stats`] with an explicitly supplied
    /// bitmap sidecar — the serving path, where the registry owns one
    /// sidecar per long-lived target.
    ///
    /// The caller's decision is final: `None` means "no sidecar" (e.g. the
    /// registry hit its memory cap and fell back to CSR-only) and the
    /// context will *not* build one itself, unlike
    /// [`Self::prepare_planned`]/[`Self::prepare_planned_with_stats`] which
    /// auto-build when the plan routes a position to the bitmap kernel.
    pub fn prepare_planned_full(
        pattern: &'a Graph,
        target: &'a Graph,
        target_stats: &GraphStats,
        bitmaps: Option<Arc<AdjacencyBitmaps>>,
        algorithm: Algorithm,
        mode: CandidateMode,
        strategy: Strategy,
    ) -> Self {
        let plan = Planner::new(strategy).plan_with_stats(pattern, target, target_stats, algorithm);
        let mut ctx = Self::from_plan(pattern, target, plan, mode);
        ctx.bitmaps = bitmaps;
        ctx
    }

    /// Wraps an externally produced [`QueryPlan`].
    ///
    /// The graphs must be the ones the plan was built from (or structurally
    /// identical copies); the ordering and domains reference their node ids
    /// directly.
    pub fn from_plan(
        pattern: &'a Graph,
        target: &'a Graph,
        plan: QueryPlan,
        mode: CandidateMode,
    ) -> Self {
        SearchContext {
            pattern,
            target,
            plan,
            mode,
            sink: None,
            bitmaps: None,
            kernels: Arc::new(KernelCells::default()),
        }
    }

    /// Attaches (or detaches, with `None`) a target bitmap sidecar.
    ///
    /// The sidecar must describe this context's target graph.  Steps routed
    /// to the bitmap kernel fall back to galloping whenever the sidecar (or
    /// a specific row) is missing, so detaching is always safe.
    pub fn set_bitmaps(&mut self, bitmaps: Option<Arc<AdjacencyBitmaps>>) {
        self.bitmaps = bitmaps;
    }

    /// The attached bitmap sidecar, if any.
    pub fn bitmaps(&self) -> Option<&Arc<AdjacencyBitmaps>> {
        self.bitmaps.as_ref()
    }

    /// Builds and attaches a default-configuration sidecar when the plan
    /// routes at least one position to the bitmap kernel and no sidecar is
    /// attached yet.  One-shot enumeration pays the build during its
    /// preprocessing phase; serving callers attach the registry's shared
    /// sidecar instead (see [`Self::prepare_planned_full`]).
    pub fn ensure_bitmaps(&mut self) {
        if self.bitmaps.is_none() && self.plan_wants_bitmaps() {
            self.bitmaps = Some(Arc::new(AdjacencyBitmaps::build(
                self.target,
                &BitmapConfig::default(),
            )));
        }
    }

    fn plan_wants_bitmaps(&self) -> bool {
        self.plan
            .order
            .plan
            .steps
            .iter()
            .any(|s| s.kernel == KernelChoice::Bitmap)
    }

    /// Snapshot of the kernel-invocation counters accumulated through this
    /// context so far (across all workers).
    pub fn kernel_totals(&self) -> KernelUsage {
        self.kernels.snapshot()
    }

    /// Attaches a [`TraceSink`]: from now on every candidate list generated
    /// and every consistency check performed through this context is
    /// recorded per position.  All schedulers drive the same context, so the
    /// recorded totals are schedule-invariant on complete runs.
    pub fn set_trace_sink(&mut self, sink: Arc<TraceSink>) {
        self.sink = Some(sink);
    }

    /// The attached trace sink, if any.
    pub fn trace_sink(&self) -> Option<&Arc<TraceSink>> {
        self.sink.as_ref()
    }

    /// Builds a context from explicitly prepared parts (used by tests and by
    /// callers that want to reuse a domain computation).
    ///
    /// The caller supplies the order, so the resulting plan carries **no
    /// meaningful strategy label** (it reports the default) and an empty
    /// cost estimate; use [`Self::prepare_planned`] when the strategy field
    /// matters (outcome reporting, EXPLAIN, cache keys).
    pub fn from_parts(
        pattern: &'a Graph,
        target: &'a Graph,
        algorithm: Algorithm,
        order: MatchOrder,
        domains: Option<Domains>,
        check_degrees: bool,
    ) -> Self {
        let impossible = domains.as_ref().is_some_and(|d| d.any_empty());
        let plan = QueryPlan {
            algorithm,
            strategy: Strategy::default(),
            order,
            domains: domains.map(Arc::new),
            impossible,
            check_degrees,
            cost: PlanCost::default(),
            root_filter: None,
        };
        Self::from_plan(pattern, target, plan, CandidateMode::default())
    }

    /// The candidate generation scheme this context uses.
    pub fn candidate_mode(&self) -> CandidateMode {
        self.mode
    }

    /// The pattern graph.
    pub fn pattern(&self) -> &Graph {
        self.pattern
    }

    /// The algorithm variant this context was prepared for.
    pub fn algorithm(&self) -> Algorithm {
        self.plan.algorithm
    }

    /// The target graph.
    pub fn target(&self) -> &Graph {
        self.target
    }

    /// The full query plan this context executes.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The ordering strategy that planned this context.
    pub fn strategy(&self) -> Strategy {
        self.plan.strategy
    }

    /// The static node ordering.
    pub fn order(&self) -> &MatchOrder {
        &self.plan.order
    }

    /// The domains, when the algorithm uses them.
    pub fn domains(&self) -> Option<&Domains> {
        self.plan.domains.as_deref()
    }

    /// Number of positions to fill (= pattern nodes).
    pub fn num_positions(&self) -> usize {
        self.plan.order.len()
    }

    /// `true` when preprocessing proved there are no matches; the search can be
    /// skipped entirely.
    pub fn impossible(&self) -> bool {
        self.plan.impossible || self.pattern.num_nodes() > self.target.num_nodes()
    }

    /// Creates a fresh per-worker state.
    pub fn new_state(&self) -> WorkerState {
        WorkerState {
            mapping: vec![NodeId::MAX; self.num_positions()],
            used: vec![false; self.target.num_nodes()],
        }
    }

    /// Raw candidate target nodes for position `depth`, given the current
    /// partial state (all referenced parents' images must already be assigned).
    ///
    /// * positions with ordered neighbors: under the default
    ///   [`CandidateMode::Intersection`], the sorted intersection of the
    ///   adjacency lists of *every* already-mapped pattern neighbor (starting
    ///   from the smallest list, galloping through the others), filtered
    ///   through the RI-DS domain bitset; under
    ///   [`CandidateMode::SingleParent`], the out-/in-neighbors of the single
    ///   parent's image,
    /// * parentless positions with domains (RI-DS): the domain members,
    /// * parentless positions without domains (RI): every target node.
    ///
    /// Candidates are *raw*: they still need [`Self::is_consistent`].
    pub fn candidates(&self, depth: usize, state: &WorkerState, out: &mut Vec<NodeId>) {
        self.fill_candidates(depth, state, out);
        if let Some(sink) = &self.sink {
            sink.record_candidates(depth, out.len() as u64);
        }
    }

    fn fill_candidates(&self, depth: usize, state: &WorkerState, out: &mut Vec<NodeId>) {
        out.clear();
        let step = &self.plan.order.plan.steps[depth];
        let mut local = KernelUsage::default();
        if step.constraints.is_empty() {
            let vp = self.plan.order.positions[depth];
            match &self.plan.domains {
                Some(domains) => {
                    out.extend(domains.set(vp).iter().map(|v| v as NodeId));
                }
                None => out.extend(0..self.target.num_nodes() as NodeId),
            }
            if let Some((maps, spec)) = self.active_prefilter(step) {
                let before = out.len();
                out.retain(|&v| prefilter_pass(maps, spec, self.target, v));
                local.prefilter_rejected += (before - out.len()) as u64;
                self.kernels.flush(local);
            }
            // Shard-ownership restriction: only the plan root (position 0)
            // is filtered, so deeper parentless positions — which rooted
            // plans never produce on connected patterns — stay unrestricted.
            if depth == 0 {
                if let Some(filter) = &self.plan.root_filter {
                    out.retain(|&v| filter.contains(v as usize));
                }
            }
            return;
        }
        match self.mode {
            CandidateMode::SingleParent => {
                let link =
                    self.plan.order.parents[depth].expect("constrained position has a parent");
                let parent_image = state.mapping[link.parent_pos];
                debug_assert_ne!(parent_image, NodeId::MAX, "parent must be assigned");
                let edges = if link.out_from_parent {
                    self.target.out_edges(parent_image)
                } else {
                    self.target.in_edges(parent_image)
                };
                out.extend(edges.iter().map(|e| e.node));
            }
            CandidateMode::Intersection => {
                let vp = self.plan.order.positions[depth];
                self.intersect_candidates(vp, step, state, out, &mut local);
                self.kernels.flush(local);
            }
        }
    }

    /// The prefilter to apply at a position: present only when a sidecar is
    /// attached (signatures live there) and the spec can reject anything.
    #[inline]
    fn active_prefilter<'s>(
        &'s self,
        step: &'s PlanStep,
    ) -> Option<(&'s AdjacencyBitmaps, &'s PrefilterSpec)> {
        let maps = self.bitmaps.as_deref()?;
        if step.prefilter.is_trivial() {
            return None;
        }
        Some((maps, &step.prefilter))
    }

    /// The adjacency list a constraint selects for the current state.
    #[inline]
    fn constraint_adjacency(
        &self,
        c: &sge_plan::EdgeConstraint,
        state: &WorkerState,
    ) -> &[EdgeRef] {
        let image = state.mapping[c.parent_pos];
        debug_assert_ne!(image, NodeId::MAX, "constraint parent must be assigned");
        if c.out_from_parent {
            self.target.out_edges(image)
        } else {
            self.target.in_edges(image)
        }
    }

    /// Multi-parent candidate generation, dispatched on the planner's
    /// [`KernelChoice`] for the step.
    ///
    /// The bitmap path ANDs the constraint rows of the target's sidecar
    /// word-by-word (plus the domain bitset) and runs only when every
    /// constraint has a row; otherwise — and always under
    /// [`KernelChoice::Gallop`] — the CSR path seeds `out` from the smallest
    /// adjacency list among the constraints (filtered by edge label, domain /
    /// node-label membership and the prefilter), then intersects with each
    /// remaining list through the width-bucketed
    /// [`kernels::intersect_gallop`].  Both paths produce byte-identical
    /// candidate sets (see the kernel parity suites).
    fn intersect_candidates(
        &self,
        vp: NodeId,
        step: &PlanStep,
        state: &WorkerState,
        out: &mut Vec<NodeId>,
        local: &mut KernelUsage,
    ) {
        if step.kernel == KernelChoice::Bitmap
            && self.bitmap_candidates(vp, step, state, out, local)
        {
            return;
        }
        // Seed from the smallest adjacency list (smallest-degree-first); every
        // adjacency list is sorted by node id, so the buffer stays sorted
        // through all intersections.
        let mut seed = 0;
        let mut seed_len = usize::MAX;
        for (i, c) in step.constraints.iter().enumerate() {
            let len = self.constraint_adjacency(c, state).len();
            if len < seed_len {
                seed_len = len;
                seed = i;
            }
        }
        // The seed fill also applies the domain (or node-label) filter and
        // the prefilter, so later intersections gallop over the smallest
        // possible buffer and `is_consistent` need not re-test membership.
        let c0 = &step.constraints[seed];
        let adj0 = self.constraint_adjacency(c0, state);
        let prefilter = self.active_prefilter(step);
        let passes = |v: NodeId, local: &mut KernelUsage| match prefilter {
            Some((maps, spec)) => {
                let pass = prefilter_pass(maps, spec, self.target, v);
                local.prefilter_rejected += !pass as u64;
                pass
            }
            None => true,
        };
        match &self.plan.domains {
            Some(domains) => {
                for e in adj0 {
                    if e.label == c0.label && domains.contains(vp, e.node) && passes(e.node, local)
                    {
                        out.push(e.node);
                    }
                }
            }
            None => {
                let label = self.pattern.label(vp);
                for e in adj0 {
                    if e.label == c0.label
                        && self.target.label(e.node) == label
                        && passes(e.node, local)
                    {
                        out.push(e.node);
                    }
                }
            }
        }
        for (i, c) in step.constraints.iter().enumerate() {
            if i == seed {
                continue;
            }
            if out.is_empty() {
                return;
            }
            match kernels::intersect_gallop(out, self.constraint_adjacency(c, state), c.label) {
                GallopRoute::Merge => local.merge += 1,
                GallopRoute::Gallop | GallopRoute::GallopSwapped => local.gallop += 1,
            }
        }
    }

    /// The bitmap row a constraint selects for the current state, if built.
    #[inline]
    fn constraint_row<'m>(
        &self,
        maps: &'m AdjacencyBitmaps,
        c: &sge_plan::EdgeConstraint,
        state: &WorkerState,
    ) -> Option<&'m [u64]> {
        let image = state.mapping[c.parent_pos];
        debug_assert_ne!(image, NodeId::MAX, "constraint parent must be assigned");
        if c.out_from_parent {
            maps.out_row(image, c.label)
        } else {
            maps.in_row(image, c.label)
        }
    }

    /// Bitmap-kernel candidate generation: word-wise AND of every
    /// constraint's sidecar row and the domain bitset, then a single pass
    /// over the set bits (label check when domains are absent, plus the
    /// prefilter).  Returns `false` — leaving `out` empty — when the sidecar
    /// or any row is missing, in which case the caller gallops over CSR.
    fn bitmap_candidates(
        &self,
        vp: NodeId,
        step: &PlanStep,
        state: &WorkerState,
        out: &mut Vec<NodeId>,
        local: &mut KernelUsage,
    ) -> bool {
        let Some(maps) = self.bitmaps.as_deref() else {
            return false;
        };
        let words = maps.words_per_row();
        if words == 0 {
            return false;
        }
        // Every constraint needs a row; lookups are cheap binary searches,
        // so verify all of them before touching the scratch buffer.
        for c in &step.constraints {
            if self.constraint_row(maps, c, state).is_none() {
                return false;
            }
        }
        BITMAP_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.clear();
            scratch.resize(words, 0u64);
            let mut first = true;
            for c in &step.constraints {
                let row = self
                    .constraint_row(maps, c, state)
                    .expect("row presence checked above");
                if first {
                    scratch.copy_from_slice(row);
                    first = false;
                } else {
                    kernels::and_rows(&mut scratch, row);
                }
                local.bitmap += 1;
            }
            if let Some(domains) = &self.plan.domains {
                kernels::and_rows(&mut scratch, domains.set(vp).words());
            }
            let check_label = self.plan.domains.is_none();
            let label = self.pattern.label(vp);
            let prefilter = self.active_prefilter(step);
            for (w, &word) in scratch.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let v = (w * 64 + bits.trailing_zeros() as usize) as NodeId;
                    bits &= bits - 1;
                    if check_label && self.target.label(v) != label {
                        continue;
                    }
                    if let Some((maps, spec)) = prefilter {
                        if !prefilter_pass(maps, spec, self.target, v) {
                            local.prefilter_rejected += 1;
                            continue;
                        }
                    }
                    out.push(v);
                }
            }
        });
        true
    }

    /// Last-depth counting fast path: the number of states and matches the
    /// final position would contribute, computed straight off the bitmap
    /// words without materializing candidates.
    ///
    /// At the last depth every pattern edge of the position's node points
    /// back into the mapped prefix, so a candidate surviving the
    /// constraint-row AND (plus the domain bitset) provably passes every
    /// remaining per-candidate check except injectivity:
    ///
    /// * domain membership already covers the node label, and the
    ///   prefilter's degree / signature minimums are implied by the
    ///   satisfied back-edges (one distinct neighbor per pattern edge), so
    ///   `prefilter_rejected` stays untouched — exactly like enumerating;
    /// * `check_degrees` holds for the same reason;
    /// * self-loops are excluded by construction (they return `None`).
    ///
    /// The counts are therefore byte-identical to the enumerating path:
    /// `states` is the popcount of the AND (every set bit would have been a
    /// generated candidate), and `matches` subtracts the already-used
    /// targets whose bits survived (each would have been visited and
    /// rejected by the injectivity check).  The kernel counters advance by
    /// one bitmap AND per constraint row, as in [`Self::candidates`].
    ///
    /// Returns `None` whenever any guarantee is missing — legacy candidate
    /// mode, no domains, no sidecar row for some constraint, a self-loop, a
    /// non-bitmap kernel, or an attached trace sink (which must observe
    /// every candidate fill and consistency check individually).
    pub(crate) fn count_final_candidates(
        &self,
        depth: usize,
        state: &WorkerState,
    ) -> Option<FinalCount> {
        debug_assert_eq!(depth + 1, self.num_positions());
        if self.mode != CandidateMode::Intersection || self.sink.is_some() {
            return None;
        }
        let step = &self.plan.order.plan.steps[depth];
        if step.kernel != KernelChoice::Bitmap
            || step.constraints.is_empty()
            || step.self_loop.is_some()
        {
            return None;
        }
        let domains = self.plan.domains.as_ref()?;
        let maps = self.bitmaps.as_deref()?;
        let words = maps.words_per_row();
        if words == 0 {
            return None;
        }
        for c in &step.constraints {
            self.constraint_row(maps, c, state)?;
        }
        let vp = self.plan.order.positions[depth];
        let count = BITMAP_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.clear();
            scratch.resize(words, 0u64);
            let mut first = true;
            for c in &step.constraints {
                let row = self
                    .constraint_row(maps, c, state)
                    .expect("row presence checked above");
                if first {
                    scratch.copy_from_slice(row);
                    first = false;
                } else {
                    kernels::and_rows(&mut scratch, row);
                }
            }
            kernels::and_rows(&mut scratch, domains.set(vp).words());
            let states: u64 = scratch.iter().map(|w| u64::from(w.count_ones())).sum();
            let used = state.mapping[..depth]
                .iter()
                .filter(|&&vt| scratch[vt as usize / 64] >> (vt % 64) & 1 == 1)
                .count() as u64;
            FinalCount {
                states,
                matches: states - used,
            }
        });
        self.kernels.flush(KernelUsage {
            bitmap: step.constraints.len() as u64,
            ..KernelUsage::default()
        });
        Some(count)
    }

    /// The gallop-side companion of [`Self::count_final_candidates`]: counts
    /// the final position's contribution from an already-generated candidate
    /// list.  The same soundness argument applies regardless of which kernel
    /// produced the list — a constrained intersection-mode candidate at the
    /// last depth satisfies every pattern edge of its node (labels and
    /// directions included), so only the injectivity check can still reject
    /// it.  Candidates are sorted ascending (both kernels emit them that
    /// way), so the used-prefix overlap is a handful of binary searches.
    ///
    /// `None` when a guarantee is missing: legacy candidate mode, a
    /// self-loop, an attached trace sink (which must observe each
    /// consistency check), or an unconstrained position whose candidates
    /// still need the label / domain test in [`Self::is_consistent`].
    pub(crate) fn final_count_from_candidates(
        &self,
        depth: usize,
        state: &WorkerState,
        candidates: &[NodeId],
    ) -> Option<FinalCount> {
        debug_assert_eq!(depth + 1, self.num_positions());
        if self.mode != CandidateMode::Intersection || self.sink.is_some() {
            return None;
        }
        let step = &self.plan.order.plan.steps[depth];
        if step.constraints.is_empty() || step.self_loop.is_some() {
            return None;
        }
        let states = candidates.len() as u64;
        let used = state.mapping[..depth]
            .iter()
            .filter(|&&vt| candidates.binary_search(&vt).is_ok())
            .count() as u64;
        Some(FinalCount {
            states,
            matches: states - used,
        })
    }

    /// Full consistency check for mapping the pattern node at `depth` onto
    /// `vt`, given the already-assigned prefix in `state`.
    ///
    /// Checks are ordered cheap → expensive, as in RI: injectivity, label (or
    /// domain membership), degrees (plain RI only), the self-loop when the
    /// pattern node carries one, and — under
    /// [`CandidateMode::SingleParent`] only — every pattern edge between this
    /// node and already-mapped pattern nodes.  Under the default intersection
    /// mode those back-edges are already guaranteed by
    /// [`Self::candidates`], so the per-edge probe loop is skipped.
    pub fn is_consistent(&self, depth: usize, vt: NodeId, state: &WorkerState) -> bool {
        if let Some(sink) = &self.sink {
            sink.record_state(depth);
        }
        let vp = self.plan.order.positions[depth];
        if state.used[vt as usize] {
            return false;
        }
        let step = &self.plan.order.plan.steps[depth];
        // Under intersection mode, constrained candidates were already pushed
        // through the domain / node-label filter by `candidates`; re-testing
        // is only needed for parentless positions and the legacy path.
        if self.mode == CandidateMode::SingleParent || step.constraints.is_empty() {
            match &self.plan.domains {
                Some(domains) => {
                    if !domains.contains(vp, vt) {
                        return false;
                    }
                }
                None => {
                    if self.pattern.label(vp) != self.target.label(vt) {
                        return false;
                    }
                }
            }
        }
        if self.plan.check_degrees
            && (self.target.out_degree(vt) < self.pattern.out_degree(vp)
                || self.target.in_degree(vt) < self.pattern.in_degree(vp))
        {
            return false;
        }
        if let Some(label) = step.self_loop {
            match self.target.edge_label(vt, vt) {
                Some(l) if l == label => {}
                _ => return false,
            }
        }
        if self.mode == CandidateMode::Intersection {
            // Back-edges (and their labels) are guaranteed by the candidate
            // intersection; nothing left to probe.
            return true;
        }
        // Legacy path: probe every edge from vp to already-mapped nodes.
        for c in &step.constraints {
            let wt = state.mapping[c.parent_pos];
            let found = if c.out_from_parent {
                self.target.edge_label(wt, vt)
            } else {
                self.target.edge_label(vt, wt)
            };
            match found {
                Some(l) if l == c.label => {}
                _ => return false,
            }
        }
        true
    }

    /// Extracts the current mapping as `pattern node -> target node`.
    pub fn mapping_by_pattern_node(&self, state: &WorkerState) -> Vec<NodeId> {
        let mut out = vec![NodeId::MAX; self.num_positions()];
        for (pos, &vt) in state.mapping.iter().enumerate() {
            let vp = self.plan.order.positions[pos];
            out[vp as usize] = vt;
        }
        out
    }
}

/// O(1) candidate feasibility test: directed-degree minimums plus the
/// Bloom-style label-signature superset tests of [`PrefilterSpec`].  A
/// failing candidate provably cannot complete to a match (its neighborhood
/// lacks a label some pattern edge requires), so rejections change state
/// counts but never the match set.
#[inline]
fn prefilter_pass(
    maps: &AdjacencyBitmaps,
    spec: &PrefilterSpec,
    target: &Graph,
    v: NodeId,
) -> bool {
    target.out_degree(v) >= spec.min_out_degree as usize
        && target.in_degree(v) >= spec.min_in_degree as usize
        && spec.out_sig & !maps.out_sig(v) == 0
        && spec.in_sig & !maps.in_sig(v) == 0
}

/// The owned outcome of preprocessing, detached from the graph borrows.
///
/// [`SearchContext`] borrows its pattern and target, which is the right shape
/// for one-shot enumeration but not for a serving system that keeps prepared
/// instances alive across queries.  `PreparedParts` captures the executed
/// [`QueryPlan`] (domains shared, not copied) and the candidate mode, so a
/// caller that *owns* the graphs can rebuild an equivalent context at any
/// time without re-running preprocessing:
///
/// ```
/// use sge_graph::generators;
/// use sge_ri::{Algorithm, PreparedParts, SearchContext};
///
/// let pattern = generators::directed_cycle(3, 0);
/// let target = generators::clique(4, 0);
/// let parts = PreparedParts::extract(&SearchContext::prepare(
///     &pattern, &target, Algorithm::RiDsSiFc,
/// ));
/// // Later, against the same (now possibly heap-owned) graphs:
/// let ctx = parts.context(&pattern, &target);
/// assert_eq!(ctx.algorithm(), Algorithm::RiDsSiFc);
/// ```
#[derive(Clone)]
pub struct PreparedParts {
    plan: QueryPlan,
    mode: CandidateMode,
    bitmaps: Option<Arc<AdjacencyBitmaps>>,
}

impl PreparedParts {
    /// Captures the prepared artifacts of `ctx` (domains and the bitmap
    /// sidecar are shared via [`Arc`], the ordering — including its
    /// [`sge_plan::CandidatePlan`] — is cloned, and the candidate mode
    /// travels along).
    pub fn extract(ctx: &SearchContext<'_>) -> Self {
        PreparedParts {
            plan: ctx.plan.clone(),
            mode: ctx.mode,
            bitmaps: ctx.bitmaps.clone(),
        }
    }

    /// Rebuilds a ready-to-search context against `pattern` and `target`.
    ///
    /// The graphs must be the ones this instance was prepared from (or
    /// structurally identical copies); the ordering and domains reference
    /// their node ids directly.
    pub fn context<'a>(&self, pattern: &'a Graph, target: &'a Graph) -> SearchContext<'a> {
        let mut ctx = SearchContext::from_plan(pattern, target, self.plan.clone(), self.mode);
        ctx.bitmaps = self.bitmaps.clone();
        ctx
    }

    /// The captured bitmap sidecar, if one was attached at preparation time.
    pub fn bitmaps(&self) -> Option<&Arc<AdjacencyBitmaps>> {
        self.bitmaps.as_ref()
    }

    /// The algorithm these parts were prepared for.
    pub fn algorithm(&self) -> Algorithm {
        self.plan.algorithm
    }

    /// The ordering strategy that planned these parts.
    pub fn strategy(&self) -> Strategy {
        self.plan.strategy
    }

    /// The candidate generation scheme these parts execute under.
    pub fn candidate_mode(&self) -> CandidateMode {
        self.mode
    }

    /// The captured query plan (order, domains, cost estimates).
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// `true` when preprocessing already proved there are no matches.
    pub fn impossible(&self) -> bool {
        self.plan.impossible
    }
}

/// Mutable per-worker search state: the partial mapping (indexed by ordered
/// position) and the injectivity flags over target nodes.
#[derive(Clone, Debug)]
pub struct WorkerState {
    mapping: Vec<NodeId>,
    used: Vec<bool>,
}

impl WorkerState {
    /// Assigns `vt` to position `depth`.
    #[inline]
    pub fn assign(&mut self, depth: usize, vt: NodeId) {
        debug_assert!(!self.used[vt as usize], "target node already used");
        self.mapping[depth] = vt;
        self.used[vt as usize] = true;
    }

    /// Undoes the assignment at `depth`.
    #[inline]
    pub fn unassign(&mut self, depth: usize) {
        let vt = self.mapping[depth];
        if vt != NodeId::MAX {
            self.used[vt as usize] = false;
            self.mapping[depth] = NodeId::MAX;
        }
    }

    /// The target node assigned at `depth` (`NodeId::MAX` when unassigned).
    #[inline]
    pub fn assigned(&self, depth: usize) -> NodeId {
        self.mapping[depth]
    }

    /// The mapping prefix `[0, depth)` — what must travel with a stolen task.
    pub fn prefix(&self, depth: usize) -> Vec<NodeId> {
        self.mapping[..depth].to_vec()
    }

    /// Clears every assignment at positions `>= depth` (rewinding to an
    /// ancestor task in DFS order).
    pub fn rewind_to(&mut self, depth: usize) {
        for pos in depth..self.mapping.len() {
            self.unassign(pos);
        }
    }

    /// Replaces the whole state with the given prefix (installing a stolen
    /// task's context on the thief).
    pub fn install_prefix(&mut self, prefix: &[NodeId]) {
        self.rewind_to(0);
        for (depth, &vt) in prefix.iter().enumerate() {
            self.assign(depth, vt);
        }
    }

    /// Raw view of the mapping indexed by position.
    pub fn mapping(&self) -> &[NodeId] {
        &self.mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Algorithm;
    use sge_graph::{generators, GraphBuilder};

    #[test]
    fn candidates_from_parent_neighborhood() {
        let pattern = generators::directed_path(2, 0);
        let target = generators::star(3, 0, 0); // center 0 -> leaves 1,2,3
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let mut state = ctx.new_state();

        let mut roots = Vec::new();
        ctx.candidates(0, &state, &mut roots);
        assert_eq!(
            roots.len(),
            target.num_nodes(),
            "RI roots = all target nodes"
        );

        // Map the first pattern node onto the star center and check the child
        // candidates are exactly the center's out-neighbors.
        let first = ctx.order().positions[0];
        assert!(ctx.is_consistent(0, 0, &state));
        state.assign(0, 0);
        let mut children = Vec::new();
        ctx.candidates(1, &state, &mut children);
        let link = ctx.order().parents[1].unwrap();
        assert_eq!(link.parent_pos, 0);
        if pattern.has_edge(first, ctx.order().positions[1]) {
            assert_eq!(children, vec![1, 2, 3]);
        } else {
            assert!(children.is_empty());
        }
    }

    #[test]
    fn consistency_rejects_used_and_wrong_labels() {
        let pattern = generators::labeled_triangle(1, 2, 3);
        let mut tb = GraphBuilder::new();
        let a = tb.add_node(1);
        let b = tb.add_node(2);
        let c = tb.add_node(3);
        let d = tb.add_node(2);
        tb.add_edge(a, b, 0);
        tb.add_edge(b, c, 0);
        tb.add_edge(c, a, 0);
        tb.add_edge(a, d, 0);
        let target = tb.build();

        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let mut state = ctx.new_state();
        let pos0 = ctx.order().positions[0];
        let image0 = match pattern.label(pos0) {
            1 => a,
            2 => b,
            _ => c,
        };
        assert!(ctx.is_consistent(0, image0, &state));
        state.assign(0, image0);
        // Re-using the same target node must fail at any later depth.
        assert!(!ctx.is_consistent(1, image0, &state));
    }

    #[test]
    fn consistency_checks_edges_to_mapped_nodes() {
        // Pattern: directed edge 0 -> 1 (same labels); target: two nodes with
        // the edge the wrong way round.
        let pattern = generators::directed_path(2, 0);
        let mut tb = GraphBuilder::new();
        let t0 = tb.add_node(0);
        let t1 = tb.add_node(0);
        tb.add_edge(t1, t0, 0);
        let target = tb.build();
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let mut state = ctx.new_state();

        // Whatever the ordering, mapping both nodes must fail somewhere.
        let mut total = 0u32;
        let mut cands = Vec::new();
        ctx.candidates(0, &state, &mut cands);
        for &c0 in &cands {
            if !ctx.is_consistent(0, c0, &state) {
                continue;
            }
            state.assign(0, c0);
            let mut inner = Vec::new();
            ctx.candidates(1, &state, &mut inner);
            for &c1 in &inner {
                if ctx.is_consistent(1, c1, &state) {
                    total += 1;
                }
            }
            state.unassign(0);
        }
        assert_eq!(total, 1, "exactly one directed embedding exists");
    }

    #[test]
    fn self_loop_in_pattern_requires_self_loop_in_target() {
        let mut pb = GraphBuilder::new();
        let p = pb.add_node(0);
        pb.add_edge(p, p, 0);
        let pattern = pb.build();

        let mut tb = GraphBuilder::new();
        let t0 = tb.add_node(0);
        let t1 = tb.add_node(0);
        tb.add_edge(t0, t0, 0);
        tb.add_edge(t0, t1, 0);
        let target = tb.build();

        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let state = ctx.new_state();
        assert!(ctx.is_consistent(0, t0, &state));
        assert!(!ctx.is_consistent(0, t1, &state));
    }

    #[test]
    fn impossible_when_pattern_larger_than_target() {
        let pattern = generators::clique(4, 0);
        let target = generators::clique(3, 0);
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        assert!(ctx.impossible());
    }

    #[test]
    fn impossible_when_domain_empty() {
        let mut pb = GraphBuilder::new();
        pb.add_node(9);
        let pattern = pb.build();
        let target = generators::clique(3, 0);
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::RiDs);
        assert!(ctx.impossible());
    }

    #[test]
    fn worker_state_prefix_and_rewind() {
        let pattern = generators::directed_path(3, 0);
        let target = generators::directed_path(5, 0);
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let mut state = ctx.new_state();
        state.assign(0, 2);
        state.assign(1, 3);
        assert_eq!(state.prefix(2), vec![2, 3]);
        assert_eq!(state.assigned(1), 3);

        let mut other = ctx.new_state();
        other.install_prefix(&state.prefix(2));
        assert_eq!(other.assigned(0), 2);
        assert_eq!(other.assigned(1), 3);

        state.rewind_to(1);
        assert_eq!(state.assigned(0), 2);
        assert_eq!(state.assigned(1), NodeId::MAX);
        assert_eq!(state.prefix(1), vec![2]);
        // Target node 3 is free again: re-assigning it must not trip the
        // injectivity debug assertion.
        state.assign(1, 3);
        assert_eq!(state.assigned(1), 3);
    }

    #[test]
    fn domain_candidates_for_parentless_position() {
        // Disconnected pattern: two isolated labeled nodes; RI-DS candidates
        // for the second root come from its domain, not the whole target.
        let mut pb = GraphBuilder::new();
        pb.add_node(1);
        pb.add_node(2);
        let pattern = pb.build();
        let mut tb = GraphBuilder::new();
        tb.add_node(1);
        tb.add_node(2);
        tb.add_node(2);
        tb.add_node(3);
        let target = tb.build();

        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::RiDs);
        let state = ctx.new_state();
        let mut cands = Vec::new();
        ctx.candidates(0, &state, &mut cands);
        let vp0 = ctx.order().positions[0];
        let expected = if pattern.label(vp0) == 1 { 1 } else { 2 };
        assert_eq!(cands.len(), expected);
    }

    #[test]
    fn mapping_by_pattern_node_inverts_the_order() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::directed_cycle(3, 0);
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let mut state = ctx.new_state();
        // Assign positions 0..3 to target nodes equal to the pattern node they
        // represent (the identity embedding exists in a 3-cycle).
        for depth in 0..3 {
            let vp = ctx.order().positions[depth];
            assert!(ctx.is_consistent(depth, vp, &state));
            state.assign(depth, vp);
        }
        let by_node = ctx.mapping_by_pattern_node(&state);
        assert_eq!(by_node, vec![0, 1, 2]);
    }

    #[test]
    fn candidate_mode_parses_and_displays() {
        assert_eq!(
            "intersection".parse::<CandidateMode>().unwrap(),
            CandidateMode::Intersection
        );
        assert_eq!(
            "Single_Parent".parse::<CandidateMode>().unwrap(),
            CandidateMode::SingleParent
        );
        assert!("legacy".parse::<CandidateMode>().is_err());
        assert_eq!(CandidateMode::Intersection.to_string(), "intersection");
        assert_eq!(CandidateMode::SingleParent.to_string(), "single-parent");
    }

    #[test]
    fn prepared_parts_carry_strategy_and_plan() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(4, 0);
        let ctx = SearchContext::prepare_planned(
            &pattern,
            &target,
            Algorithm::RiDs,
            CandidateMode::SingleParent,
            Strategy::DegreeDescending,
        );
        assert_eq!(ctx.strategy(), Strategy::DegreeDescending);
        assert_eq!(ctx.plan().cost.positions.len(), 3);
        let parts = PreparedParts::extract(&ctx);
        assert_eq!(parts.strategy(), Strategy::DegreeDescending);
        assert_eq!(parts.candidate_mode(), CandidateMode::SingleParent);
        assert_eq!(parts.plan().num_positions(), 3);
        let rebuilt = parts.context(&pattern, &target);
        assert_eq!(rebuilt.order().positions, ctx.order().positions);
        assert_eq!(rebuilt.candidate_mode(), CandidateMode::SingleParent);
    }
}

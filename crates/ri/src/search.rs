//! Shared search machinery: candidate generation and consistency checking.
//!
//! Both the sequential matcher ([`crate::matcher`]) and the parallel runtime
//! (`sge-parallel`) drive the same [`SearchContext`], so they explore exactly
//! the same state-space tree.  A *state* in the paper's terminology is a
//! `(position, candidate target node)` pair for which a consistency check is
//! performed; the caller counts those.
//!
//! [`WorkerState`] is the per-worker mutable part: the partial mapping `M`
//! (target node per ordered position) and the injectivity flags.  In the
//! parallel runtime it is private to a worker and *never copied for private
//! tasks*; only when a task is stolen does the prefix of `M` travel to the
//! thief (Section 3 of the paper).

use crate::domains::Domains;
use crate::matcher::Algorithm;
use crate::ordering::{greatest_constraint_first, MatchOrder};
use sge_graph::{Graph, NodeId};
use std::sync::Arc;

/// Read-only description of one enumeration instance: pattern, target, node
/// ordering and (for the RI-DS family) domains.
///
/// Domains are held behind an [`Arc`] so that prepared instances can be
/// rebuilt against long-lived owned graphs (see [`PreparedParts`]) without
/// re-running or copying the domain computation.
pub struct SearchContext<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    algorithm: Algorithm,
    order: MatchOrder,
    domains: Option<Arc<Domains>>,
    /// `true` when the preprocessing already proved that no match exists
    /// (an empty or contradictory domain).
    impossible: bool,
    /// Plain RI checks degrees during the search; the RI-DS domains already
    /// encode the degree filter.
    check_degrees: bool,
}

impl<'a> SearchContext<'a> {
    /// Runs the preprocessing phase of `algorithm` (domain computation, forward
    /// checking, node ordering) and returns a ready-to-search context.
    pub fn prepare(pattern: &'a Graph, target: &'a Graph, algorithm: Algorithm) -> Self {
        let mut impossible = false;
        let domains = if algorithm.uses_domains() {
            let mut domains = Domains::compute(pattern, target);
            if domains.any_empty()
                || (algorithm.uses_forward_checking() && !domains.forward_check())
            {
                impossible = true;
            }
            Some(Arc::new(domains))
        } else {
            None
        };
        let order = greatest_constraint_first(
            pattern,
            domains.as_deref(),
            algorithm.uses_domain_size_tie_break(),
        );
        SearchContext {
            pattern,
            target,
            algorithm,
            order,
            domains,
            impossible,
            check_degrees: !algorithm.uses_domains(),
        }
    }

    /// Builds a context from explicitly prepared parts (used by tests and by
    /// callers that want to reuse a domain computation).
    pub fn from_parts(
        pattern: &'a Graph,
        target: &'a Graph,
        algorithm: Algorithm,
        order: MatchOrder,
        domains: Option<Domains>,
        check_degrees: bool,
    ) -> Self {
        let impossible = domains.as_ref().is_some_and(|d| d.any_empty());
        SearchContext {
            pattern,
            target,
            algorithm,
            order,
            domains: domains.map(Arc::new),
            impossible,
            check_degrees,
        }
    }

    /// The pattern graph.
    pub fn pattern(&self) -> &Graph {
        self.pattern
    }

    /// The algorithm variant this context was prepared for.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The target graph.
    pub fn target(&self) -> &Graph {
        self.target
    }

    /// The static node ordering.
    pub fn order(&self) -> &MatchOrder {
        &self.order
    }

    /// The domains, when the algorithm uses them.
    pub fn domains(&self) -> Option<&Domains> {
        self.domains.as_deref()
    }

    /// Number of positions to fill (= pattern nodes).
    pub fn num_positions(&self) -> usize {
        self.order.len()
    }

    /// `true` when preprocessing proved there are no matches; the search can be
    /// skipped entirely.
    pub fn impossible(&self) -> bool {
        self.impossible || self.pattern.num_nodes() > self.target.num_nodes()
    }

    /// Creates a fresh per-worker state.
    pub fn new_state(&self) -> WorkerState {
        WorkerState {
            mapping: vec![NodeId::MAX; self.num_positions()],
            used: vec![false; self.target.num_nodes()],
        }
    }

    /// Raw candidate target nodes for position `depth`, given the current
    /// partial state (the parent's image must already be assigned).
    ///
    /// * positions with a parent: the out-/in-neighbors of the parent's image,
    /// * parentless positions with domains (RI-DS): the domain members,
    /// * parentless positions without domains (RI): every target node.
    ///
    /// Candidates are *raw*: they still need [`Self::is_consistent`].
    pub fn candidates(&self, depth: usize, state: &WorkerState, out: &mut Vec<NodeId>) {
        out.clear();
        match self.order.parents[depth] {
            Some(link) => {
                let parent_image = state.mapping[link.parent_pos];
                debug_assert_ne!(parent_image, NodeId::MAX, "parent must be assigned");
                let edges = if link.out_from_parent {
                    self.target.out_edges(parent_image)
                } else {
                    self.target.in_edges(parent_image)
                };
                out.extend(edges.iter().map(|e| e.node));
            }
            None => match &self.domains {
                Some(domains) => {
                    let vp = self.order.positions[depth];
                    out.extend(domains.set(vp).iter().map(|v| v as NodeId));
                }
                None => out.extend(0..self.target.num_nodes() as NodeId),
            },
        }
    }

    /// Full consistency check for mapping the pattern node at `depth` onto
    /// `vt`, given the already-assigned prefix in `state`.
    ///
    /// Checks are ordered cheap → expensive, as in RI: injectivity, label (or
    /// domain membership), degrees (plain RI only), then every pattern edge
    /// between this node and already-mapped pattern nodes, including self-loops
    /// and edge-label compatibility.
    pub fn is_consistent(&self, depth: usize, vt: NodeId, state: &WorkerState) -> bool {
        let vp = self.order.positions[depth];
        if state.used[vt as usize] {
            return false;
        }
        match &self.domains {
            Some(domains) => {
                if !domains.contains(vp, vt) {
                    return false;
                }
            }
            None => {
                if self.pattern.label(vp) != self.target.label(vt) {
                    return false;
                }
            }
        }
        if self.check_degrees
            && (self.target.out_degree(vt) < self.pattern.out_degree(vp)
                || self.target.in_degree(vt) < self.pattern.in_degree(vp))
        {
            return false;
        }
        // Edges from vp to already-mapped pattern nodes (and self-loops).
        for e in self.pattern.out_edges(vp) {
            let wp = e.node;
            if wp == vp {
                match self.target.edge_label(vt, vt) {
                    Some(l) if l == e.label => {}
                    _ => return false,
                }
                continue;
            }
            let pos = self.order.position_of[wp as usize];
            if pos < depth {
                let wt = state.mapping[pos];
                match self.target.edge_label(vt, wt) {
                    Some(l) if l == e.label => {}
                    _ => return false,
                }
            }
        }
        for e in self.pattern.in_edges(vp) {
            let wp = e.node;
            if wp == vp {
                // Already handled by the out-edge loop.
                continue;
            }
            let pos = self.order.position_of[wp as usize];
            if pos < depth {
                let wt = state.mapping[pos];
                match self.target.edge_label(wt, vt) {
                    Some(l) if l == e.label => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// Extracts the current mapping as `pattern node -> target node`.
    pub fn mapping_by_pattern_node(&self, state: &WorkerState) -> Vec<NodeId> {
        let mut out = vec![NodeId::MAX; self.num_positions()];
        for (pos, &vt) in state.mapping.iter().enumerate() {
            let vp = self.order.positions[pos];
            out[vp as usize] = vt;
        }
        out
    }
}

/// The owned outcome of preprocessing, detached from the graph borrows.
///
/// [`SearchContext`] borrows its pattern and target, which is the right shape
/// for one-shot enumeration but not for a serving system that keeps prepared
/// instances alive across queries.  `PreparedParts` captures everything
/// preprocessing produced — ordering, domains (shared, not copied), and the
/// impossibility verdict — so a caller that *owns* the graphs can rebuild an
/// equivalent context at any time without re-running preprocessing:
///
/// ```
/// use sge_graph::generators;
/// use sge_ri::{Algorithm, PreparedParts, SearchContext};
///
/// let pattern = generators::directed_cycle(3, 0);
/// let target = generators::clique(4, 0);
/// let parts = PreparedParts::extract(&SearchContext::prepare(
///     &pattern, &target, Algorithm::RiDsSiFc,
/// ));
/// // Later, against the same (now possibly heap-owned) graphs:
/// let ctx = parts.context(&pattern, &target);
/// assert_eq!(ctx.algorithm(), Algorithm::RiDsSiFc);
/// ```
#[derive(Clone)]
pub struct PreparedParts {
    algorithm: Algorithm,
    order: MatchOrder,
    domains: Option<Arc<Domains>>,
    impossible: bool,
    check_degrees: bool,
}

impl PreparedParts {
    /// Captures the prepared artifacts of `ctx` (domains are shared via
    /// [`Arc`], the ordering is cloned).
    pub fn extract(ctx: &SearchContext<'_>) -> Self {
        PreparedParts {
            algorithm: ctx.algorithm,
            order: ctx.order.clone(),
            domains: ctx.domains.clone(),
            impossible: ctx.impossible,
            check_degrees: ctx.check_degrees,
        }
    }

    /// Rebuilds a ready-to-search context against `pattern` and `target`.
    ///
    /// The graphs must be the ones this instance was prepared from (or
    /// structurally identical copies); the ordering and domains reference
    /// their node ids directly.
    pub fn context<'a>(&self, pattern: &'a Graph, target: &'a Graph) -> SearchContext<'a> {
        SearchContext {
            pattern,
            target,
            algorithm: self.algorithm,
            order: self.order.clone(),
            domains: self.domains.clone(),
            impossible: self.impossible,
            check_degrees: self.check_degrees,
        }
    }

    /// The algorithm these parts were prepared for.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// `true` when preprocessing already proved there are no matches.
    pub fn impossible(&self) -> bool {
        self.impossible
    }
}

/// Mutable per-worker search state: the partial mapping (indexed by ordered
/// position) and the injectivity flags over target nodes.
#[derive(Clone, Debug)]
pub struct WorkerState {
    mapping: Vec<NodeId>,
    used: Vec<bool>,
}

impl WorkerState {
    /// Assigns `vt` to position `depth`.
    #[inline]
    pub fn assign(&mut self, depth: usize, vt: NodeId) {
        debug_assert!(!self.used[vt as usize], "target node already used");
        self.mapping[depth] = vt;
        self.used[vt as usize] = true;
    }

    /// Undoes the assignment at `depth`.
    #[inline]
    pub fn unassign(&mut self, depth: usize) {
        let vt = self.mapping[depth];
        if vt != NodeId::MAX {
            self.used[vt as usize] = false;
            self.mapping[depth] = NodeId::MAX;
        }
    }

    /// The target node assigned at `depth` (`NodeId::MAX` when unassigned).
    #[inline]
    pub fn assigned(&self, depth: usize) -> NodeId {
        self.mapping[depth]
    }

    /// The mapping prefix `[0, depth)` — what must travel with a stolen task.
    pub fn prefix(&self, depth: usize) -> Vec<NodeId> {
        self.mapping[..depth].to_vec()
    }

    /// Clears every assignment at positions `>= depth` (rewinding to an
    /// ancestor task in DFS order).
    pub fn rewind_to(&mut self, depth: usize) {
        for pos in depth..self.mapping.len() {
            self.unassign(pos);
        }
    }

    /// Replaces the whole state with the given prefix (installing a stolen
    /// task's context on the thief).
    pub fn install_prefix(&mut self, prefix: &[NodeId]) {
        self.rewind_to(0);
        for (depth, &vt) in prefix.iter().enumerate() {
            self.assign(depth, vt);
        }
    }

    /// Raw view of the mapping indexed by position.
    pub fn mapping(&self) -> &[NodeId] {
        &self.mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Algorithm;
    use sge_graph::{generators, GraphBuilder};

    #[test]
    fn candidates_from_parent_neighborhood() {
        let pattern = generators::directed_path(2, 0);
        let target = generators::star(3, 0, 0); // center 0 -> leaves 1,2,3
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let mut state = ctx.new_state();

        let mut roots = Vec::new();
        ctx.candidates(0, &state, &mut roots);
        assert_eq!(
            roots.len(),
            target.num_nodes(),
            "RI roots = all target nodes"
        );

        // Map the first pattern node (the path tail, degree-max is node 0 or 1;
        // ordering picks a max-degree node first) onto the star center and
        // check the child candidates are exactly the center's out-neighbors.
        let first = ctx.order().positions[0];
        assert!(ctx.is_consistent(0, 0, &state));
        state.assign(0, 0);
        let mut children = Vec::new();
        ctx.candidates(1, &state, &mut children);
        let link = ctx.order().parents[1].unwrap();
        assert_eq!(link.parent_pos, 0);
        if pattern.has_edge(first, ctx.order().positions[1]) {
            assert_eq!(children, vec![1, 2, 3]);
        } else {
            assert!(children.is_empty());
        }
    }

    #[test]
    fn consistency_rejects_used_and_wrong_labels() {
        let pattern = generators::labeled_triangle(1, 2, 3);
        let mut tb = GraphBuilder::new();
        let a = tb.add_node(1);
        let b = tb.add_node(2);
        let c = tb.add_node(3);
        let d = tb.add_node(2);
        tb.add_edge(a, b, 0);
        tb.add_edge(b, c, 0);
        tb.add_edge(c, a, 0);
        tb.add_edge(a, d, 0);
        let target = tb.build();

        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let mut state = ctx.new_state();
        let pos0 = ctx.order().positions[0];
        let image0 = match pattern.label(pos0) {
            1 => a,
            2 => b,
            _ => c,
        };
        assert!(ctx.is_consistent(0, image0, &state));
        state.assign(0, image0);
        // Re-using the same target node must fail at any later depth.
        assert!(!ctx.is_consistent(1, image0, &state));
    }

    #[test]
    fn consistency_checks_edges_to_mapped_nodes() {
        // Pattern: directed edge 0 -> 1 (same labels); target: two nodes with
        // the edge the wrong way round.
        let pattern = generators::directed_path(2, 0);
        let mut tb = GraphBuilder::new();
        let t0 = tb.add_node(0);
        let t1 = tb.add_node(0);
        tb.add_edge(t1, t0, 0);
        let target = tb.build();
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let mut state = ctx.new_state();

        // Whatever the ordering, mapping both nodes must fail somewhere.
        let mut total = 0u32;
        let mut cands = Vec::new();
        ctx.candidates(0, &state, &mut cands);
        for &c0 in &cands {
            if !ctx.is_consistent(0, c0, &state) {
                continue;
            }
            state.assign(0, c0);
            let mut inner = Vec::new();
            ctx.candidates(1, &state, &mut inner);
            for &c1 in &inner {
                if ctx.is_consistent(1, c1, &state) {
                    total += 1;
                }
            }
            state.unassign(0);
        }
        assert_eq!(total, 1, "exactly one directed embedding exists");
    }

    #[test]
    fn self_loop_in_pattern_requires_self_loop_in_target() {
        let mut pb = GraphBuilder::new();
        let p = pb.add_node(0);
        pb.add_edge(p, p, 0);
        let pattern = pb.build();

        let mut tb = GraphBuilder::new();
        let t0 = tb.add_node(0);
        let t1 = tb.add_node(0);
        tb.add_edge(t0, t0, 0);
        tb.add_edge(t0, t1, 0);
        let target = tb.build();

        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let state = ctx.new_state();
        assert!(ctx.is_consistent(0, t0, &state));
        assert!(!ctx.is_consistent(0, t1, &state));
    }

    #[test]
    fn impossible_when_pattern_larger_than_target() {
        let pattern = generators::clique(4, 0);
        let target = generators::clique(3, 0);
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        assert!(ctx.impossible());
    }

    #[test]
    fn impossible_when_domain_empty() {
        let mut pb = GraphBuilder::new();
        pb.add_node(9);
        let pattern = pb.build();
        let target = generators::clique(3, 0);
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::RiDs);
        assert!(ctx.impossible());
    }

    #[test]
    fn worker_state_prefix_and_rewind() {
        let pattern = generators::directed_path(3, 0);
        let target = generators::directed_path(5, 0);
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let mut state = ctx.new_state();
        state.assign(0, 2);
        state.assign(1, 3);
        assert_eq!(state.prefix(2), vec![2, 3]);
        assert_eq!(state.assigned(1), 3);

        let mut other = ctx.new_state();
        other.install_prefix(&state.prefix(2));
        assert_eq!(other.assigned(0), 2);
        assert_eq!(other.assigned(1), 3);

        state.rewind_to(1);
        assert_eq!(state.assigned(0), 2);
        assert_eq!(state.assigned(1), NodeId::MAX);
        assert_eq!(state.prefix(1), vec![2]);
        // Target node 3 is free again: re-assigning it must not trip the
        // injectivity debug assertion.
        state.assign(1, 3);
        assert_eq!(state.assigned(1), 3);
    }

    #[test]
    fn domain_candidates_for_parentless_position() {
        // Disconnected pattern: two isolated labeled nodes; RI-DS candidates
        // for the second root come from its domain, not the whole target.
        let mut pb = GraphBuilder::new();
        pb.add_node(1);
        pb.add_node(2);
        let pattern = pb.build();
        let mut tb = GraphBuilder::new();
        tb.add_node(1);
        tb.add_node(2);
        tb.add_node(2);
        tb.add_node(3);
        let target = tb.build();

        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::RiDs);
        let state = ctx.new_state();
        let mut cands = Vec::new();
        ctx.candidates(0, &state, &mut cands);
        let vp0 = ctx.order().positions[0];
        let expected = if pattern.label(vp0) == 1 { 1 } else { 2 };
        assert_eq!(cands.len(), expected);
    }

    #[test]
    fn mapping_by_pattern_node_inverts_the_order() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::directed_cycle(3, 0);
        let ctx = SearchContext::prepare(&pattern, &target, Algorithm::Ri);
        let mut state = ctx.new_state();
        // Assign positions 0..3 to target nodes equal to the pattern node they
        // represent (the identity embedding exists in a 3-cycle).
        for depth in 0..3 {
            let vp = ctx.order().positions[depth];
            assert!(ctx.is_consistent(depth, vp, &state));
            state.assign(depth, vp);
        }
        let by_node = ctx.mapping_by_pattern_node(&state);
        assert_eq!(by_node, vec![0, 1, 2]);
    }
}

//! Streaming match observation shared by every scheduler.
//!
//! The unified `sge::Engine` supports streaming matches out of a run instead
//! of (or in addition to) collecting them.  Sequential search calls the
//! visitor from the single search thread; the parallel schedulers call it
//! concurrently from worker threads, so implementations must be [`Sync`] and
//! do their own interior-mutable aggregation (an atomic counter, a mutexed
//! vec, a channel, …).
//!
//! [`ChannelVisitor`] is the bounded-channel bridge behind
//! `Engine::run_streaming`: matches flow through a `std::sync::mpsc`
//! sync-channel to a consumer on another thread, so enumeration and
//! consumption (e.g. socket writes) overlap with memory bounded by the
//! channel capacity, and a vanished consumer cooperatively cancels the run.

use sge_graph::NodeId;
use sge_util::CancelToken;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;

/// Observer invoked once per discovered embedding, from whichever worker
/// thread found it.
///
/// `mapping[p]` is the target node the pattern node `p` is mapped to (indexed
/// by *pattern node id*, not by search position — the order every scheduler
/// agrees on).  The slice is only valid for the duration of the call; copy it
/// if it must outlive the callback.
pub trait MatchVisitor: Sync {
    /// Called for every match.  `worker_id` identifies the finding worker
    /// (always 0 under the sequential scheduler).
    fn on_match(&self, worker_id: usize, mapping: &[NodeId]);
}

/// A visitor that does nothing; useful as a default.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopVisitor;

impl MatchVisitor for NoopVisitor {
    fn on_match(&self, _worker_id: usize, _mapping: &[NodeId]) {}
}

/// Collects mappings under a mutex, up to a limit — the building block of
/// `collect_mappings` support in the parallel schedulers.
///
/// Once full, further matches are ignored without taking the lock, so the
/// collector stays off the hot path after the limit is reached; callers can
/// also consult [`CollectingVisitor::is_full`] to skip building the mapping
/// at all.
#[derive(Debug, Default)]
pub struct CollectingVisitor {
    limit: usize,
    collected: std::sync::Mutex<Vec<Vec<NodeId>>>,
    full: std::sync::atomic::AtomicBool,
}

impl CollectingVisitor {
    /// Collects at most `limit` mappings (0 = collect nothing).
    pub fn new(limit: usize) -> Self {
        CollectingVisitor {
            limit,
            collected: std::sync::Mutex::new(Vec::new()),
            full: std::sync::atomic::AtomicBool::new(limit == 0),
        }
    }

    /// `true` once the limit is reached: further `on_match` calls are no-ops,
    /// so callers need not materialize mappings for this collector anymore.
    pub fn is_full(&self) -> bool {
        self.full.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Takes the collected mappings out of the visitor.
    pub fn take(&self) -> Vec<Vec<NodeId>> {
        std::mem::take(&mut *self.collected.lock().expect("collector mutex poisoned"))
    }
}

impl MatchVisitor for CollectingVisitor {
    fn on_match(&self, _worker_id: usize, mapping: &[NodeId]) {
        if self.is_full() {
            return;
        }
        let mut guard = self.collected.lock().expect("collector mutex poisoned");
        if guard.len() < self.limit {
            guard.push(mapping.to_vec());
        }
        if guard.len() >= self.limit {
            self.full.store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

/// Bridges matches into a **bounded** channel consumed by another thread.
///
/// `on_match` blocks when the channel is full (backpressure: enumeration
/// never runs further ahead of the consumer than the channel capacity), and
/// when the receiving end has been dropped — the consumer is gone, e.g. a
/// streaming client disconnected — it fires the shared [`CancelToken`] so
/// the schedulers stop the search instead of enumerating into the void.
/// After the token has fired, `on_match` returns immediately without
/// touching the channel.
#[derive(Debug)]
pub struct ChannelVisitor {
    sender: SyncSender<Vec<NodeId>>,
    cancel: Arc<CancelToken>,
}

impl ChannelVisitor {
    /// Wraps the sending half of a `std::sync::mpsc::sync_channel` together
    /// with the cancellation token the run was started with.
    pub fn new(sender: SyncSender<Vec<NodeId>>, cancel: Arc<CancelToken>) -> Self {
        ChannelVisitor { sender, cancel }
    }

    /// `true` once the consumer vanished (or anyone else cancelled the run).
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }
}

impl MatchVisitor for ChannelVisitor {
    fn on_match(&self, _worker_id: usize, mapping: &[NodeId]) {
        if self.cancel.is_cancelled() {
            return;
        }
        if self.sender.send(mapping.to_vec()).is_err() {
            // Receiver dropped: the consumer will never read another row.
            self.cancel.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_visitor_respects_limit() {
        let visitor = CollectingVisitor::new(2);
        assert!(!visitor.is_full());
        for i in 0..5u32 {
            visitor.on_match(0, &[i, i + 1]);
        }
        assert!(visitor.is_full());
        let collected = visitor.take();
        assert_eq!(collected, vec![vec![0, 1], vec![1, 2]]);
        assert!(visitor.take().is_empty(), "take drains the collector");
    }

    #[test]
    fn zero_limit_collects_nothing() {
        let visitor = CollectingVisitor::new(0);
        visitor.on_match(1, &[4, 5, 6]);
        assert!(visitor.take().is_empty());
        NoopVisitor.on_match(0, &[1]);
    }

    #[test]
    fn channel_visitor_streams_and_cancels_on_dropped_receiver() {
        let (sender, receiver) = std::sync::mpsc::sync_channel(2);
        let visitor = ChannelVisitor::new(sender, Arc::new(CancelToken::new()));
        visitor.on_match(0, &[1, 2]);
        visitor.on_match(1, &[3, 4]);
        assert_eq!(receiver.recv().unwrap(), vec![1, 2]);
        assert_eq!(receiver.recv().unwrap(), vec![3, 4]);
        assert!(!visitor.is_cancelled());
        drop(receiver);
        visitor.on_match(0, &[5, 6]);
        assert!(visitor.is_cancelled(), "dropped receiver fires the token");
        // Further matches are dropped without touching the channel.
        visitor.on_match(0, &[7, 8]);
        assert!(visitor.is_cancelled());
    }
}

//! Cross-validation of the RI family against the independent VF2 baseline.
//!
//! Every algorithm must report exactly the same number of embeddings on every
//! instance; the instances are randomized labeled graphs plus patterns
//! extracted from them (so most instances have at least one match), and pure
//! random patterns (which often have none).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sge_graph::{Graph, GraphBuilder};
use sge_ri::{enumerate, Algorithm, MatchConfig};

/// Random labeled directed graph with `n` nodes, edge probability `p`, and
/// `labels` distinct node labels.
fn random_graph(seed: u64, n: usize, p: f64, labels: u32) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_node(rng.gen_range(0..labels));
    }
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(p) {
                b.add_edge(u as u32, v as u32, rng.gen_range(0..2));
            }
        }
    }
    b.build()
}

/// Extracts a connected pattern with `k` nodes from `target` via a random
/// undirected walk, keeping every edge among the selected nodes.
fn extract_pattern(seed: u64, target: &Graph, k: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = target.num_nodes();
    let start = rng.gen_range(0..n) as u32;
    let mut selected = vec![start];
    while selected.len() < k {
        let &from = &selected[rng.gen_range(0..selected.len())];
        let neigh = target.undirected_neighbors(from);
        if neigh.is_empty() {
            break;
        }
        let next = neigh[rng.gen_range(0..neigh.len())];
        if !selected.contains(&next) {
            selected.push(next);
        } else if selected.len() > 1 && rng.gen_bool(0.2) {
            // Occasionally give up on growing from a saturated frontier.
            break;
        }
    }
    let mut b = GraphBuilder::new();
    for &v in &selected {
        b.add_node(target.label(v));
    }
    for (i, &u) in selected.iter().enumerate() {
        for (j, &v) in selected.iter().enumerate() {
            if let Some(l) = target.edge_label(u, v) {
                b.add_edge(i as u32, j as u32, l);
            }
        }
    }
    b.build()
}

fn all_algorithms_agree(pattern: &Graph, target: &Graph) {
    let oracle = sge_vf2::count_matches(pattern, target);
    for algo in Algorithm::ALL {
        let result = enumerate(pattern, target, &MatchConfig::new(algo));
        assert_eq!(
            result.matches, oracle,
            "{algo} disagrees with VF2 on pattern {} / target {}",
            pattern.num_nodes(),
            target.num_nodes()
        );
        assert!(!result.timed_out);
    }
}

#[test]
fn extracted_patterns_have_matches_and_counts_agree() {
    for seed in 0..12u64 {
        let target = random_graph(seed, 24, 0.12, 3);
        let pattern = extract_pattern(seed * 31 + 1, &target, 5);
        let oracle = sge_vf2::count_matches(&pattern, &target);
        assert!(
            oracle >= 1,
            "pattern extracted from the target must embed at least once (seed {seed})"
        );
        all_algorithms_agree(&pattern, &target);
    }
}

#[test]
fn random_patterns_counts_agree_even_with_zero_matches() {
    for seed in 0..12u64 {
        let target = random_graph(seed, 20, 0.1, 2);
        let pattern = random_graph(seed + 1000, 4, 0.4, 2);
        all_algorithms_agree(&pattern, &target);
    }
}

#[test]
fn dense_unlabeled_targets_agree() {
    for seed in 0..6u64 {
        let target = random_graph(seed, 12, 0.35, 1);
        let pattern = extract_pattern(seed * 7 + 3, &target, 4);
        all_algorithms_agree(&pattern, &target);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_ri_family_matches_vf2(
        seed in 0u64..10_000,
        n in 8usize..20,
        k in 2usize..5,
        labels in 1u32..4,
    ) {
        let target = random_graph(seed, n, 0.15, labels);
        let pattern = extract_pattern(seed ^ 0xABCD, &target, k);
        let oracle = sge_vf2::count_matches(&pattern, &target);
        for algo in Algorithm::ALL {
            let result = enumerate(&pattern, &target, &MatchConfig::new(algo));
            prop_assert_eq!(result.matches, oracle);
        }
    }

    #[test]
    fn prop_search_space_of_ds_family_not_larger_than_ri(
        seed in 0u64..10_000,
        n in 10usize..24,
        k in 3usize..6,
    ) {
        // Domains only prune; RI-DS should never visit more states than RI on
        // labeled instances (both use the same ordering heuristic family).
        let target = random_graph(seed, n, 0.12, 4);
        let pattern = extract_pattern(seed ^ 0x1234, &target, k);
        let ri = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::Ri));
        let ds = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::RiDs));
        prop_assert_eq!(ri.matches, ds.matches);
        prop_assert!(ds.states <= ri.states,
            "RI-DS visited {} states, RI visited {}", ds.states, ri.states);
    }
}

//! Cross-validation of the RI family against the independent VF2 baseline.
//!
//! Every algorithm must report exactly the same number of embeddings on every
//! instance; the instances are randomized labeled graphs plus patterns
//! extracted from them (so most instances have at least one match), and pure
//! random patterns (which often have none).

use sge_graph::{Graph, GraphBuilder};
use sge_ri::{enumerate, Algorithm, MatchConfig};
use sge_util::SplitMix64;

/// Random labeled directed graph with `n` nodes, edge probability `p`, and
/// `labels` distinct node labels.
fn random_graph(seed: u64, n: usize, p: f64, labels: u32) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_node(rng.next_below(labels as usize) as u32);
    }
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.next_bool(p) {
                b.add_edge(u as u32, v as u32, rng.next_below(2) as u32);
            }
        }
    }
    b.build()
}

/// Extracts a connected pattern with `k` nodes from `target` via a random
/// undirected walk, keeping every edge among the selected nodes.
fn extract_pattern(seed: u64, target: &Graph, k: usize) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let n = target.num_nodes();
    let start = rng.next_below(n) as u32;
    let mut selected = vec![start];
    while selected.len() < k {
        let &from = &selected[rng.next_below(selected.len())];
        let neigh = target.undirected_neighbors(from);
        if neigh.is_empty() {
            break;
        }
        let next = neigh[rng.next_below(neigh.len())];
        if !selected.contains(&next) {
            selected.push(next);
        } else if selected.len() > 1 && rng.next_bool(0.2) {
            // Occasionally give up on growing from a saturated frontier.
            break;
        }
    }
    let mut b = GraphBuilder::new();
    for &v in &selected {
        b.add_node(target.label(v));
    }
    for (i, &u) in selected.iter().enumerate() {
        for (j, &v) in selected.iter().enumerate() {
            if let Some(l) = target.edge_label(u, v) {
                b.add_edge(i as u32, j as u32, l);
            }
        }
    }
    b.build()
}

fn all_algorithms_agree(pattern: &Graph, target: &Graph) {
    let oracle = sge_vf2::count_matches(pattern, target);
    for algo in Algorithm::ALL {
        let result = enumerate(pattern, target, &MatchConfig::new(algo));
        assert_eq!(
            result.matches,
            oracle,
            "{algo} disagrees with VF2 on pattern {} / target {}",
            pattern.num_nodes(),
            target.num_nodes()
        );
        assert!(!result.timed_out);
    }
}

#[test]
fn extracted_patterns_have_matches_and_counts_agree() {
    for seed in 0..12u64 {
        let target = random_graph(seed, 24, 0.12, 3);
        let pattern = extract_pattern(seed * 31 + 1, &target, 5);
        let oracle = sge_vf2::count_matches(&pattern, &target);
        assert!(
            oracle >= 1,
            "pattern extracted from the target must embed at least once (seed {seed})"
        );
        all_algorithms_agree(&pattern, &target);
    }
}

#[test]
fn random_patterns_counts_agree_even_with_zero_matches() {
    for seed in 0..12u64 {
        let target = random_graph(seed, 20, 0.1, 2);
        let pattern = random_graph(seed + 1000, 4, 0.4, 2);
        all_algorithms_agree(&pattern, &target);
    }
}

#[test]
fn dense_unlabeled_targets_agree() {
    for seed in 0..6u64 {
        let target = random_graph(seed, 12, 0.35, 1);
        let pattern = extract_pattern(seed * 7 + 3, &target, 4);
        all_algorithms_agree(&pattern, &target);
    }
}

/// Randomized property check (deterministic seeds): every algorithm variant
/// must agree with VF2 on arbitrary extracted-pattern instances.
#[test]
fn randomized_ri_family_matches_vf2() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0xABCD ^ case);
        let n = 8 + rng.next_below(12);
        let k = 2 + rng.next_below(3);
        let labels = 1 + rng.next_below(3) as u32;
        let target = random_graph(rng.next_u64(), n, 0.15, labels);
        let pattern = extract_pattern(rng.next_u64(), &target, k);
        let oracle = sge_vf2::count_matches(&pattern, &target);
        for algo in Algorithm::ALL {
            let result = enumerate(&pattern, &target, &MatchConfig::new(algo));
            assert_eq!(result.matches, oracle, "case={case} {algo}");
        }
    }
}

/// Domains only prune; RI-DS should never visit more states than RI on
/// labeled instances (both use the same ordering heuristic family).
#[test]
fn randomized_search_space_of_ds_family_not_larger_than_ri() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0x1234 ^ case);
        let n = 10 + rng.next_below(14);
        let k = 3 + rng.next_below(3);
        let target = random_graph(rng.next_u64(), n, 0.12, 4);
        let pattern = extract_pattern(rng.next_u64(), &target, k);
        let ri = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::Ri));
        let ds = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::RiDs));
        assert_eq!(ri.matches, ds.matches, "case={case}");
        assert!(
            ds.states <= ri.states,
            "case={case}: RI-DS visited {} states, RI visited {}",
            ds.states,
            ri.states
        );
    }
}

//! Cross-validation of the RI family against the independent VF2 baseline.
//!
//! Every algorithm must report exactly the same number of embeddings on every
//! instance; the instances are randomized labeled graphs plus patterns
//! extracted from them (so most instances have at least one match), and pure
//! random patterns (which often have none).

use std::sync::Arc;

use sge_graph::{AdjacencyBitmaps, BitmapConfig, Graph, GraphBuilder, GraphStats};
use sge_ri::search::{CandidateMode, SearchContext, WorkerState};
use sge_ri::{check_kernel_parity, enumerate, search_prepared, Algorithm, MatchConfig, Strategy};
use sge_util::SplitMix64;

/// Random labeled directed graph with `n` nodes, edge probability `p`, and
/// `labels` distinct node labels.
fn random_graph(seed: u64, n: usize, p: f64, labels: u32) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_node(rng.next_below(labels as usize) as u32);
    }
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.next_bool(p) {
                b.add_edge(u as u32, v as u32, rng.next_below(2) as u32);
            }
        }
    }
    b.build()
}

/// Extracts a connected pattern with `k` nodes from `target` via a random
/// undirected walk, keeping every edge among the selected nodes.
fn extract_pattern(seed: u64, target: &Graph, k: usize) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let n = target.num_nodes();
    let start = rng.next_below(n) as u32;
    let mut selected = vec![start];
    while selected.len() < k {
        let &from = &selected[rng.next_below(selected.len())];
        let neigh = target.undirected_neighbors(from);
        if neigh.is_empty() {
            break;
        }
        let next = neigh[rng.next_below(neigh.len())];
        if !selected.contains(&next) {
            selected.push(next);
        } else if selected.len() > 1 && rng.next_bool(0.2) {
            // Occasionally give up on growing from a saturated frontier.
            break;
        }
    }
    let mut b = GraphBuilder::new();
    for &v in &selected {
        b.add_node(target.label(v));
    }
    for (i, &u) in selected.iter().enumerate() {
        for (j, &v) in selected.iter().enumerate() {
            if let Some(l) = target.edge_label(u, v) {
                b.add_edge(i as u32, j as u32, l);
            }
        }
    }
    b.build()
}

fn all_algorithms_agree(pattern: &Graph, target: &Graph) {
    let oracle = sge_vf2::count_matches(pattern, target);
    for algo in Algorithm::ALL {
        let result = enumerate(pattern, target, &MatchConfig::new(algo));
        assert_eq!(
            result.matches,
            oracle,
            "{algo} disagrees with VF2 on pattern {} / target {}",
            pattern.num_nodes(),
            target.num_nodes()
        );
        assert!(!result.timed_out);
    }
}

#[test]
fn extracted_patterns_have_matches_and_counts_agree() {
    for seed in 0..12u64 {
        let target = random_graph(seed, 24, 0.12, 3);
        let pattern = extract_pattern(seed * 31 + 1, &target, 5);
        let oracle = sge_vf2::count_matches(&pattern, &target);
        assert!(
            oracle >= 1,
            "pattern extracted from the target must embed at least once (seed {seed})"
        );
        all_algorithms_agree(&pattern, &target);
    }
}

#[test]
fn random_patterns_counts_agree_even_with_zero_matches() {
    for seed in 0..12u64 {
        let target = random_graph(seed, 20, 0.1, 2);
        let pattern = random_graph(seed + 1000, 4, 0.4, 2);
        all_algorithms_agree(&pattern, &target);
    }
}

#[test]
fn dense_unlabeled_targets_agree() {
    for seed in 0..6u64 {
        let target = random_graph(seed, 12, 0.35, 1);
        let pattern = extract_pattern(seed * 7 + 3, &target, 4);
        all_algorithms_agree(&pattern, &target);
    }
}

/// Randomized property check (deterministic seeds): every algorithm variant
/// must agree with VF2 on arbitrary extracted-pattern instances.
#[test]
fn randomized_ri_family_matches_vf2() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0xABCD ^ case);
        let n = 8 + rng.next_below(12);
        let k = 2 + rng.next_below(3);
        let labels = 1 + rng.next_below(3) as u32;
        let target = random_graph(rng.next_u64(), n, 0.15, labels);
        let pattern = extract_pattern(rng.next_u64(), &target, k);
        let oracle = sge_vf2::count_matches(&pattern, &target);
        for algo in Algorithm::ALL {
            let result = enumerate(&pattern, &target, &MatchConfig::new(algo));
            assert_eq!(result.matches, oracle, "case={case} {algo}");
        }
    }
}

/// Walks the full search tree of `driver`, comparing the raw candidate set of
/// every expansion against `other` (same ordering, different kernel routing)
/// and against a scalar per-node oracle that re-derives candidacy from
/// `edge_label` probes.  Any divergence is reported through
/// [`check_kernel_parity`], which pinpoints the first differing element.
fn walk_and_compare(
    case: u64,
    depth: usize,
    driver: &SearchContext<'_>,
    other: &SearchContext<'_>,
    state: &mut WorkerState,
) {
    let mut expected = Vec::new();
    let mut actual = Vec::new();
    driver.candidates(depth, state, &mut expected);
    other.candidates(depth, state, &mut actual);
    if let Err(divergence) = check_kernel_parity("bitmap-vs-gallop", &expected, &actual) {
        panic!("case={case} depth={depth}: {divergence}");
    }
    let oracle = scalar_candidates(driver, depth, state);
    if let Err(divergence) = check_kernel_parity("gallop-vs-scalar", &oracle, &expected) {
        panic!("case={case} depth={depth}: {divergence}");
    }
    if depth + 1 == driver.num_positions() {
        return;
    }
    for &vt in &expected {
        if !driver.is_consistent(depth, vt, state) {
            continue;
        }
        state.assign(depth, vt);
        walk_and_compare(case, depth + 1, driver, other, state);
        state.unassign(depth);
    }
}

/// Scalar reference for the candidate set at `depth`: per-node re-derivation
/// with binary-searched `edge_label` probes — no sorted-list intersection, no
/// bitmap rows.
fn scalar_candidates(ctx: &SearchContext<'_>, depth: usize, state: &WorkerState) -> Vec<u32> {
    let order = ctx.order();
    let step = &order.plan.steps[depth];
    let vp = order.positions[depth];
    let target = ctx.target();
    let maps = ctx.bitmaps().expect("both contexts carry the sidecar");
    let spec = &step.prefilter;
    let mut out = Vec::new();
    for v in 0..target.num_nodes() as u32 {
        // Root scans without domains emit every node (labels are checked by
        // `is_consistent`); constrained positions label-filter inline.
        let compatible = match ctx.domains() {
            Some(domains) => domains.contains(vp, v),
            None => step.constraints.is_empty() || target.label(v) == ctx.pattern().label(vp),
        };
        if !compatible {
            continue;
        }
        if !spec.is_trivial()
            && (target.out_degree(v) < spec.min_out_degree as usize
                || target.in_degree(v) < spec.min_in_degree as usize
                || spec.out_sig & !maps.out_sig(v) != 0
                || spec.in_sig & !maps.in_sig(v) != 0)
        {
            continue;
        }
        let satisfied = step.constraints.iter().all(|c| {
            let parent = state.assigned(c.parent_pos);
            let found = if c.out_from_parent {
                target.edge_label(parent, v)
            } else {
                target.edge_label(v, parent)
            };
            found == Some(c.label)
        });
        if satisfied {
            out.push(v);
        }
    }
    out
}

/// Satellite property: the scalar reference, the width-bucketed gallop family
/// and the bitmap-AND kernel must produce byte-identical sorted candidate
/// sets at every node of the search tree, across random graphs — and the
/// resulting match counts must still agree with VF2.
#[test]
fn kernel_paths_produce_byte_identical_candidate_sets() {
    for case in 0..10u64 {
        let mut rng = SplitMix64::new(0xBEEF ^ case);
        let n = 12 + rng.next_below(14);
        let labels = 1 + rng.next_below(3) as u32;
        let target = random_graph(rng.next_u64(), n, 0.2, labels);
        let pattern = extract_pattern(rng.next_u64(), &target, 4);
        let stats = GraphStats::of(&target);
        // Threshold 1: every non-empty (node, direction, label) neighborhood
        // gets a row, so the bitmap-forced context never falls back.
        let sidecar = Arc::new(AdjacencyBitmaps::build(
            &target,
            &BitmapConfig {
                degree_threshold: 1,
                max_bytes: usize::MAX,
            },
        ));
        for algo in [Algorithm::Ri, Algorithm::RiDs] {
            let planner = sge_ri::Planner::new(Strategy::default());
            let mut gallop_plan = planner.plan_with_stats(&pattern, &target, &stats, algo);
            for step in &mut gallop_plan.order.plan.steps {
                step.kernel = sge_ri::KernelChoice::Gallop;
            }
            let mut bitmap_plan = planner.plan_with_stats(&pattern, &target, &stats, algo);
            for step in &mut bitmap_plan.order.plan.steps {
                if !step.constraints.is_empty() {
                    step.kernel = sge_ri::KernelChoice::Bitmap;
                }
            }
            // Both contexts carry the same sidecar so the candidate prefilter
            // applies identically; only the intersection kernel differs.
            let mut gallop = SearchContext::from_plan(
                &pattern,
                &target,
                gallop_plan,
                CandidateMode::Intersection,
            );
            gallop.set_bitmaps(Some(Arc::clone(&sidecar)));
            let mut bitmap = SearchContext::from_plan(
                &pattern,
                &target,
                bitmap_plan,
                CandidateMode::Intersection,
            );
            bitmap.set_bitmaps(Some(Arc::clone(&sidecar)));
            if gallop.num_positions() == 0 {
                continue;
            }
            let mut state = gallop.new_state();
            walk_and_compare(case, 0, &gallop, &bitmap, &mut state);

            let oracle = sge_vf2::count_matches(&pattern, &target);
            let limits = sge_ri::SearchLimits::default();
            let g = search_prepared(&gallop, &limits, |_, _| {});
            let b = search_prepared(&bitmap, &limits, |_, _| {});
            assert_eq!(g.matches, oracle, "case={case} {algo}: gallop vs VF2");
            assert_eq!(b.matches, oracle, "case={case} {algo}: bitmap vs VF2");
        }
    }
}

/// Domains only prune; RI-DS should never visit more states than RI on
/// labeled instances (both use the same ordering heuristic family).
#[test]
fn randomized_search_space_of_ds_family_not_larger_than_ri() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0x1234 ^ case);
        let n = 10 + rng.next_below(14);
        let k = 3 + rng.next_below(3);
        let target = random_graph(rng.next_u64(), n, 0.12, 4);
        let pattern = extract_pattern(rng.next_u64(), &target, k);
        let ri = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::Ri));
        let ds = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::RiDs));
        assert_eq!(ri.matches, ds.matches, "case={case}");
        assert!(
            ds.states <= ri.states,
            "case={case}: RI-DS visited {} states, RI visited {}",
            ds.states,
            ri.states
        );
    }
}

//! The batch executor: many patterns against one target, on a worker pool.

use crate::{QueryOutcome, QuerySpec, Service, ServiceError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Many queries against one registered target.
#[derive(Clone, Debug)]
pub struct QuerySet {
    /// Registry name of the target all queries run against.
    pub target: String,
    /// The queries, answered in order.
    pub queries: Vec<QuerySpec>,
}

impl QuerySet {
    /// Creates an empty set against `target`.
    pub fn new(target: impl Into<String>) -> Self {
        QuerySet {
            target: target.into(),
            queries: Vec::new(),
        }
    }

    /// Appends one query.
    pub fn push(&mut self, spec: QuerySpec) -> &mut Self {
        self.queries.push(spec);
        self
    }
}

/// The result of one batch: per-query outcomes (in submission order) plus
/// throughput aggregates.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Target the batch ran against.
    pub target: String,
    /// One result per query, in submission order.
    pub results: Vec<Result<QueryOutcome, ServiceError>>,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Worker threads the executor used.
    pub workers: usize,
}

impl BatchOutcome {
    /// Queries per second of wall-clock time.
    pub fn queries_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.results.len() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Number of queries that succeeded.
    pub fn succeeded(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Sum of match counts over the successful queries.
    pub fn total_matches(&self) -> u64 {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|q| q.outcome.matches)
            .sum()
    }

    /// Number of successful queries served from the prepared cache.
    pub fn cache_hits(&self) -> usize {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .filter(|q| q.cache_hit)
            .count()
    }
}

/// Fans a [`QuerySet`] out over a pool of std threads.
///
/// Each worker repeatedly claims the next unclaimed query index and runs it
/// through [`Service::run_query`], so per-query cache hits, statistics and
/// the **global admission limit** all behave exactly as for single queries —
/// a batch cannot starve interactive traffic beyond the configured
/// `max_in_flight`.
pub struct BatchExecutor {
    workers: usize,
}

impl BatchExecutor {
    /// An executor using `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        BatchExecutor {
            workers: workers.max(1),
        }
    }

    /// Runs every query of `set` and returns the per-query results in
    /// submission order.  Wall time is measured on the service's clock, so
    /// batch throughput figures are deterministic under a virtual clock.
    pub fn execute(&self, service: &Service, set: &QuerySet) -> BatchOutcome {
        let started = service.clock().now();
        let n = set.queries.len();
        let workers = self.workers.min(n.max(1));
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<Result<QueryOutcome, ServiceError>>>> =
            Mutex::new((0..n).map(|_| None).collect());

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let result = service.run_query(&set.target, &set.queries[index]);
                    results
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())[index] = Some(result);
                });
            }
        });

        let results = results
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .into_iter()
            .map(|slot| slot.expect("every query index was claimed"))
            .collect();
        BatchOutcome {
            target: set.target.clone(),
            results,
            wall_seconds: service.clock().now().saturating_sub(started).as_secs_f64(),
            workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use sge_engine::{RunConfig, Scheduler};
    use sge_graph::{generators, io::write_graph};
    use sge_ri::Algorithm;

    fn service_with_k5() -> Service {
        let service = Service::new(ServiceConfig {
            cache_capacity: 16,
            batch_workers: 4,
            max_in_flight: 2,
            ..ServiceConfig::default()
        });
        service.registry().insert("k5", generators::clique(5, 0));
        service
    }

    #[test]
    fn batch_results_arrive_in_submission_order() {
        let service = service_with_k5();
        let triangle = write_graph(&generators::directed_cycle(3, 0));
        let edge = write_graph(&generators::directed_path(2, 0));
        let mut set = QuerySet::new("k5");
        for _ in 0..10 {
            set.push(QuerySpec::new(&triangle)); // 60 matches
            set.push(QuerySpec::new(&edge)); // 20 matches
        }
        let outcome = service.run_batch(&set);
        assert_eq!(outcome.results.len(), 20);
        assert_eq!(outcome.succeeded(), 20);
        for (i, result) in outcome.results.iter().enumerate() {
            let expected = if i % 2 == 0 { 60 } else { 20 };
            assert_eq!(
                result.as_ref().unwrap().outcome.matches,
                expected,
                "query {i}"
            );
        }
        assert_eq!(outcome.total_matches(), 10 * 60 + 10 * 20);
        // 2 distinct patterns → 2 misses, the rest hits.
        assert_eq!(outcome.cache_hits(), 18);
        assert!(outcome.queries_per_second() > 0.0);
        let stats = service.stats();
        assert_eq!(stats.queries_served, 20);
        assert_eq!(stats.batches_served, 1);
    }

    #[test]
    fn batch_mixes_schedulers_and_reports_errors_in_place() {
        let service = service_with_k5();
        let triangle = write_graph(&generators::directed_cycle(3, 0));
        let mut set = QuerySet::new("k5");
        set.push(QuerySpec::new(&triangle).with_run(RunConfig::new(Scheduler::Sequential)));
        set.push(QuerySpec::new("not a graph"));
        set.push(
            QuerySpec::new(&triangle)
                .with_algorithm(Algorithm::Ri)
                .with_run(RunConfig::new(Scheduler::work_stealing(2))),
        );
        let outcome = service.run_batch(&set);
        assert_eq!(outcome.results.len(), 3);
        assert_eq!(outcome.results[0].as_ref().unwrap().outcome.matches, 60);
        assert!(outcome.results[1].is_err());
        assert_eq!(outcome.results[2].as_ref().unwrap().outcome.matches, 60);
        assert_eq!(outcome.succeeded(), 2);
        assert_eq!(service.stats().errors, 1);
    }

    #[test]
    fn unknown_target_fails_every_query() {
        let service = service_with_k5();
        let triangle = write_graph(&generators::directed_cycle(3, 0));
        let mut set = QuerySet::new("nope");
        set.push(QuerySpec::new(&triangle));
        let outcome = service.run_batch(&set);
        assert!(matches!(
            outcome.results[0],
            Err(ServiceError::UnknownTarget(_))
        ));
    }

    #[test]
    fn empty_batch_is_fine() {
        let service = service_with_k5();
        let outcome = service.run_batch(&QuerySet::new("k5"));
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.total_matches(), 0);
    }
}

//! `sge-client` — scripted client for the `sge-serve` wire protocol.
//!
//! ```text
//! sge-client HOST:PORT [REQUEST]...
//! sge-client HOST:PORT < script.txt
//! ```
//!
//! Each positional argument is one protocol line (batch continuation lines
//! are further arguments); with no request arguments, the script is read
//! from stdin.  Responses are printed one JSON line per request.  Exits
//! nonzero when any response reports `"ok":false`.

use std::io::Read;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = match args.next() {
        Some(addr) if addr != "--help" && addr != "-h" => addr,
        _ => {
            eprintln!(
                "usage: sge-client HOST:PORT [REQUEST]...   (requests from stdin when omitted)"
            );
            std::process::exit(2);
        }
    };
    let mut lines: Vec<String> = args.collect();
    if lines.is_empty() {
        let mut input = String::new();
        if std::io::stdin().read_to_string(&mut input).is_err() {
            eprintln!("error: cannot read stdin");
            std::process::exit(2);
        }
        lines = input.lines().map(|l| l.to_string()).collect();
    }

    match sge_service::client::run_script(addr.as_str(), &lines) {
        Ok(responses) => {
            let mut failed = false;
            for response in responses {
                // Only a *top-level* failure counts: an ok:true BATCH
                // response may legitimately carry ok:false entries for
                // individual queries in its results array.
                failed |= response.starts_with("{\"ok\":false");
                println!("{response}");
            }
            if failed {
                std::process::exit(1);
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

//! `sge-client` — scripted client for the `sge-serve` wire protocol.
//!
//! ```text
//! sge-client HOST:PORT [REQUEST]...
//! sge-client HOST:PORT < script.txt
//! ```
//!
//! Each positional argument is one protocol line (batch continuation lines
//! are further arguments); with no request arguments, the script is read
//! from stdin.  Responses are printed one JSON line per request — a
//! streaming query (`emit=stream`) prints its whole header/frames/footer
//! block.  Exits
//! nonzero when any response reports `"ok":false` — including an `ok:false`
//! *sub-result* inside an otherwise-successful `BATCH` response — and
//! mirrors every protocol-level `error` message to stderr so CI smoke
//! scripts cannot silently pass on a failed query.

use std::io::Read;

/// Extracts every `"error":"..."` message from a single-line JSON response.
/// The server's hand-rolled encoder escapes embedded quotes as `\"`, which
/// is the only escape this scan needs to respect.
fn error_messages(response: &str) -> Vec<String> {
    let mut messages = Vec::new();
    let mut rest = response;
    while let Some(at) = rest.find("\"error\":\"") {
        let tail = &rest[at + "\"error\":\"".len()..];
        let mut message = String::new();
        let mut bytes = tail.char_indices();
        let mut end = tail.len();
        while let Some((i, c)) = bytes.next() {
            match c {
                '\\' => {
                    if let Some((_, escaped)) = bytes.next() {
                        message.push(escaped);
                    }
                }
                '"' => {
                    end = i;
                    break;
                }
                other => message.push(other),
            }
        }
        messages.push(message);
        rest = &tail[end..];
    }
    messages
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = match args.next() {
        Some(addr) if addr != "--help" && addr != "-h" => addr,
        _ => {
            eprintln!(
                "usage: sge-client HOST:PORT [REQUEST]...   (requests from stdin when omitted)"
            );
            std::process::exit(2);
        }
    };
    let mut lines: Vec<String> = args.collect();
    if lines.is_empty() {
        let mut input = String::new();
        if std::io::stdin().read_to_string(&mut input).is_err() {
            eprintln!("error: cannot read stdin");
            std::process::exit(2);
        }
        lines = input.lines().map(|l| l.to_string()).collect();
    }

    match sge_service::client::run_script(addr.as_str(), &lines) {
        Ok(responses) => {
            let mut failed = false;
            for response in responses {
                // A top-level failure fails the run outright; an ok:true
                // BATCH response may still carry ok:false entries for
                // individual queries in its results array — those are
                // protocol-level errors too and must not pass silently.
                let top_level_failure = response.starts_with("{\"ok\":false");
                let sub_failure = !top_level_failure && response.contains("{\"ok\":false");
                if top_level_failure || sub_failure {
                    failed = true;
                    for message in error_messages(&response) {
                        eprintln!("error: {message}");
                    }
                }
                println!("{response}");
            }
            if failed {
                std::process::exit(1);
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::error_messages;

    #[test]
    fn extracts_every_error_message() {
        let batch = r#"{"ok":true,"results":[{"ok":false,"error":"protocol error: unknown algorithm 'x'"},{"ok":true,"matches":3},{"ok":false,"error":"graph \"p\" failed"}]}"#;
        assert_eq!(
            error_messages(batch),
            vec![
                "protocol error: unknown algorithm 'x'".to_string(),
                "graph \"p\" failed".to_string(),
            ]
        );
        assert!(error_messages(r#"{"ok":true,"matches":60}"#).is_empty());
    }
}

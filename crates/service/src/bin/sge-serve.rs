//! `sge-serve` — the TCP enumeration server.
//!
//! ```text
//! sge-serve [--addr HOST:PORT] [--cache N] [--workers N]
//!           [--max-in-flight N] [--drain-ms N] [--load NAME=PATH]...
//!           [--log PATH] [--threaded] [--route-threshold STATES]
//!           [--route-states-per-worker STATES] [--shards N]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound (scripts wait for
//! that line), then serves until a client sends `SHUTDOWN`; in-flight
//! connections get up to `--drain-ms` (default 5000) to finish their
//! responses before the process exits.  `--log PATH` appends one JSON line
//! per server lifecycle event (`listening`, `conn_open`, `conn_close`,
//! `shutdown`, `drained`) to PATH.
//!
//! On Unix the default front end is the event-driven readiness loop
//! ([`sge_service::EventServer`]); `--threaded` selects the classic
//! thread-per-connection server instead (always used on non-Unix hosts).
//! `--route-threshold` / `--route-states-per-worker` tune the planner's
//! scheduler routing (estimated states below the threshold stay on the
//! sequential fast path; above it, worker count is sized from the
//! corrected estimate).
//!
//! `--shards N` (N ≥ 2) serves through the scatter-gather
//! [`sge_service::Coordinator`]: every `LOAD` is vertex-cut partitioned
//! over N in-process shard services, queries fan out to all shards, and
//! responses carry a per-shard `"shards"` breakdown.

use sge_obs::EventLog;
use sge_service::{Backend, Coordinator, Server, Service, ServiceConfig};
use std::io::Write;
use std::sync::Arc;

/// Ring capacity for the in-memory tail of the event log.
const EVENT_LOG_CAPACITY: usize = 1024;

const USAGE: &str = "usage: sge-serve [--addr HOST:PORT] [--cache N] [--workers N] \
     [--max-in-flight N] [--drain-ms N] [--load NAME=PATH]... [--log PATH] \
     [--threaded] [--route-threshold STATES] [--route-states-per-worker STATES] \
     [--shards N]";

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = String::from("127.0.0.1:7878");
    let mut config = ServiceConfig::default();
    let mut preloads: Vec<(String, String)> = Vec::new();
    let mut drain_ms: u64 = 5000;
    let mut log_path: Option<String> = None;
    let mut threaded = false;
    let mut shards: usize = 1;

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut value = || -> String {
            i += 1;
            match args.get(i) {
                Some(v) => v.clone(),
                None => fail(&format!("missing value for {arg}")),
            }
        };
        match arg {
            "--addr" => addr = value(),
            "--cache" => {
                config.cache_capacity = match value().parse() {
                    Ok(n) => n,
                    Err(_) => fail("invalid --cache"),
                }
            }
            "--workers" => {
                config.batch_workers = match value().parse() {
                    Ok(n) => n,
                    Err(_) => fail("invalid --workers"),
                }
            }
            "--max-in-flight" => {
                config.max_in_flight = match value().parse() {
                    Ok(n) => n,
                    Err(_) => fail("invalid --max-in-flight"),
                }
            }
            "--drain-ms" => {
                drain_ms = match value().parse() {
                    Ok(n) => n,
                    Err(_) => fail("invalid --drain-ms"),
                }
            }
            "--route-threshold" => {
                config.routing.sequential_threshold = match value().parse() {
                    Ok(n) => n,
                    Err(_) => fail("invalid --route-threshold"),
                }
            }
            "--route-states-per-worker" => {
                config.routing.states_per_worker = match value().parse() {
                    Ok(n) => n,
                    Err(_) => fail("invalid --route-states-per-worker"),
                }
            }
            "--threaded" => threaded = true,
            "--shards" => {
                shards = match value().parse() {
                    Ok(n) if n >= 1 => n,
                    _ => fail("invalid --shards"),
                }
            }
            "--load" => {
                let spec = value();
                match spec.split_once('=') {
                    Some((name, path)) => preloads.push((name.to_string(), path.to_string())),
                    None => fail("--load expects NAME=PATH"),
                }
            }
            "--log" => log_path = Some(value()),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    if shards > 1 {
        let coordinator = Arc::new(Coordinator::new(shards, config));
        eprintln!("sharded serving: {shards} shards");
        for (name, path) in &preloads {
            match coordinator.load_target(name, path, None) {
                Ok((info, shard_infos)) => {
                    eprintln!(
                        "loaded {} ({} nodes, {} edges, {} bitmap rows over {} shards)",
                        info.name,
                        info.nodes,
                        info.edges,
                        info.bitmap_rows,
                        shard_infos.len()
                    );
                }
                Err(err) => fail(&format!("cannot load {name} from {path}: {err}")),
            }
        }
        serve(&addr, coordinator, drain_ms, log_path.as_deref(), threaded);
    } else {
        let service = Arc::new(Service::new(config));
        for (name, path) in &preloads {
            match service.load_target(name, path, None) {
                Ok(info) => eprintln!(
                    "loaded {} ({} nodes, {} edges, {} bitmap rows)",
                    info.name, info.nodes, info.edges, info.bitmap_rows
                ),
                Err(err) => fail(&format!("cannot load {name} from {path}: {err}")),
            }
        }
        serve(&addr, service, drain_ms, log_path.as_deref(), threaded);
    }
}

/// Binds the selected front end over any [`Backend`] (the single service or
/// the sharded coordinator) and serves until `SHUTDOWN`.
fn serve<B: Backend + 'static>(
    addr: &str,
    backend: Arc<B>,
    drain_ms: u64,
    log_path: Option<&str>,
    threaded: bool,
) {
    let event_log = log_path.map(|path| match EventLog::with_file(EVENT_LOG_CAPACITY, path) {
        Ok(log) => Arc::new(log),
        Err(err) => fail(&format!("cannot open event log {path}: {err}")),
    });
    let drain = std::time::Duration::from_millis(drain_ms);

    #[cfg(unix)]
    if !threaded {
        let mut server = match sge_service::EventServer::bind(addr, backend) {
            Ok(server) => server.with_drain_timeout(drain),
            Err(err) => fail(&format!("cannot bind {addr}: {err}")),
        };
        if let Some(log) = event_log {
            server = server.with_event_log(log);
        }
        let bound = server
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string());
        println!("listening on {bound}");
        std::io::stdout().flush().ok();
        if let Err(err) = server.run() {
            eprintln!("server error: {err}");
            std::process::exit(1);
        }
        return;
    }
    #[cfg(not(unix))]
    let _ = threaded; // only the blocking front end exists off-Unix

    let mut server = match Server::bind(addr, backend) {
        Ok(server) => server.with_drain_timeout(drain),
        Err(err) => fail(&format!("cannot bind {addr}: {err}")),
    };
    if let Some(log) = event_log {
        server = server.with_event_log(log);
    }
    let bound = server
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| addr.to_string());
    println!("listening on {bound}");
    std::io::stdout().flush().ok();

    if let Err(err) = server.run() {
        eprintln!("server error: {err}");
        std::process::exit(1);
    }
}

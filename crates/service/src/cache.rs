//! The prepared-context cache: a bounded LRU over [`PreparedEngine`]s.

use sge_engine::PreparedEngine;
use sge_graph::{AdjacencyBitmaps, Graph, GraphStats};
use sge_ri::{Algorithm, CandidateMode, Strategy};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache identity of a prepared engine.
///
/// The pattern participates through its **canonical serialization** (node
/// labels + edge list, name stripped), so two syntactically different query
/// texts describing the same graph share one entry; equality is on the full
/// canonical form — the reported hash is informational, never trusted for
/// identity.  The *preparation variant* — candidate mode and ordering
/// strategy — is part of the key: engines prepared under different variants
/// produce different plans and must never alias each other.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    pattern: String,
    target: String,
    algorithm: Algorithm,
    mode: CandidateMode,
    strategy: Strategy,
}

struct Entry {
    engine: Arc<PreparedEngine>,
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// Point-in-time cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Configured capacity (0 disables retention).
    pub capacity: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run preprocessing.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries actually retained (misses that made it into the map; a
    /// capacity-0 cache and race-adopted duplicates never insert).
    pub inserts: u64,
}

/// A bounded LRU of prepared engines keyed by *(pattern, target name,
/// algorithm, candidate mode, ordering strategy)*.
///
/// Preparation runs **outside** the cache lock, so a slow domain computation
/// never blocks concurrent lookups of other keys; when two threads race to
/// prepare the same key, the first insertion wins and the loser adopts it
/// (at the cost of one redundant preparation — acceptable, and it keeps the
/// lock hold times tiny).
pub struct PreparedCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
}

impl PreparedCache {
    /// Creates a cache retaining at most `capacity` prepared engines
    /// (capacity 0 never retains — every lookup prepares).
    pub fn new(capacity: usize) -> Self {
        PreparedCache {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// The canonical serialization of a pattern: its text-format body with
    /// the name stripped.
    pub fn canonical_pattern(pattern: &Graph) -> String {
        sge_graph::io::write_graph_body(pattern)
    }

    /// Process-stable hash of the canonical pattern (reported to clients for
    /// correlation; identity always uses the full canonical form).
    pub fn pattern_hash(pattern: &Graph) -> u64 {
        let mut hasher = DefaultHasher::new();
        Self::canonical_pattern(pattern).hash(&mut hasher);
        hasher.finish()
    }

    /// Fetches the prepared engine for `(pattern, target_name, algorithm)`
    /// under the default candidate mode and ordering strategy, preparing and
    /// inserting it on a miss.  Returns the engine and whether the lookup
    /// was a hit.
    pub fn get_or_prepare(
        &self,
        pattern: &Graph,
        target_name: &str,
        target: &Arc<Graph>,
        algorithm: Algorithm,
    ) -> (Arc<PreparedEngine>, bool) {
        self.get_or_prepare_planned(
            pattern,
            target_name,
            target,
            None,
            None,
            algorithm,
            CandidateMode::default(),
            Strategy::default(),
        )
    }

    /// [`PreparedCache::get_or_prepare`] with the full preparation variant:
    /// candidate mode and ordering strategy both participate in the cache
    /// key, so the same pattern prepared under two strategies yields two
    /// independent entries.  When the caller holds precomputed target
    /// statistics (the registry computes them at registration), a miss
    /// prepares with them instead of re-deriving the frequency tables; when
    /// it additionally holds the registry's bitmap sidecar (requires stats),
    /// the prepared engine attaches it instead of building a private one.
    #[allow(clippy::too_many_arguments)]
    pub fn get_or_prepare_planned(
        &self,
        pattern: &Graph,
        target_name: &str,
        target: &Arc<Graph>,
        target_stats: Option<&GraphStats>,
        bitmaps: Option<&Arc<AdjacencyBitmaps>>,
        algorithm: Algorithm,
        mode: CandidateMode,
        strategy: Strategy,
    ) -> (Arc<PreparedEngine>, bool) {
        let key = CacheKey {
            pattern: Self::canonical_pattern(pattern),
            target: target_name.to_string(),
            algorithm,
            mode,
            strategy,
        };

        if let Some(engine) = self.lookup(&key, target) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (engine, true);
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let engine = Arc::new(match (target_stats, bitmaps) {
            (Some(stats), Some(bitmaps)) => PreparedEngine::prepare_planned_full(
                Arc::new(pattern.clone()),
                Arc::clone(target),
                stats,
                Some(Arc::clone(bitmaps)),
                algorithm,
                mode,
                strategy,
            ),
            (Some(stats), None) => PreparedEngine::prepare_planned_with_stats(
                Arc::new(pattern.clone()),
                Arc::clone(target),
                stats,
                algorithm,
                mode,
                strategy,
            ),
            (None, _) => PreparedEngine::prepare_planned(
                Arc::new(pattern.clone()),
                Arc::clone(target),
                algorithm,
                mode,
                strategy,
            ),
        });
        (self.insert(key, engine), false)
    }

    /// [`PreparedCache::get_or_prepare_planned`] with caller-supplied
    /// preparation: on a miss, `prepare` builds the engine (the sharded
    /// service uses this to prepare *rooted* plans restricted to the shard's
    /// owned vertices).  The key is the same `(pattern, target, algorithm,
    /// mode, strategy)` tuple — shard identity rides on the target name, so
    /// rooted and unrooted preparations never alias as long as shard entries
    /// are registered under distinct names.
    #[allow(clippy::too_many_arguments)]
    pub fn get_or_prepare_with(
        &self,
        pattern: &Graph,
        target_name: &str,
        target: &Arc<Graph>,
        algorithm: Algorithm,
        mode: CandidateMode,
        strategy: Strategy,
        prepare: impl FnOnce() -> PreparedEngine,
    ) -> (Arc<PreparedEngine>, bool) {
        let key = CacheKey {
            pattern: Self::canonical_pattern(pattern),
            target: target_name.to_string(),
            algorithm,
            mode,
            strategy,
        };
        if let Some(engine) = self.lookup(&key, target) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (engine, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let engine = Arc::new(prepare());
        (self.insert(key, engine), false)
    }

    fn lookup(&self, key: &CacheKey, target: &Arc<Graph>) -> Option<Arc<PreparedEngine>> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            // The entry must have been prepared against the *same* graph the
            // registry currently holds under this name — reloading a target
            // swaps the Arc, and an engine built against the old graph would
            // silently answer with stale results.
            Some(entry) if Arc::ptr_eq(entry.engine.target(), target) => {
                entry.last_used = tick;
                Some(Arc::clone(&entry.engine))
            }
            Some(_) => {
                inner.map.remove(key);
                None
            }
            None => None,
        }
    }

    /// Inserts unless a racing thread already did; returns the resident
    /// engine either way.
    fn insert(&self, key: CacheKey, engine: Arc<PreparedEngine>) -> Arc<PreparedEngine> {
        if self.capacity == 0 {
            return engine;
        }
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        let stale = match inner.map.get_mut(&key) {
            Some(existing) if Arc::ptr_eq(existing.engine.target(), engine.target()) => {
                // A racing thread inserted the same preparation first; adopt
                // theirs so all callers share one engine.
                existing.last_used = tick;
                return Arc::clone(&existing.engine);
            }
            // The resident entry targets a stale graph: replace it (dropping
            // it first so the capacity check below doesn't evict a bystander).
            Some(_) => true,
            None => false,
        };
        if stale {
            inner.map.remove(&key);
        }
        if inner.map.len() >= self.capacity {
            // Displace the least-recently-used entry (O(n) scan; the cache
            // is bounded and small relative to preparation cost).
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone())
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
        inner.map.insert(
            key,
            Entry {
                engine: Arc::clone(&engine),
                last_used: tick,
            },
        );
        engine
    }

    /// Drops every cached engine (counters are preserved).
    pub fn clear(&self) {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .map
            .clear();
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .map
            .len();
        CacheStats {
            capacity: self.capacity,
            entries,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::generators;

    fn k5() -> Arc<Graph> {
        Arc::new(generators::clique(5, 0))
    }

    #[test]
    fn hit_returns_the_same_engine() {
        let cache = PreparedCache::new(4);
        let target = k5();
        let pattern = generators::directed_cycle(3, 0);
        let (first, hit1) = cache.get_or_prepare(&pattern, "k5", &target, Algorithm::RiDsSiFc);
        let (second, hit2) = cache.get_or_prepare(&pattern, "k5", &target, Algorithm::RiDsSiFc);
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.inserts, 1);
    }

    #[test]
    fn key_distinguishes_target_and_algorithm() {
        let cache = PreparedCache::new(8);
        let pattern = generators::directed_cycle(3, 0);
        let target = k5();
        cache.get_or_prepare(&pattern, "a", &target, Algorithm::Ri);
        let (_, hit_other_target) = cache.get_or_prepare(&pattern, "b", &target, Algorithm::Ri);
        let (_, hit_other_algo) = cache.get_or_prepare(&pattern, "a", &target, Algorithm::RiDs);
        assert!(!hit_other_target);
        assert!(!hit_other_algo);
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn preparation_variant_is_part_of_the_key() {
        // Two strategies (and two candidate modes) for the same pattern /
        // target / algorithm must coexist as independent entries — aliasing
        // them would serve a plan prepared under a different variant.
        let cache = PreparedCache::new(8);
        let target = k5();
        let pattern = generators::directed_cycle(3, 0);
        let stats = GraphStats::of(&target);
        let prepare = |strategy: Strategy, mode: CandidateMode| {
            cache.get_or_prepare_planned(
                &pattern,
                "k5",
                &target,
                Some(&stats),
                None,
                Algorithm::RiDs,
                mode,
                strategy,
            )
        };
        let (greedy, hit1) = prepare(Strategy::RiGreedy, CandidateMode::Intersection);
        let (lfl, hit2) = prepare(
            Strategy::LeastFrequentLabelFirst,
            CandidateMode::Intersection,
        );
        let (single, hit3) = prepare(Strategy::RiGreedy, CandidateMode::SingleParent);
        assert!(!hit1 && !hit2 && !hit3, "distinct variants must all miss");
        assert!(!Arc::ptr_eq(&greedy, &lfl));
        assert!(!Arc::ptr_eq(&greedy, &single));
        assert_eq!(cache.stats().entries, 3);

        // Each variant is resident and hits independently…
        let (greedy2, hit) = prepare(Strategy::RiGreedy, CandidateMode::Intersection);
        assert!(hit);
        assert!(Arc::ptr_eq(&greedy, &greedy2));
        let (lfl2, hit) = prepare(
            Strategy::LeastFrequentLabelFirst,
            CandidateMode::Intersection,
        );
        assert!(hit);
        assert!(Arc::ptr_eq(&lfl, &lfl2));
        // …carries its own variant…
        assert_eq!(greedy.strategy(), Strategy::RiGreedy);
        assert_eq!(lfl.strategy(), Strategy::LeastFrequentLabelFirst);
        assert_eq!(single.candidate_mode(), CandidateMode::SingleParent);
        // …and they all agree on results.
        assert_eq!(greedy.run(&Default::default()).matches, 60);
        assert_eq!(lfl.run(&Default::default()).matches, 60);
        assert_eq!(single.run(&Default::default()).matches, 60);
    }

    #[test]
    fn canonical_form_ignores_the_pattern_name() {
        let cache = PreparedCache::new(4);
        let target = k5();
        let named = sge_graph::io::parse_graph("#tri\n3\n0\n0\n0\n3\n0 1\n1 2\n2 0\n")
            .unwrap()
            .0;
        let anonymous = sge_graph::io::parse_graph("3\n0\n0\n0\n3\n0 1\n1 2\n2 0\n")
            .unwrap()
            .0;
        assert_eq!(
            PreparedCache::pattern_hash(&named),
            PreparedCache::pattern_hash(&anonymous)
        );
        cache.get_or_prepare(&named, "k5", &target, Algorithm::Ri);
        let (_, hit) = cache.get_or_prepare(&anonymous, "k5", &target, Algorithm::Ri);
        assert!(hit);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = PreparedCache::new(2);
        let target = k5();
        let p1 = generators::directed_cycle(3, 0);
        let p2 = generators::directed_path(2, 0);
        let p3 = generators::directed_path(3, 0);
        cache.get_or_prepare(&p1, "k5", &target, Algorithm::Ri);
        cache.get_or_prepare(&p2, "k5", &target, Algorithm::Ri);
        // Touch p1 so p2 is the LRU victim.
        cache.get_or_prepare(&p1, "k5", &target, Algorithm::Ri);
        cache.get_or_prepare(&p3, "k5", &target, Algorithm::Ri);
        let (_, p1_hit) = cache.get_or_prepare(&p1, "k5", &target, Algorithm::Ri);
        let (_, p2_hit) = cache.get_or_prepare(&p2, "k5", &target, Algorithm::Ri);
        assert!(p1_hit, "recently used entry survived");
        assert!(!p2_hit, "cold entry was evicted");
        assert!(cache.stats().evictions >= 1);
        assert!(cache.stats().entries <= 2);
    }

    #[test]
    fn reloaded_target_invalidates_the_entry() {
        let cache = PreparedCache::new(4);
        let pattern = generators::directed_cycle(3, 0);
        let old_target = k5();
        let (stale, _) = cache.get_or_prepare(&pattern, "k", &old_target, Algorithm::RiDsSiFc);
        assert_eq!(stale.run(&Default::default()).matches, 60);

        // Same registry name, different graph: the cached engine was built
        // against the old graph and must not be served.
        let new_target = Arc::new(generators::clique(4, 0));
        let (fresh, hit) = cache.get_or_prepare(&pattern, "k", &new_target, Algorithm::RiDsSiFc);
        assert!(!hit, "stale entry must not be a hit");
        assert!(!Arc::ptr_eq(&stale, &fresh));
        assert_eq!(fresh.run(&Default::default()).matches, 24);

        // The replacement is resident now.
        let (again, hit) = cache.get_or_prepare(&pattern, "k", &new_target, Algorithm::RiDsSiFc);
        assert!(hit);
        assert!(Arc::ptr_eq(&fresh, &again));
    }

    #[test]
    fn zero_capacity_never_retains() {
        let cache = PreparedCache::new(0);
        let target = k5();
        let pattern = generators::directed_cycle(3, 0);
        let (_, hit1) = cache.get_or_prepare(&pattern, "k5", &target, Algorithm::Ri);
        let (_, hit2) = cache.get_or_prepare(&pattern, "k5", &target, Algorithm::Ri);
        assert!(!hit1);
        assert!(!hit2);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().inserts, 0, "capacity-0 never inserts");
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = PreparedCache::new(4);
        let target = k5();
        let pattern = generators::directed_cycle(3, 0);
        cache.get_or_prepare(&pattern, "k5", &target, Algorithm::Ri);
        cache.get_or_prepare(&pattern, "k5", &target, Algorithm::Ri);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }
}

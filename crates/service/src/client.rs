//! A small scripted client for the wire protocol.
//!
//! Understands the request framing (a `BATCH n=<k>` header is followed by
//! `k` continuation lines that produce no response of their own), sends each
//! request and returns the server's JSON line per request.  This is the
//! machinery behind the `sge-client` binary and the CI smoke test.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Number of continuation lines a request line announces (`BATCH n=<k>` →
/// `k`; everything else → 0).
pub fn continuation_lines(line: &str) -> usize {
    let mut tokens = line.split_whitespace();
    if !tokens
        .next()
        .is_some_and(|verb| verb.eq_ignore_ascii_case("BATCH"))
    {
        return 0;
    }
    tokens
        .find_map(|token| token.strip_prefix("n=").and_then(|n| n.parse().ok()))
        .unwrap_or(0)
}

/// Runs a protocol script over one connection and returns one response
/// *block* per request (batch continuation lines are grouped with their
/// header).
///
/// The script is sent request by request in lockstep — each request waits
/// for the previous response — so responses map 1:1 onto requests.  A
/// streaming query (`emit=stream`) answers with several lines (header, row
/// frames, footer); they are returned as one newline-joined block so the
/// 1:1 mapping holds.
pub fn run_script(addr: impl ToSocketAddrs, lines: &[String]) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::new();

    let mut index = 0;
    while index < lines.len() {
        let line = lines[index].trim();
        index += 1;
        if line.is_empty() {
            continue;
        }
        let mut request = String::from(line);
        request.push('\n');
        for _ in 0..continuation_lines(line) {
            if index >= lines.len() {
                // Sending the incomplete batch would deadlock: the server
                // waits for the missing lines while we wait for its response.
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!(
                        "batch header '{line}' announces more query lines than the script provides"
                    ),
                ));
            }
            request.push_str(lines[index].trim());
            request.push('\n');
            index += 1;
        }
        writer.write_all(request.as_bytes())?;
        writer.flush()?;
        let mut response = read_response_line(&mut reader)?;
        if response.starts_with("{\"ok\":true,\"stream\":true") {
            // Streamed response: header already read; keep reading row
            // frames until the first non-frame line — the footer.
            loop {
                let next = read_response_line(&mut reader)?;
                let is_frame = next.starts_with("{\"rows\":");
                response.push('\n');
                response.push_str(&next);
                if !is_frame {
                    break;
                }
            }
        }
        responses.push(response);
    }
    Ok(responses)
}

/// Reads one trimmed response line, treating EOF as an error.
fn read_response_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut response = String::new();
    if reader.read_line(&mut response)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection before responding",
        ));
    }
    Ok(response.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuation_lines_only_for_batch() {
        assert_eq!(continuation_lines("STATS"), 0);
        assert_eq!(continuation_lines("QUERY target=x pattern=1;0;0"), 0);
        assert_eq!(continuation_lines("BATCH target=x n=5"), 5);
        assert_eq!(continuation_lines("batch n=2 target=x"), 2);
        assert_eq!(continuation_lines("BATCH target=x"), 0);
    }
}

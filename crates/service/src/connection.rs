//! Transport-generic protocol handling: one connection, one step at a time.
//!
//! [`Connection`] owns the per-connection request/response loop that used to
//! live inside the TCP server, generic over any [`BufRead`] reader and
//! [`Write`] writer.  The TCP front end drives it over a socket
//! ([`crate::server`]); the deterministic simulator drives the *same code*
//! over in-memory fault-injecting transports — which is the point: the
//! simulator exercises the real protocol surface, not a reimplementation.
//!
//! [`Connection::step`] processes exactly one request (a `BATCH` header
//! consumes its continuation lines in the same step; a streamed `QUERY`
//! writes header, row frames and footer in the same step) and reports
//! whether the connection continues, closed, or asked the server to shut
//! down.  Stepping granularity is what lets the simulator interleave many
//! virtual clients deterministically from a seed.

use crate::json::Json;
use crate::protocol::{
    batch_response, error_response, explain_analyze_response, explain_response, load_response,
    metrics_response, parse_batch_query, parse_command, query_response, shutdown_response,
    stats_response, stream_footer_response, stream_header_response, stream_rows_frame, Command,
    MAX_BATCH_QUERIES, MAX_REQUEST_LINE_BYTES,
};
use crate::{EmitMode, QuerySet, Service, ServiceError, StatsSnapshot, StreamHeader, StreamSink};
use sge_graph::NodeId;
use sge_obs::{EventLog, Gauge};
use sge_util::Clock;
use std::io::{BufRead, Read, Write};
use std::sync::Arc;

/// The execution plane a [`Connection`] dispatches protocol requests to.
///
/// Two implementations exist: [`Service`] (one registry, one process — the
/// classic single-node server) and the scatter-gather
/// [`crate::coordinator::Coordinator`] (fans requests out over in-process
/// shard services and merges their responses).  The front ends
/// ([`crate::server::Server`], the event server, the simulator) are generic
/// over this trait, so every transport serves both shapes through the same
/// protocol loop.
///
/// Each `*_json` method returns the final single-line response with errors
/// already folded to `{"ok":false,...}`; only
/// [`Backend::query_stream_json`] distinguishes errors, because a streamed
/// query that already wrote its header cannot fall back to a one-line
/// error.
pub trait Backend: Send + Sync {
    /// Serves `LOAD`: registers the file under `name` and reports the
    /// loaded shape (or an error response).
    fn load_json(&self, name: &str, path: &str, bitmap_cap: Option<usize>) -> Json;
    /// Serves a buffered `QUERY`.
    fn query_json(&self, target: &str, spec: &crate::QuerySpec) -> Json;
    /// Serves a streaming `QUERY`: the header and row frames go through
    /// `sink`; on success the *footer* response is returned for the caller
    /// to write.  `Err(ServiceError::Io)` means the sink failed before the
    /// header went out (the connection is dead); any other error is a
    /// pre-run failure the caller folds to a single error line.
    fn query_stream_json(
        &self,
        target: &str,
        spec: &crate::QuerySpec,
        sink: &mut dyn StreamSink,
    ) -> Result<Json, ServiceError>;
    /// Serves `EXPLAIN`.
    fn explain_json(&self, target: &str, spec: &crate::QuerySpec) -> Json;
    /// Serves `EXPLAIN ANALYZE`.
    fn explain_analyze_json(&self, target: &str, spec: &crate::QuerySpec) -> Json;
    /// Serves a parsed `BATCH`.
    fn batch_json(&self, set: &QuerySet) -> Json;
    /// Serves `STATS`.
    fn stats_json(&self) -> Json;
    /// Serves `METRICS`.
    fn metrics_json(&self) -> Json;
    /// The clock the backend measures latencies on; front ends reuse it for
    /// drain deadlines so everything stays on one (possibly virtual) time
    /// source.
    fn clock(&self) -> Arc<dyn Clock>;
    /// Attaches the front end's shared event log.
    fn set_event_log(&self, log: Arc<EventLog>);
    /// The connections-open gauge the front ends maintain.
    fn connections_gauge(&self) -> Gauge;
    /// Point-in-time service-level counters (the simulator's invariant
    /// checks read these; for a coordinator they are the coordinator-level
    /// counters, not a shard sum).
    fn stats_snapshot(&self) -> StatsSnapshot;
}

impl Backend for Service {
    fn load_json(&self, name: &str, path: &str, bitmap_cap: Option<usize>) -> Json {
        match self.load_target(name, path, bitmap_cap) {
            Ok(info) => load_response(&info),
            Err(err) => error_response(&err),
        }
    }

    fn query_json(&self, target: &str, spec: &crate::QuerySpec) -> Json {
        match self.run_query(target, spec) {
            Ok(outcome) => query_response(&outcome),
            Err(err) => error_response(&err),
        }
    }

    fn query_stream_json(
        &self,
        target: &str,
        spec: &crate::QuerySpec,
        sink: &mut dyn StreamSink,
    ) -> Result<Json, ServiceError> {
        self.run_query_streaming(target, spec, sink)
            .map(|streamed| stream_footer_response(&streamed))
    }

    fn explain_json(&self, target: &str, spec: &crate::QuerySpec) -> Json {
        match self.explain(target, spec) {
            Ok(outcome) => explain_response(&outcome),
            Err(err) => error_response(&err),
        }
    }

    fn explain_analyze_json(&self, target: &str, spec: &crate::QuerySpec) -> Json {
        match self.explain_analyze(target, spec) {
            Ok(outcome) => explain_analyze_response(&outcome),
            Err(err) => error_response(&err),
        }
    }

    fn batch_json(&self, set: &QuerySet) -> Json {
        batch_response(&self.run_batch(set))
    }

    fn stats_json(&self) -> Json {
        stats_response(self)
    }

    fn metrics_json(&self) -> Json {
        metrics_response(self)
    }

    fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(Service::clock(self))
    }

    fn set_event_log(&self, log: Arc<EventLog>) {
        Service::set_event_log(self, log);
    }

    fn connections_gauge(&self) -> Gauge {
        Service::connections_gauge(self)
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats()
    }
}

/// What one [`Connection::step`] call did to the connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// A request was served (or a blank line skipped); more may follow.
    Continue,
    /// The connection is over: clean EOF, or a protocol violation that was
    /// answered with a structured error before closing.
    Closed,
    /// The client issued `SHUTDOWN`; the response has been written and the
    /// caller should stop its accept loop and drain.
    ShutdownRequested,
}

/// One protocol connection over an arbitrary reader/writer pair.
pub struct Connection<R, W> {
    reader: R,
    writer: W,
    line: String,
}

impl<R: BufRead, W: Write> Connection<R, W> {
    /// Wraps a transport pair.
    pub fn new(reader: R, writer: W) -> Self {
        Connection {
            reader,
            writer,
            line: String::new(),
        }
    }

    /// Serves one request from the reader, writing the response(s) to the
    /// writer.  I/O errors terminate the connection (the caller should treat
    /// `Err` as [`StepOutcome::Closed`] with a transport failure).
    pub fn step<B: Backend + ?Sized>(&mut self, service: &B) -> std::io::Result<StepOutcome> {
        match read_bounded_line(&mut self.reader, &mut self.line)? {
            LineRead::Eof => return Ok(StepOutcome::Closed), // client closed
            LineRead::Overflow => {
                // Answer with a structured error, then drop the connection:
                // the rest of the oversized line cannot be resynchronized.
                refuse(&mut self.writer, &line_too_long_error())?;
                return Ok(StepOutcome::Closed);
            }
            LineRead::Invalid => {
                refuse(&mut self.writer, &invalid_utf8_error())?;
                return Ok(StepOutcome::Closed);
            }
            LineRead::Line => {}
        }
        if self.line.trim().is_empty() {
            return Ok(StepOutcome::Continue);
        }
        let response = match parse_command(&self.line) {
            Ok(Command::Load {
                name,
                path,
                bitmap_cap,
            }) => service.load_json(&name, &path, bitmap_cap),
            Ok(Command::Query { target, spec }) if spec.emit == EmitMode::Stream => {
                let mut sink = WriterSink {
                    writer: &mut self.writer,
                };
                match service.query_stream_json(&target, &spec, &mut sink) {
                    Ok(footer) => {
                        // A dead client makes this write fail, which ends the
                        // connection — exactly what a footer to nobody needs.
                        writeln!(self.writer, "{}", footer.render())?;
                        self.writer.flush()?;
                        return Ok(StepOutcome::Continue);
                    }
                    // The header never went out (client vanished first):
                    // nothing ran, drop the connection.
                    Err(ServiceError::Io(err)) => return Err(err),
                    // Pre-run failures (unknown target, parse error) are a
                    // normal single-line error, like a buffered query.
                    Err(err) => error_response(&err),
                }
            }
            Ok(Command::Query { target, spec }) => service.query_json(&target, &spec),
            Ok(Command::Explain { target, spec }) => service.explain_json(&target, &spec),
            Ok(Command::ExplainAnalyze { target, spec }) => {
                service.explain_analyze_json(&target, &spec)
            }
            Ok(Command::Batch { target, count }) => {
                match read_batch(&mut self.reader, target, count)? {
                    BatchRead::Set(set) => service.batch_json(&set),
                    BatchRead::Failed(err) => error_response(&err),
                    BatchRead::Overflow => {
                        refuse(&mut self.writer, &line_too_long_error())?;
                        return Ok(StepOutcome::Closed);
                    }
                }
            }
            Ok(Command::Stats) => service.stats_json(),
            Ok(Command::Metrics) => service.metrics_json(),
            Ok(Command::Shutdown) => {
                writeln!(self.writer, "{}", shutdown_response().render())?;
                self.writer.flush()?;
                return Ok(StepOutcome::ShutdownRequested);
            }
            Err(err) => {
                // A malformed BATCH header still announced continuation
                // lines (the client sends them regardless); consume them so
                // they are not misread as top-level commands.  The announced
                // count comes from the *unvalidated* header, so the drain is
                // capped — a header announcing more than the cap closes the
                // connection instead of pinning the handler forever.
                let announced = crate::client::continuation_lines(&self.line);
                if announced > MAX_BATCH_QUERIES {
                    let err = ServiceError::Protocol(format!(
                        "malformed BATCH header announces {announced} continuation lines \
                         (cap {MAX_BATCH_QUERIES}); closing connection"
                    ));
                    refuse(&mut self.writer, &err)?;
                    return Ok(StepOutcome::Closed);
                }
                let mut continuation = String::new();
                for _ in 0..announced {
                    match read_bounded_line(&mut self.reader, &mut continuation)? {
                        LineRead::Eof => break,
                        LineRead::Overflow => {
                            refuse(&mut self.writer, &line_too_long_error())?;
                            return Ok(StepOutcome::Closed);
                        }
                        // Drained lines are never parsed; any bytes do.
                        LineRead::Invalid | LineRead::Line => {}
                    }
                }
                error_response(&err)
            }
        };
        writeln!(self.writer, "{}", response.render())?;
        self.writer.flush()?;
        Ok(StepOutcome::Continue)
    }
}

/// Outcome of one bounded request-line read.
enum LineRead {
    /// Clean end of stream.
    Eof,
    /// A complete line (newline seen within the cap).
    Line,
    /// The cap was hit before a newline arrived.
    Overflow,
    /// The line fit the cap but is not valid UTF-8.
    Invalid,
}

/// Reads one request line through a [`Read::take`] guard so an unterminated
/// line cannot grow past [`MAX_REQUEST_LINE_BYTES`].
///
/// Bytes are read raw (`read_until`) and UTF-8 validated *after* the length
/// check: validating first would turn a cap boundary that splits a
/// multi-byte character into an `InvalidData` I/O error, silently dropping
/// the connection instead of answering the documented structured error.
fn read_bounded_line<R: BufRead>(reader: &mut R, line: &mut String) -> std::io::Result<LineRead> {
    line.clear();
    let mut bytes = Vec::new();
    let read = (&mut *reader)
        .take(MAX_REQUEST_LINE_BYTES as u64 + 1)
        .read_until(b'\n', &mut bytes)?;
    if read == 0 {
        return Ok(LineRead::Eof);
    }
    if read > MAX_REQUEST_LINE_BYTES {
        return Ok(LineRead::Overflow);
    }
    match String::from_utf8(bytes) {
        Ok(text) => {
            *line = text;
            Ok(LineRead::Line)
        }
        Err(_) => Ok(LineRead::Invalid),
    }
}

fn line_too_long_error() -> ServiceError {
    ServiceError::Protocol(format!(
        "request line exceeds {MAX_REQUEST_LINE_BYTES} bytes; closing connection"
    ))
}

fn invalid_utf8_error() -> ServiceError {
    ServiceError::Protocol("request line is not valid UTF-8; closing connection".to_string())
}

/// Writes one structured error line before the caller drops the connection.
fn refuse<W: Write>(writer: &mut W, err: &ServiceError) -> std::io::Result<()> {
    writeln!(writer, "{}", error_response(err).render())?;
    writer.flush()
}

/// [`StreamSink`] over the connection writer: one JSON line per call.
struct WriterSink<'a, W: Write> {
    writer: &'a mut W,
}

impl<W: Write> StreamSink for WriterSink<'_, W> {
    fn begin(&mut self, header: &StreamHeader) -> std::io::Result<()> {
        writeln!(self.writer, "{}", stream_header_response(header).render())?;
        self.writer.flush()
    }

    fn rows(&mut self, rows: &[Vec<NodeId>]) -> std::io::Result<()> {
        writeln!(self.writer, "{}", stream_rows_frame(rows).render())?;
        self.writer.flush()
    }
}

/// Outcome of reading a batch's continuation lines.
enum BatchRead {
    /// All lines parsed.
    Set(QuerySet),
    /// At least one line failed to parse (all lines were still consumed so
    /// the connection stays in sync).
    Failed(ServiceError),
    /// A continuation line overflowed the request-line cap; the connection
    /// cannot be resynchronized and must be dropped.
    Overflow,
}

/// Reads the `count` continuation lines of a `BATCH` request.
///
/// All `count` lines are consumed even when one fails to parse — bailing
/// early would leave the remaining continuation lines in the stream to be
/// misread as top-level commands, desynchronizing the request/response
/// pairing for the rest of the connection.  (`count` was validated against
/// [`MAX_BATCH_QUERIES`] by the protocol parser.)
fn read_batch<R: BufRead>(
    reader: &mut R,
    target: String,
    count: usize,
) -> std::io::Result<BatchRead> {
    let mut set = QuerySet::new(target);
    let mut first_error = None;
    let mut line = String::new();
    for index in 0..count {
        match read_bounded_line(reader, &mut line)? {
            LineRead::Eof => {
                return Ok(BatchRead::Failed(ServiceError::Protocol(format!(
                    "connection closed after {index} of {count} batch query lines"
                ))));
            }
            LineRead::Overflow => return Ok(BatchRead::Overflow),
            LineRead::Invalid => {
                // The newline framing held, so the connection stays in sync;
                // the garbage line just fails like any unparsable query.
                first_error = first_error.or(Some(invalid_utf8_error()));
                continue;
            }
            LineRead::Line => {}
        }
        match parse_batch_query(&line) {
            Ok(spec) => {
                set.push(spec);
            }
            Err(err) => first_error = first_error.or(Some(err)),
        }
    }
    Ok(match first_error {
        Some(err) => BatchRead::Failed(err),
        None => BatchRead::Set(set),
    })
}

//! The scatter-gather coordination plane: one client-facing [`Backend`]
//! fanning requests out over in-process shard [`Service`]s.
//!
//! `LOAD` partitions the target with the degree-aware vertex-cut partitioner
//! ([`sge_graph::Partition`]) and registers one compacted shard graph — with
//! its owned-vertex set and replication radius — on every shard service.
//! Each shard keeps its own registry, prepared cache, metrics registry and
//! admission semaphore; only the **label interner** is shared, so a pattern
//! parsed on any shard agrees with every shard's label numbering.
//!
//! `QUERY` fans out to every shard, where rooted plans restrict the plan
//! root to shard-owned vertices; because ownership partitions the nodes and
//! every pattern within the replication radius is fully visible from an
//! owned root, the per-shard match sets are **disjoint and complete** — the
//! coordinator merges by remapping shard-local node ids to global ids and
//! concatenating, with no cross-shard deduplication.
//!
//! Streamed queries run one thread per shard, bridged over bounded channels;
//! the coordinator forwards frames to the client strictly in shard order on
//! the calling thread (deterministic byte output for the simulator) and
//! cancels the remaining shards cooperatively when the client disconnects.
//!
//! The coordinator keeps its own `coordinator.*` stats family (admission
//! waits, latencies, stream counters), strictly separate from each shard's
//! `service.*` family — a coordinator-level admission wait is never
//! double-counted as a shard-level one.

use crate::json::Json;
use crate::protocol::{
    batch_response, error_response, explain_analyze_response, explain_response, load_response,
    metrics_json, query_response, stats_fields, stream_footer_response,
};
use crate::registry::SharedInterner;
use crate::semaphore;
use crate::{
    Backend, BatchOutcome, GraphInfo, GraphRegistry, QueryOutcome, QuerySet, QuerySpec, Service,
    ServiceConfig, ServiceError, ServiceStats, StatsSnapshot, StreamHeader, StreamSink,
    StreamedQueryOutcome, MAX_STREAM_CHUNK,
};
use sge_graph::io::parse_graph_with_interner;
use sge_graph::{NodeId, Partition, PartitionSpec};
use sge_obs::{EventLog, Gauge, HistogramSummary, MetricValue, MetricsRegistry};
use sge_util::{Clock, SystemClock};
use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex, RwLock};

/// Frames buffered per shard stream before the producing shard blocks:
/// bounds coordinator memory at `shards * STREAM_BUFFER_FRAMES * chunk` rows
/// regardless of result cardinality.
const STREAM_BUFFER_FRAMES: usize = 16;

/// Everything the coordinator remembers about one partitioned target.
struct TargetState {
    /// Full (unsharded) node count, for `STATS`/`LOAD` reporting.
    nodes: usize,
    /// Full (unsharded) directed edge count.
    edges: usize,
    /// Per-shard local-id → global-id tables (indexed by shard).
    remaps: Vec<Arc<Vec<NodeId>>>,
}

/// The scatter-gather front: owns one [`Service`] per shard and implements
/// [`Backend`] by fanning out and merging.  See module docs.
pub struct Coordinator {
    shards: Vec<Arc<Service>>,
    targets: RwLock<HashMap<String, TargetState>>,
    partition_spec: PartitionSpec,
    interner: SharedInterner,
    stats: ServiceStats,
    metrics: MetricsRegistry,
    admission: semaphore::Semaphore,
    clock: Arc<dyn Clock>,
    connections: Gauge,
    config: ServiceConfig,
    event_log: RwLock<Option<Arc<EventLog>>>,
}

impl Coordinator {
    /// A coordinator over `shards` in-process shard services, on the real
    /// system clock and the default partition knobs.
    pub fn new(shards: usize, config: ServiceConfig) -> Self {
        Coordinator::with_clock(
            config,
            Arc::new(SystemClock::new()),
            PartitionSpec::new(shards),
        )
    }

    /// Full-control constructor: clock injection (the simulator's virtual
    /// clock flows to every shard, so all latencies stay deterministic) and
    /// explicit partition knobs (`spec.shards` decides the shard count).
    pub fn with_clock(config: ServiceConfig, clock: Arc<dyn Clock>, spec: PartitionSpec) -> Self {
        let interner: SharedInterner = Arc::new(Mutex::new(HashMap::new()));
        let shards: Vec<Arc<Service>> = (0..spec.shards.max(1))
            .map(|_| {
                Arc::new(Service::with_clock_and_registry(
                    config,
                    Arc::clone(&clock),
                    GraphRegistry::with_interner(Arc::clone(&interner)),
                ))
            })
            .collect();
        let metrics = MetricsRegistry::new();
        let stats = ServiceStats::with_registry_prefixed(&metrics, "coordinator");
        let connections = metrics.gauge("coordinator.connections_open");
        Coordinator {
            shards,
            targets: RwLock::new(HashMap::new()),
            partition_spec: spec,
            interner,
            stats,
            metrics,
            admission: semaphore::Semaphore::new(config.max_in_flight.max(1)),
            clock,
            connections,
            config,
            event_log: RwLock::new(None),
        }
    }

    /// Number of shards this coordinator fans out over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard services, in shard order (tests and the metrics
    /// aggregation read these).
    pub fn shards(&self) -> &[Arc<Service>] {
        &self.shards
    }

    /// The partition knobs `LOAD` applies.
    pub fn partition_spec(&self) -> &PartitionSpec {
        &self.partition_spec
    }

    /// The coordinator's own metrics registry (`coordinator.*`); shard
    /// metrics live in each shard's registry and are aggregated under
    /// `shard.*` only at `METRICS` time.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A point-in-time snapshot of the coordinator-level counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn log_event(&self, line: &str) {
        if let Some(log) = self
            .event_log
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .as_ref()
        {
            log.record(line);
        }
    }

    /// Loads and partitions a target file (the sharded `LOAD` verb): parses
    /// once through the shared interner, partitions with the configured
    /// [`PartitionSpec`], and registers one compacted shard graph per shard
    /// service.  Returns the aggregate info (full node/edge counts, bitmap
    /// footprints summed over shards, `capped` when **any** shard capped)
    /// plus the per-shard infos in shard order.
    pub fn load_target(
        &self,
        name: &str,
        path: impl AsRef<std::path::Path>,
        bitmap_cap: Option<usize>,
    ) -> Result<(GraphInfo, Vec<GraphInfo>), ServiceError> {
        let mut config = self.config.bitmaps;
        if let Some(cap) = bitmap_cap {
            config.max_bytes = cap;
        }
        let text = std::fs::read_to_string(path).map_err(ServiceError::Io)?;
        let graph = {
            let mut interner = self
                .interner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            parse_graph_with_interner(&text, &mut interner)?
        };
        Ok(self.insert_partitioned(name, graph, &config))
    }

    /// Partitions and registers an in-memory graph under the coordinator's
    /// default bitmap config — the simulator's entry point (scenarios never
    /// touch the filesystem).
    pub fn insert_target(
        &self,
        name: &str,
        graph: sge_graph::Graph,
    ) -> (GraphInfo, Vec<GraphInfo>) {
        self.insert_partitioned(name, graph, &self.config.bitmaps)
    }

    fn insert_partitioned(
        &self,
        name: &str,
        graph: sge_graph::Graph,
        config: &sge_graph::BitmapConfig,
    ) -> (GraphInfo, Vec<GraphInfo>) {
        let nodes = graph.num_nodes();
        let edges = graph.num_edges();
        let partition = Partition::new(&graph, &self.partition_spec);
        let mut shard_infos = Vec::with_capacity(self.shards.len());
        let mut remaps = Vec::with_capacity(self.shards.len());
        for (service, shard) in self.shards.iter().zip(partition.shards) {
            let info = service.registry().insert_shard(
                name,
                shard.graph,
                config,
                Arc::new(shard.owned),
                partition.replication_hops,
            );
            remaps.push(Arc::new(shard.to_global));
            shard_infos.push(info);
        }
        for (index, info) in shard_infos.iter().enumerate() {
            if info.bitmap_capped {
                self.log_event(
                    &Json::obj(vec![
                        ("event", Json::str("shard_bitmap_cap_fallback")),
                        ("target", Json::str(name)),
                        ("shard", Json::U64(index as u64)),
                        ("cap_bytes", Json::U64(config.max_bytes as u64)),
                    ])
                    .render(),
                );
            }
        }
        self.targets
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(
                name.to_string(),
                TargetState {
                    nodes,
                    edges,
                    remaps,
                },
            );
        let total = GraphInfo {
            name: name.to_string(),
            nodes,
            edges,
            bitmap_rows: shard_infos.iter().map(|i| i.bitmap_rows).sum(),
            bitmap_bytes: shard_infos.iter().map(|i| i.bitmap_bytes).sum(),
            bitmap_capped: shard_infos.iter().any(|i| i.bitmap_capped),
        };
        (total, shard_infos)
    }

    fn remaps_for(&self, target: &str) -> Result<Vec<Arc<Vec<NodeId>>>, ServiceError> {
        self.targets
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(target)
            .map(|state| state.remaps.clone())
            .ok_or_else(|| ServiceError::UnknownTarget(target.to_string()))
    }

    /// Acquires a coordinator-level admission permit, recording the wait
    /// under `coordinator.admission*` — the shard services record their own
    /// waits under `service.*`, and the two families never alias.
    fn admit(&self) -> semaphore::Permit<'_> {
        let wait_started = self.clock.now();
        let permit = self.admission.acquire();
        let waited = self.clock.now().saturating_sub(wait_started);
        self.stats.record_admission_wait(waited.as_secs_f64());
        permit
    }

    /// Executes one buffered query on every shard and merges: counts sum,
    /// collected mappings are remapped to global ids, concatenated and
    /// sorted (byte-identical to the unsharded engine's sorted collection on
    /// complete runs), `cache_hit` is the conjunction.  Returns the merged
    /// outcome plus the per-shard outcomes in shard order.
    pub fn run_query(
        &self,
        target: &str,
        spec: &QuerySpec,
    ) -> Result<(QueryOutcome, Vec<QueryOutcome>), ServiceError> {
        let started = self.clock.now();
        let result = self.run_query_inner(target, spec, started);
        if result.is_err() {
            self.stats.record_error();
        }
        result
    }

    fn run_query_inner(
        &self,
        target: &str,
        spec: &QuerySpec,
        started: std::time::Duration,
    ) -> Result<(QueryOutcome, Vec<QueryOutcome>), ServiceError> {
        let remaps = self.remaps_for(target)?;
        let _permit = self.admit();
        let mut per_shard = Vec::with_capacity(self.shards.len());
        let mut all_mappings: Vec<Vec<NodeId>> = Vec::new();
        for (index, shard) in self.shards.iter().enumerate() {
            let mut outcome = shard.run_query(target, spec)?;
            let map = &remaps[index];
            for mapping in &mut outcome.outcome.mappings {
                for node in mapping.iter_mut() {
                    *node = map[*node as usize];
                }
            }
            all_mappings.append(&mut outcome.outcome.mappings);
            per_shard.push(outcome);
        }
        let mut merged = merge_query_outcomes(&per_shard);
        all_mappings.sort_unstable();
        if spec.run.collect_mappings > 0 {
            all_mappings.truncate(spec.run.collect_mappings);
        }
        merged.outcome.mappings = all_mappings;
        merged.latency_seconds = self.clock.now().saturating_sub(started).as_secs_f64();
        self.stats
            .record_query(merged.outcome.matches, merged.latency_seconds);
        Ok((merged, per_shard))
    }

    /// Executes one streamed query with scatter-gather delivery: one thread
    /// per shard enumerates into a bounded channel (rows remapped to global
    /// ids shard-side), and the calling thread forwards frames to `sink`
    /// strictly in shard order.  All shard headers are collected **before**
    /// the merged header goes out, so a pre-run failure on any shard still
    /// degrades to a single error line.  A failing `sink` write cancels the
    /// remaining shards cooperatively.  Returns the merged outcome plus the
    /// per-shard outcomes (whose `rows_sent` count shard-side handoffs).
    pub fn run_query_streaming(
        &self,
        target: &str,
        spec: &QuerySpec,
        sink: &mut dyn StreamSink,
    ) -> Result<(StreamedQueryOutcome, Vec<StreamedQueryOutcome>), ServiceError> {
        let started = self.clock.now();
        let result = self.run_query_streaming_inner(target, spec, sink, started);
        if result.is_err() {
            self.stats.record_error();
        }
        result
    }

    fn run_query_streaming_inner(
        &self,
        target: &str,
        spec: &QuerySpec,
        sink: &mut dyn StreamSink,
        started: std::time::Duration,
    ) -> Result<(StreamedQueryOutcome, Vec<StreamedQueryOutcome>), ServiceError> {
        let remaps = self.remaps_for(target)?;
        let _permit = self.admit();
        let mut receivers = Vec::with_capacity(self.shards.len());
        let mut handles = Vec::with_capacity(self.shards.len());
        for (index, shard) in self.shards.iter().enumerate() {
            let (tx, rx) = sync_channel::<ShardMsg>(STREAM_BUFFER_FRAMES);
            let shard = Arc::clone(shard);
            let to_global = Arc::clone(&remaps[index]);
            let target = target.to_string();
            let spec = spec.clone();
            handles.push(std::thread::spawn(move || {
                let mut sink = ChannelSink { tx, to_global };
                shard.run_query_streaming(&target, &spec, &mut sink)
            }));
            receivers.push(rx);
        }

        // Phase 1: every shard must announce its header before the merged
        // header goes to the client — a shard that fails pre-run (radius
        // violation, bad pattern) never opens its stream, and the whole
        // query must then answer with one error line, not a broken stream.
        let mut headers = Vec::with_capacity(receivers.len());
        for rx in &receivers {
            match rx.recv() {
                Ok(ShardMsg::Begin(header)) => headers.push(header),
                Ok(ShardMsg::Rows(_)) | Err(_) => break,
            }
        }
        if headers.len() < receivers.len() {
            drop(receivers); // sever the bridges so in-flight shards cancel
            let mut first_err = None;
            for handle in handles {
                if let Ok(Err(err)) = handle.join() {
                    first_err = first_err.or(Some(err));
                }
            }
            return Err(first_err.unwrap_or_else(|| {
                ServiceError::Protocol("shard stream ended before its header".to_string())
            }));
        }

        let chunk = spec.chunk.clamp(1, MAX_STREAM_CHUNK);
        let header = StreamHeader {
            target: target.to_string(),
            chunk,
            cache_hit: headers.iter().all(|h| h.cache_hit),
            pattern_hash: headers[0].pattern_hash,
            algorithm: headers[0].algorithm,
            strategy: headers[0].strategy,
            scheduler: headers[0].scheduler,
            routed: headers[0].routed,
        };
        if let Err(err) = sink.begin(&header) {
            drop(receivers);
            for handle in handles {
                let _ = handle.join();
            }
            // The client vanished before the header went out: nothing of the
            // stream reached the wire, so the connection is simply dead.
            return Err(ServiceError::Io(err));
        }

        // Phase 2: forward frames strictly in shard order on this thread —
        // deterministic output bytes, and the bounded channels throttle the
        // shards we have not reached yet.
        let mut rows_sent: u64 = 0;
        let mut client_alive = true;
        'shards: for rx in &receivers {
            while let Ok(msg) = rx.recv() {
                let ShardMsg::Rows(rows) = msg else { continue };
                if sink.rows(&rows).is_ok() {
                    rows_sent += rows.len() as u64;
                } else {
                    client_alive = false;
                    break 'shards;
                }
            }
        }
        // Dropping the receivers makes every still-streaming shard's next
        // send fail, which its service surfaces as a cooperative cancel.
        drop(receivers);

        // Phase 3: join and merge the per-shard outcomes.
        let mut per_shard = Vec::with_capacity(handles.len());
        for handle in handles {
            if let Ok(Ok(outcome)) = handle.join() {
                per_shard.push(outcome);
            }
        }
        let cancelled = !client_alive
            || per_shard.len() < self.shards.len()
            || per_shard.iter().any(|s| s.cancelled);
        let queries: Vec<QueryOutcome> = per_shard.iter().map(|s| s.query.clone()).collect();
        let mut merged_query = merge_query_outcomes(&queries);
        merged_query.latency_seconds = self.clock.now().saturating_sub(started).as_secs_f64();
        self.stats
            .record_query(merged_query.outcome.matches, merged_query.latency_seconds);
        self.stats.record_stream(rows_sent, cancelled);
        Ok((
            StreamedQueryOutcome {
                query: merged_query,
                rows_sent,
                cancelled,
            },
            per_shard,
        ))
    }

    /// Runs a [`QuerySet`] through the merged query path, one query at a
    /// time (each query already fans out over every shard).
    pub fn run_batch(&self, set: &QuerySet) -> BatchOutcome {
        let started = self.clock.now();
        let results = set
            .queries
            .iter()
            .map(|spec| self.run_query(&set.target, spec).map(|(merged, _)| merged))
            .collect();
        let wall_seconds = self.clock.now().saturating_sub(started).as_secs_f64();
        self.stats.record_batch();
        BatchOutcome {
            target: set.target.clone(),
            results,
            wall_seconds,
            workers: 1,
        }
    }
}

/// Merges per-shard query outcomes: counts and kernel usage sum, flags OR,
/// `cache_hit` ANDs, `workers` is the per-shard maximum, and identity fields
/// (target, hash, algorithm/strategy/scheduler) come from shard 0 — every
/// shard prepared the same pattern under the same variant.  Mappings are
/// **not** merged here (the buffered path remaps and sorts them itself).
fn merge_query_outcomes(outcomes: &[QueryOutcome]) -> QueryOutcome {
    let mut merged = outcomes[0].clone();
    merged.outcome.mappings.clear();
    for outcome in &outcomes[1..] {
        let o = &outcome.outcome;
        merged.cache_hit &= outcome.cache_hit;
        merged.routed |= outcome.routed;
        merged.outcome.matches += o.matches;
        merged.outcome.states += o.states;
        merged.outcome.preprocess_seconds += o.preprocess_seconds;
        merged.outcome.match_seconds += o.match_seconds;
        merged.outcome.timed_out |= o.timed_out;
        merged.outcome.limit_hit |= o.limit_hit;
        merged.outcome.cancelled |= o.cancelled;
        merged.outcome.steals += o.steals;
        merged.outcome.steal_requests += o.steal_requests;
        merged.outcome.workers = merged.outcome.workers.max(o.workers);
        merged.outcome.worker_states_stddev = merged
            .outcome
            .worker_states_stddev
            .max(o.worker_states_stddev);
        merged
            .outcome
            .worker_stats
            .extend(o.worker_stats.iter().cloned());
        merged.outcome.kernels.bitmap += o.kernels.bitmap;
        merged.outcome.kernels.gallop += o.kernels.gallop;
        merged.outcome.kernels.merge += o.kernels.merge;
        merged.outcome.kernels.prefilter_rejected += o.kernels.prefilter_rejected;
    }
    merged
}

/// One message over a shard's stream bridge.
enum ShardMsg {
    /// The shard's stream header (always the first message).
    Begin(StreamHeader),
    /// One frame of mappings, already remapped to **global** node ids.
    Rows(Vec<Vec<NodeId>>),
}

/// [`StreamSink`] bridging one shard's stream into the coordinator's
/// bounded channel, remapping local node ids to global on the shard thread.
struct ChannelSink {
    tx: SyncSender<ShardMsg>,
    to_global: Arc<Vec<NodeId>>,
}

impl ChannelSink {
    fn closed() -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "coordinator dropped the shard stream",
        )
    }
}

impl StreamSink for ChannelSink {
    fn begin(&mut self, header: &StreamHeader) -> std::io::Result<()> {
        self.tx
            .send(ShardMsg::Begin(header.clone()))
            .map_err(|_| Self::closed())
    }

    fn rows(&mut self, rows: &[Vec<NodeId>]) -> std::io::Result<()> {
        let remapped = rows
            .iter()
            .map(|mapping| {
                mapping
                    .iter()
                    .map(|&node| self.to_global[node as usize])
                    .collect()
            })
            .collect();
        self.tx
            .send(ShardMsg::Rows(remapped))
            .map_err(|_| Self::closed())
    }
}

/// Appends a `"shards"` array to an object response.
fn push_shards(response: &mut Json, entries: Vec<Json>) {
    if let Json::Obj(pairs) = response {
        pairs.push(("shards".to_string(), Json::Arr(entries)));
    }
}

/// The per-shard breakdown entry of merged QUERY responses and stream
/// footers.
fn shard_query_entry(index: usize, outcome: &QueryOutcome) -> Json {
    Json::obj(vec![
        ("shard", Json::U64(index as u64)),
        ("matches", Json::U64(outcome.outcome.matches)),
        ("states", Json::U64(outcome.outcome.states)),
        ("cache_hit", Json::Bool(outcome.cache_hit)),
        ("latency_seconds", Json::F64(outcome.latency_seconds)),
    ])
}

/// Merges two histogram summaries conservatively: counts sum, the mean is
/// count-weighted, min/max are exact, and the percentiles take the per-shard
/// maximum (an upper bound — per-shard bucket histograms cannot be re-merged
/// exactly from summaries).
fn merge_histograms(a: &HistogramSummary, b: &HistogramSummary) -> HistogramSummary {
    let count = a.count + b.count;
    let mean_seconds = if count == 0 {
        0.0
    } else {
        (a.mean_seconds * a.count as f64 + b.mean_seconds * b.count as f64) / count as f64
    };
    let min_seconds = if a.count == 0 {
        b.min_seconds
    } else if b.count == 0 {
        a.min_seconds
    } else {
        a.min_seconds.min(b.min_seconds)
    };
    HistogramSummary {
        count,
        mean_seconds,
        min_seconds,
        max_seconds: a.max_seconds.max(b.max_seconds),
        p50_seconds: a.p50_seconds.max(b.p50_seconds),
        p90_seconds: a.p90_seconds.max(b.p90_seconds),
        p99_seconds: a.p99_seconds.max(b.p99_seconds),
    }
}

fn merge_metric(into: &mut MetricValue, value: MetricValue) {
    match (into, value) {
        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => *a = merge_histograms(a, &b),
        // Mismatched kinds under one name cannot happen within one process
        // (names are registered with fixed kinds); keep the first.
        _ => {}
    }
}

impl Backend for Coordinator {
    fn load_json(&self, name: &str, path: &str, bitmap_cap: Option<usize>) -> Json {
        match self.load_target(name, path, bitmap_cap) {
            Ok((total, shard_infos)) => {
                let mut response = load_response(&total);
                let entries = shard_infos
                    .iter()
                    .enumerate()
                    .map(|(index, info)| {
                        Json::obj(vec![
                            ("shard", Json::U64(index as u64)),
                            ("nodes", Json::U64(info.nodes as u64)),
                            ("edges", Json::U64(info.edges as u64)),
                            ("bitmap_rows", Json::U64(info.bitmap_rows as u64)),
                            ("bitmap_bytes", Json::U64(info.bitmap_bytes as u64)),
                            ("bitmap_capped", Json::Bool(info.bitmap_capped)),
                        ])
                    })
                    .collect();
                push_shards(&mut response, entries);
                response
            }
            Err(err) => error_response(&err),
        }
    }

    fn query_json(&self, target: &str, spec: &QuerySpec) -> Json {
        match self.run_query(target, spec) {
            Ok((merged, per_shard)) => {
                let mut response = query_response(&merged);
                if let Json::Obj(pairs) = &mut response {
                    let latency_max = per_shard
                        .iter()
                        .map(|s| s.latency_seconds)
                        .fold(0.0, f64::max);
                    pairs.push(("latency_max_seconds".to_string(), Json::F64(latency_max)));
                }
                push_shards(
                    &mut response,
                    per_shard
                        .iter()
                        .enumerate()
                        .map(|(index, outcome)| shard_query_entry(index, outcome))
                        .collect(),
                );
                response
            }
            Err(err) => error_response(&err),
        }
    }

    fn query_stream_json(
        &self,
        target: &str,
        spec: &QuerySpec,
        sink: &mut dyn StreamSink,
    ) -> Result<Json, ServiceError> {
        let (merged, per_shard) = self.run_query_streaming(target, spec, sink)?;
        let mut footer = stream_footer_response(&merged);
        let entries = per_shard
            .iter()
            .enumerate()
            .map(|(index, streamed)| {
                Json::obj(vec![
                    ("shard", Json::U64(index as u64)),
                    ("matches", Json::U64(streamed.query.outcome.matches)),
                    ("states", Json::U64(streamed.query.outcome.states)),
                    ("rows_sent", Json::U64(streamed.rows_sent)),
                    ("cancelled", Json::Bool(streamed.cancelled)),
                    ("cache_hit", Json::Bool(streamed.query.cache_hit)),
                    ("latency_seconds", Json::F64(streamed.query.latency_seconds)),
                ])
            })
            .collect();
        push_shards(&mut footer, entries);
        Ok(footer)
    }

    fn explain_json(&self, target: &str, spec: &QuerySpec) -> Json {
        let mut outcomes = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            match shard.explain(target, spec) {
                Ok(outcome) => outcomes.push(outcome),
                Err(err) => return error_response(&err),
            }
        }
        // The full plan shape comes from shard 0 (all shards plan the same
        // pattern under the same variant); the breakdown carries what
        // differs per shard — cost estimates over each shard's subgraph.
        let mut response = explain_response(&outcomes[0]);
        let entries = outcomes
            .iter()
            .enumerate()
            .map(|(index, outcome)| {
                let plan = outcome.engine.plan();
                Json::obj(vec![
                    ("shard", Json::U64(index as u64)),
                    ("est_total_states", Json::F64(plan.cost.est_total_states)),
                    ("impossible", Json::Bool(outcome.engine.impossible())),
                    ("cache_hit", Json::Bool(outcome.cache_hit)),
                ])
            })
            .collect();
        push_shards(&mut response, entries);
        response
    }

    fn explain_analyze_json(&self, target: &str, spec: &QuerySpec) -> Json {
        let mut outcomes = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            match shard.explain_analyze(target, spec) {
                Ok(outcome) => outcomes.push(outcome),
                Err(err) => return error_response(&err),
            }
        }
        let mut response = explain_analyze_response(&outcomes[0]);
        if let Json::Obj(pairs) = &mut response {
            // Shard 0's own counts stay in place for shape compatibility;
            // the union totals ride alongside.
            let total_matches: u64 = outcomes.iter().map(|o| o.outcome.matches).sum();
            let total_states: u64 = outcomes.iter().map(|o| o.outcome.states).sum();
            pairs.push(("total_matches".to_string(), Json::U64(total_matches)));
            pairs.push(("total_states".to_string(), Json::U64(total_states)));
        }
        let entries = outcomes
            .iter()
            .enumerate()
            .map(|(index, outcome)| {
                Json::obj(vec![
                    ("shard", Json::U64(index as u64)),
                    ("matches", Json::U64(outcome.outcome.matches)),
                    ("states", Json::U64(outcome.outcome.states)),
                    ("cache_hit", Json::Bool(outcome.cache_hit)),
                    ("latency_seconds", Json::F64(outcome.latency_seconds)),
                ])
            })
            .collect();
        push_shards(&mut response, entries);
        response
    }

    fn batch_json(&self, set: &QuerySet) -> Json {
        batch_response(&self.run_batch(set))
    }

    fn stats_json(&self) -> Json {
        let snapshot = self.stats.snapshot();
        let targets: Vec<Json> = {
            let targets = self
                .targets
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let mut entries: Vec<(&String, &TargetState)> = targets.iter().collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            entries
                .into_iter()
                .map(|(name, state)| {
                    Json::obj(vec![
                        ("name", Json::str(name.clone())),
                        ("nodes", Json::U64(state.nodes as u64)),
                        ("edges", Json::U64(state.edges as u64)),
                    ])
                })
                .collect()
        };
        let mut pairs = vec![
            ("ok", Json::Bool(true)),
            ("coordinator", Json::Bool(true)),
            ("shard_count", Json::U64(self.shards.len() as u64)),
            ("queries_served", Json::U64(snapshot.queries_served)),
            ("batches_served", Json::U64(snapshot.batches_served)),
            ("total_matches", Json::U64(snapshot.total_matches)),
            ("errors", Json::U64(snapshot.errors)),
            ("streams_served", Json::U64(snapshot.streams_served)),
            ("rows_streamed", Json::U64(snapshot.rows_streamed)),
            ("streams_cancelled", Json::U64(snapshot.streams_cancelled)),
            ("admissions", Json::U64(snapshot.admissions)),
            (
                "admission_wait_seconds",
                Json::F64(snapshot.admission_wait_seconds),
            ),
            ("connections_open", Json::U64(self.connections.value())),
            ("targets", Json::Arr(targets)),
            (
                "latency",
                Json::obj(vec![
                    ("count", Json::U64(snapshot.queries_served)),
                    ("mean_seconds", Json::F64(snapshot.latency_mean_seconds)),
                    ("min_seconds", Json::F64(snapshot.latency_min_seconds)),
                    ("max_seconds", Json::F64(snapshot.latency_max_seconds)),
                    ("p50_seconds", Json::F64(snapshot.latency_p50_seconds)),
                    ("p90_seconds", Json::F64(snapshot.latency_p90_seconds)),
                    ("p99_seconds", Json::F64(snapshot.latency_p99_seconds)),
                ]),
            ),
        ];
        let shard_entries: Vec<Json> = self
            .shards
            .iter()
            .map(|shard| Json::obj(stats_fields(shard)))
            .collect();
        pairs.push(("shards", Json::Arr(shard_entries)));
        Json::obj(pairs)
    }

    fn metrics_json(&self) -> Json {
        // The coordinator's own `coordinator.*` cells, plus every shard's
        // metrics aggregated across shards under a `shard.` prefix —
        // counters and gauges sum, histograms merge conservatively.
        let mut aggregated: BTreeMap<String, MetricValue> = BTreeMap::new();
        for shard in &self.shards {
            for (name, value) in shard.metrics_snapshot() {
                match aggregated.entry(format!("shard.{name}")) {
                    std::collections::btree_map::Entry::Occupied(mut entry) => {
                        merge_metric(entry.get_mut(), value);
                    }
                    std::collections::btree_map::Entry::Vacant(entry) => {
                        entry.insert(value);
                    }
                }
            }
        }
        let mut snapshot = self.metrics.snapshot();
        snapshot.extend(aggregated);
        snapshot.sort_by(|a, b| a.0.cmp(&b.0));
        metrics_json(snapshot)
    }

    fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    fn set_event_log(&self, log: Arc<EventLog>) {
        for shard in &self.shards {
            shard.set_event_log(Arc::clone(&log));
        }
        *self
            .event_log
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(log);
    }

    fn connections_gauge(&self) -> Gauge {
        self.connections.clone()
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }
}

//! The event-driven TCP front end.
//!
//! One thread runs a readiness loop over a nonblocking listener, a wake
//! pipe and every client socket (raw `poll(2)` via [`sge_util::poll`] — no
//! crates, no registration lifecycle to leak).  The loop owns *transport*
//! concerns: it frames requests out of whatever bytes the network delivers
//! (a connection's buffer becomes a dispatchable *unit* once the request
//! line — plus, for `BATCH`, its announced continuation lines — has fully
//! arrived), hands each unit to a small worker pool, and drains responses
//! back to the socket under `POLLOUT` backpressure.  The workers own
//! nothing protocol-specific either: they drive the same [`Connection`]
//! state machine the blocking server and the deterministic simulator use,
//! over an in-memory cursor, so parsing, the request-line cap and every
//! error shape stay single-sourced in [`crate::connection`].
//!
//! The payoff is capacity: an idle connection costs one pollfd and two
//! empty buffers instead of a parked thread, so one process holds
//! thousands of keep-alive clients while enumeration runs on the worker
//! pool.  At most one unit per connection is in flight, and the next one
//! is not framed until the previous response has fully drained — a slow
//! reader backpressures its own pipeline, never the loop.
//!
//! `SHUTDOWN` answers, stops accepting, waits for in-flight workers and
//! pending writes up to the drain deadline on the service clock (idle
//! connections hold no half-written response and are abandoned), then
//! returns — the same drain semantics as the blocking [`crate::Server`].

use crate::connection::{Backend, Connection, StepOutcome};
use crate::json::Json;
use crate::protocol::{MAX_BATCH_QUERIES, MAX_REQUEST_LINE_BYTES};
use crate::server::log_event;
use sge_obs::{EventLog, Gauge};
use sge_util::poll::{poll_entries, PollEntry, POLLIN, POLLOUT};
use std::collections::HashMap;
use std::io::{BufReader, Cursor, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long [`EventServer::run`] waits for in-flight work after `SHUTDOWN`.
const DEFAULT_DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Poll timeout while serving: completions arrive through the wake pipe,
/// so the tick only bounds how stale a spurious wakeup can be.
const IDLE_POLL_TIMEOUT_MS: i32 = 500;

/// Poll timeout while draining: short, so the drain deadline on the
/// service clock is observed promptly.
const DRAIN_POLL_TIMEOUT_MS: i32 = 25;

/// Socket read granularity; the loop keeps reading until `WouldBlock`, so
/// this bounds copies, not throughput.
const READ_CHUNK: usize = 16 * 1024;

/// A bound, not-yet-running event-driven server.
pub struct EventServer {
    listener: TcpListener,
    service: Arc<dyn Backend>,
    drain_timeout: Duration,
    event_log: Option<Arc<EventLog>>,
    workers: usize,
}

impl EventServer {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind<B: Backend + 'static>(
        addr: impl ToSocketAddrs,
        service: Arc<B>,
    ) -> std::io::Result<EventServer> {
        Ok(EventServer {
            listener: TcpListener::bind(addr)?,
            service,
            drain_timeout: DEFAULT_DRAIN_TIMEOUT,
            event_log: None,
            workers: default_workers(),
        })
    }

    /// Sets how long `run` waits for in-flight work after `SHUTDOWN`.
    pub fn with_drain_timeout(mut self, timeout: Duration) -> EventServer {
        self.drain_timeout = timeout;
        self
    }

    /// Attaches a structured event log (same lifecycle events as the
    /// blocking server: `listening`, `conn_open`, `conn_close`, `shutdown`,
    /// `drained`).
    pub fn with_event_log(mut self, log: Arc<EventLog>) -> EventServer {
        // Share the log with the service so non-lifecycle events (bitmap
        // cap fallbacks on LOAD) land in the same stream.
        self.service.set_event_log(Arc::clone(&log));
        self.event_log = Some(log);
        self
    }

    /// Sizes the worker pool that executes framed requests (default: one
    /// per core, at least two so a long enumeration cannot starve `STATS`).
    pub fn with_workers(mut self, workers: usize) -> EventServer {
        self.workers = workers.max(1);
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client issues `SHUTDOWN`, then drains.
    pub fn run(self) -> std::io::Result<()> {
        let local_addr = self.listener.local_addr()?;
        self.listener.set_nonblocking(true)?;
        // The wake pipe interrupts `poll` when a worker finishes: the read
        // end joins the poll set, the write end is cloned into every worker.
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;

        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let mut worker_handles = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let job_rx = Arc::clone(&job_rx);
            let completions = Arc::clone(&completions);
            let service = Arc::clone(&self.service);
            let wake = wake_tx.try_clone()?;
            worker_handles.push(std::thread::spawn(move || {
                worker_loop(job_rx, completions, service, wake)
            }));
        }

        log_event(
            self.event_log.as_deref(),
            self.service.as_ref(),
            "listening",
            vec![("addr", Json::str(local_addr.to_string()))],
        );

        let gauge = self.service.connections_gauge();
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_conn_id: u64 = 0;
        let mut shutting_down = false;
        let mut drain_deadline = Duration::MAX;
        let mut clean = true;

        'event_loop: loop {
            // 1. Fold finished work back into connection state.
            let finished: Vec<Completion> = {
                let mut queue = completions.lock().unwrap_or_else(|p| p.into_inner());
                std::mem::take(&mut *queue)
            };
            for done in finished {
                let Some(conn) = conns.get_mut(&done.conn) else {
                    continue; // connection died while its request ran
                };
                conn.busy = false;
                conn.write_buf.extend_from_slice(&done.output);
                match done.outcome {
                    StepOutcome::Continue => {}
                    StepOutcome::Closed => conn.close_after_write = true,
                    StepOutcome::ShutdownRequested => {
                        conn.close_after_write = true;
                        if !shutting_down {
                            shutting_down = true;
                            drain_deadline = self
                                .service
                                .clock()
                                .now()
                                .saturating_add(self.drain_timeout);
                            log_event(
                                self.event_log.as_deref(),
                                self.service.as_ref(),
                                "shutdown",
                                vec![("conn", Json::U64(done.conn))],
                            );
                        }
                    }
                }
                // Common case: the socket is writable right now — flush
                // without waiting a poll round.
                if flush_write(conn).is_err() {
                    conn.dead = true;
                }
            }

            // 2. Frame and dispatch ready requests.  One unit in flight per
            //    connection, and only once the previous response drained.
            if !shutting_down {
                for (&id, conn) in conns.iter_mut() {
                    if conn.busy || conn.dead || conn.close_after_write {
                        continue;
                    }
                    if !conn.write_buf.is_empty() {
                        continue;
                    }
                    if let Some(len) = extract_unit(&conn.read_buf, conn.read_closed) {
                        let bytes: Vec<u8> = conn.read_buf.drain(..len).collect();
                        conn.busy = true;
                        if job_tx.send(Job { conn: id, bytes }).is_err() {
                            conn.dead = true; // workers are gone; nothing can serve this
                        }
                    }
                }
            }

            // 3. Reap connections that are finished.
            let finished_ids: Vec<u64> = conns
                .iter()
                .filter(|(_, conn)| conn.finished())
                .map(|(&id, _)| id)
                .collect();
            for id in finished_ids {
                conns.remove(&id);
                close_conn(&gauge, self.event_log.as_deref(), self.service.as_ref(), id);
            }

            // 4. Drain: exit once nothing is in flight, or at the deadline
            //    on the service clock (idle connections are abandoned).
            if shutting_down {
                let in_flight = conns
                    .values()
                    .any(|conn| conn.busy || !conn.write_buf.is_empty());
                if !in_flight {
                    break 'event_loop;
                }
                if self.service.clock().now() >= drain_deadline {
                    clean = false;
                    break 'event_loop;
                }
            }

            // 5. Build the poll set.  Busy connections are not polled: their
            //    next event is a completion, which arrives via the wake pipe.
            let mut entries = Vec::with_capacity(conns.len() + 2);
            let mut slots: Vec<PollSlot> = Vec::with_capacity(conns.len() + 2);
            if !shutting_down {
                entries.push(PollEntry::new(self.listener.as_raw_fd(), POLLIN));
                slots.push(PollSlot::Listener);
            }
            entries.push(PollEntry::new(wake_rx.as_raw_fd(), POLLIN));
            slots.push(PollSlot::Wake);
            for (&id, conn) in conns.iter() {
                let mut events: i16 = 0;
                if !conn.busy
                    && !conn.read_closed
                    && !conn.close_after_write
                    && conn.write_buf.is_empty()
                {
                    events |= POLLIN;
                }
                if !conn.write_buf.is_empty() {
                    events |= POLLOUT;
                }
                if events != 0 {
                    entries.push(PollEntry::new(conn.stream.as_raw_fd(), events));
                    slots.push(PollSlot::Conn(id));
                }
            }
            let timeout = if shutting_down {
                DRAIN_POLL_TIMEOUT_MS
            } else {
                IDLE_POLL_TIMEOUT_MS
            };
            poll_entries(&mut entries, timeout)?;

            // 6. Handle readiness.
            for (entry, slot) in entries.iter().zip(&slots) {
                match slot {
                    PollSlot::Listener => {
                        if !entry.readable() {
                            continue;
                        }
                        loop {
                            match self.listener.accept() {
                                Ok((stream, peer)) => {
                                    if stream.set_nonblocking(true).is_err() {
                                        continue;
                                    }
                                    next_conn_id += 1;
                                    gauge.inc();
                                    log_event(
                                        self.event_log.as_deref(),
                                        self.service.as_ref(),
                                        "conn_open",
                                        vec![
                                            ("conn", Json::U64(next_conn_id)),
                                            ("peer", Json::str(peer.to_string())),
                                        ],
                                    );
                                    conns.insert(next_conn_id, Conn::new(stream));
                                }
                                Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                                Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                                Err(_) => break, // transient failure; retry next round
                            }
                        }
                    }
                    PollSlot::Wake => {
                        if entry.readable() {
                            let mut sink = [0u8; 64];
                            while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                        }
                    }
                    PollSlot::Conn(id) => {
                        let Some(conn) = conns.get_mut(id) else {
                            continue;
                        };
                        if entry.readable() && fill_read(conn).is_err() {
                            conn.dead = true;
                            continue;
                        }
                        if (entry.writable() || entry.hangup() || entry.error())
                            && flush_write(conn).is_err()
                        {
                            conn.dead = true;
                        }
                    }
                }
            }
        }

        // Stop the workers (closing the job channel ends their recv loop),
        // then account for every abandoned connection.
        drop(job_tx);
        for handle in worker_handles {
            let _ = handle.join();
        }
        let abandoned: Vec<u64> = conns.keys().copied().collect();
        for id in abandoned {
            close_conn(&gauge, self.event_log.as_deref(), self.service.as_ref(), id);
        }
        log_event(
            self.event_log.as_deref(),
            self.service.as_ref(),
            "drained",
            vec![("clean", Json::Bool(clean))],
        );
        Ok(())
    }
}

/// One per core, at least two: a single worker would let one long
/// enumeration starve every other connection's `STATS`/`METRICS`.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}

/// What the poll-set slot at the same index refers to.
enum PollSlot {
    Listener,
    Wake,
    Conn(u64),
}

/// Per-connection state the readiness loop owns.
struct Conn {
    stream: std::net::TcpStream,
    /// Bytes received but not yet framed into a request unit.
    read_buf: Vec<u8>,
    /// Response bytes not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// A worker is executing this connection's current request unit.
    busy: bool,
    /// The peer half-closed (or closed) its sending direction.
    read_closed: bool,
    /// Flush `write_buf`, then close (protocol violation or `SHUTDOWN`).
    close_after_write: bool,
    /// Transport error; drop without further I/O.
    dead: bool,
}

impl Conn {
    fn new(stream: std::net::TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            busy: false,
            read_closed: false,
            close_after_write: false,
            dead: false,
        }
    }

    fn finished(&self) -> bool {
        if self.dead {
            return true;
        }
        if self.busy || !self.write_buf.is_empty() {
            return false;
        }
        self.close_after_write || (self.read_closed && self.read_buf.is_empty())
    }
}

/// One framed request handed to the worker pool.
struct Job {
    conn: u64,
    bytes: Vec<u8>,
}

/// A worker's result: the response bytes plus the state-machine verdict.
struct Completion {
    conn: u64,
    output: Vec<u8>,
    outcome: StepOutcome,
}

/// Executes framed requests: each unit is replayed through the shared
/// [`Connection`] state machine over an in-memory cursor, so the worker
/// produces byte-identical responses to the blocking server.
fn worker_loop(
    jobs: Arc<Mutex<Receiver<Job>>>,
    completions: Arc<Mutex<Vec<Completion>>>,
    service: Arc<dyn Backend>,
    mut wake: UnixStream,
) {
    loop {
        let job = {
            let rx = jobs.lock().unwrap_or_else(|p| p.into_inner());
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // job channel closed: server is done
            }
        };
        let mut output: Vec<u8> = Vec::new();
        let outcome = {
            let mut conn = Connection::new(BufReader::new(Cursor::new(job.bytes)), &mut output);
            // Cursor and Vec cannot fail; an Err here is unreachable, but
            // mapping it to Closed keeps the loop total.
            conn.step(service.as_ref()).unwrap_or(StepOutcome::Closed)
        };
        completions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Completion {
                conn: job.conn,
                output,
                outcome,
            });
        // A full pipe already guarantees a pending wake; any other failure
        // means the loop is gone and the completion dies with it.
        let _ = wake.write(&[1u8]);
    }
}

/// Returns the byte length of the first complete request unit in `buf`, or
/// `None` when more bytes must arrive first.
///
/// A unit is one request line plus, for `BATCH`, the continuation lines its
/// header announces — exactly what [`Connection::step`] consumes.  Three
/// boundary cases dispatch *incomplete* bytes on purpose, because the state
/// machine's bounded reader already produces the documented outcome for
/// them: an unterminated line past the request-line cap (step answers the
/// structured overflow error and closes), a header announcing more
/// continuations than the batch cap (step refuses it without reading them),
/// and EOF (step sees the same truncated stream a blocking reader would).
fn extract_unit(buf: &[u8], read_closed: bool) -> Option<usize> {
    let mut start = 0;
    let mut lines_needed = 1;
    let mut found = 0;
    loop {
        match buf[start..].iter().position(|&b| b == b'\n') {
            Some(offset) => {
                let end = start + offset + 1;
                found += 1;
                if found == 1 {
                    let header = String::from_utf8_lossy(&buf[..end]);
                    let announced = crate::client::continuation_lines(&header);
                    if announced > MAX_BATCH_QUERIES {
                        return Some(end);
                    }
                    lines_needed += announced;
                }
                if found == lines_needed {
                    return Some(end);
                }
                start = end;
            }
            None => {
                return if buf.len() - start > MAX_REQUEST_LINE_BYTES
                    || (read_closed && !buf.is_empty())
                {
                    Some(buf.len())
                } else {
                    None
                };
            }
        }
    }
}

/// Reads everything the socket has (until `WouldBlock`); EOF sets
/// `read_closed` instead of erroring.
fn fill_read(conn: &mut Conn) -> std::io::Result<()> {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                return Ok(());
            }
            Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
            Err(err) if err.kind() == ErrorKind::WouldBlock => return Ok(()),
            Err(err) if err.kind() == ErrorKind::Interrupted => continue,
            Err(err) => return Err(err),
        }
    }
}

/// Writes as much of `write_buf` as the socket accepts.
fn flush_write(conn: &mut Conn) -> std::io::Result<()> {
    let mut written = 0;
    while written < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[written..]) {
            Ok(0) => return Err(ErrorKind::WriteZero.into()),
            Ok(n) => written += n,
            Err(err) if err.kind() == ErrorKind::WouldBlock => break,
            Err(err) if err.kind() == ErrorKind::Interrupted => continue,
            Err(err) => return Err(err),
        }
    }
    conn.write_buf.drain(..written);
    Ok(())
}

/// Accounts for one closed connection: gauge decrement plus lifecycle log.
fn close_conn(gauge: &Gauge, log: Option<&EventLog>, service: &dyn Backend, id: u64) {
    gauge.dec();
    log_event(log, service, "conn_close", vec![("conn", Json::U64(id))]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_unit_waits_for_the_newline() {
        assert_eq!(extract_unit(b"STATS", false), None);
        assert_eq!(extract_unit(b"STATS\n", false), Some(6));
        assert_eq!(extract_unit(b"STATS\nMETRICS\n", false), Some(6));
    }

    #[test]
    fn extract_unit_groups_batch_continuations() {
        let buf = b"BATCH target=k5 n=2\npattern=x\n";
        assert_eq!(extract_unit(buf, false), None, "one continuation missing");
        let full = b"BATCH target=k5 n=2\npattern=x\npattern=y\nNEXT\n";
        assert_eq!(extract_unit(full, false), Some(full.len() - 5));
    }

    #[test]
    fn extract_unit_dispatches_eof_tails_and_overflows() {
        // EOF turns a dangling partial line into a final unit.
        assert_eq!(extract_unit(b"STATS", true), Some(5));
        assert_eq!(extract_unit(b"", true), None);
        // An unterminated line past the cap dispatches so the state machine
        // can answer the structured overflow error.
        let oversized = vec![b'x'; MAX_REQUEST_LINE_BYTES + 1];
        assert_eq!(extract_unit(&oversized, false), Some(oversized.len()));
        // An over-cap announcement dispatches the bare header: step refuses
        // it without waiting for (unbounded) continuations.
        let header = format!("BATCH target=k5 n={}\n", MAX_BATCH_QUERIES + 1);
        assert_eq!(extract_unit(header.as_bytes(), false), Some(header.len()));
    }

    #[test]
    fn extract_unit_handles_interleaved_blank_lines() {
        assert_eq!(extract_unit(b"\nSTATS\n", false), Some(1));
        assert_eq!(extract_unit(b"\r\n", false), Some(2));
    }
}

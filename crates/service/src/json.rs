//! Re-export of the wire plane's single-line JSON encoder.
//!
//! The encoder moved to [`sge_wire::json`] so the coordinator, client and
//! simulator share one codec; this module keeps the historical
//! `sge_service::json::Json` paths working.

pub use sge_wire::json::*;

//! The query-serving subsystem: enumeration as a long-running service.
//!
//! The paper treats each enumeration as a one-shot batch job; this crate
//! turns the library into a service shaped for its one-target/many-patterns
//! workloads (PPIS32, GRAEMLIN32, PDBSv1):
//!
//! * [`GraphRegistry`] loads named target graphs from `.gfu`/`.gfd` files
//!   and owns them (behind [`std::sync::Arc`]) for the process lifetime,
//!   interning node labels through one shared table so every pattern/target
//!   pair agrees on the numbering;
//! * [`PreparedCache`] is a bounded LRU over prepared engines keyed by
//!   *(pattern, target name, algorithm)* — a repeated pattern skips the
//!   domain computation / forward checking / ordering phase entirely;
//! * [`BatchExecutor`] fans a [`QuerySet`] (many patterns, one target) out
//!   over a std-thread worker pool, with every run gated by the service's
//!   global in-flight admission limit;
//! * [`Service`] ties the three together and keeps aggregate statistics
//!   (queries served, total matches, and a latency distribution built on
//!   [`sge_util::LatencyHistogram`]);
//! * [`Server`] is a std-only TCP front end speaking the newline-delimited
//!   text protocol documented in [`protocol`] (`LOAD`, `QUERY`, `BATCH`,
//!   `STATS`, `SHUTDOWN`) with single-line JSON responses, driven by the
//!   `sge-serve` / `sge-client` binaries.
//!
//! Everything is `std`-only: no async runtime, no serialization crates —
//! the JSON responses come from the hand-rolled encoder in [`json`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod client;
pub mod json;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod stats;

mod semaphore;

pub use batch::{BatchExecutor, BatchOutcome, QuerySet};
pub use cache::{CacheStats, PreparedCache};
pub use registry::{GraphInfo, GraphRegistry};
pub use server::Server;
pub use stats::{ServiceStats, StatsSnapshot};

use sge_engine::{EnumerationOutcome, PreparedEngine, RunConfig};
use sge_graph::io::ParseError;
use sge_ri::{Algorithm, CandidateMode};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Errors produced by the serving layer.
#[derive(Debug)]
pub enum ServiceError {
    /// The named target graph is not loaded in the registry.
    UnknownTarget(String),
    /// A graph (target file or query pattern) failed to parse.
    Parse(ParseError),
    /// A malformed protocol request.
    Protocol(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownTarget(name) => write!(f, "unknown target '{name}'"),
            ServiceError::Parse(err) => write!(f, "graph parse error: {err}"),
            ServiceError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServiceError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ParseError> for ServiceError {
    fn from(err: ParseError) -> Self {
        ServiceError::Parse(err)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(err: std::io::Error) -> Self {
        ServiceError::Io(err)
    }
}

/// Sizing knobs of a [`Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Maximum number of prepared engines the [`PreparedCache`] retains.
    pub cache_capacity: usize,
    /// Worker threads a [`BatchExecutor`] uses per batch.
    pub batch_workers: usize,
    /// Global cap on concurrently *executing* enumeration runs (admission
    /// control across all connections and batches).
    pub max_in_flight: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServiceConfig {
            cache_capacity: 64,
            batch_workers: cores,
            max_in_flight: cores.max(1) * 2,
        }
    }
}

/// One query: a pattern (as `.gfu`/`.gfd` text) to enumerate with a given
/// algorithm and run configuration against a registry target.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Pattern graph in the text exchange format.
    pub pattern_text: String,
    /// Algorithm variant to prepare (part of the cache key).
    pub algorithm: Algorithm,
    /// Candidate generation scheme to prepare under (part of the cache
    /// key; intersection by default).
    pub mode: CandidateMode,
    /// Scheduler and limits for this run.  The embedded
    /// `RunConfig::strategy` selects the ordering strategy the engine is
    /// prepared with (also part of the cache key).
    pub run: RunConfig,
}

impl QuerySpec {
    /// A query with the given pattern text, the paper's strongest variant
    /// (RI-DS-SI-FC) and a sequential, unlimited run.
    pub fn new(pattern_text: impl Into<String>) -> Self {
        QuerySpec {
            pattern_text: pattern_text.into(),
            algorithm: Algorithm::RiDsSiFc,
            mode: CandidateMode::default(),
            run: RunConfig::default(),
        }
    }

    /// Sets the algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the candidate generation scheme.
    pub fn with_mode(mut self, mode: CandidateMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the run configuration.
    pub fn with_run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }
}

/// The result of one served query.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Name of the target the query ran against.
    pub target: String,
    /// Stable-within-process hash of the canonical pattern (reported so
    /// clients can correlate cache behavior).
    pub pattern_hash: u64,
    /// Whether the prepared engine came out of the [`PreparedCache`].
    pub cache_hit: bool,
    /// End-to-end service latency of this query in seconds (parse + cache
    /// lookup / preparation + run).
    pub latency_seconds: f64,
    /// The enumeration result.
    pub outcome: EnumerationOutcome,
}

/// The serving core: registry + cache + stats + admission control.
///
/// [`Server`] exposes it over TCP; it is equally usable in-process:
///
/// ```
/// use sge_service::{QuerySpec, Service, ServiceConfig};
///
/// let service = Service::new(ServiceConfig::default());
/// let target = sge_graph::generators::clique(5, 0);
/// service.registry().insert("k5", target);
///
/// let pattern = sge_graph::io::write_graph(&sge_graph::generators::directed_cycle(3, 0));
/// let first = service.run_query("k5", &QuerySpec::new(&pattern)).unwrap();
/// let second = service.run_query("k5", &QuerySpec::new(&pattern)).unwrap();
/// assert_eq!(first.outcome.matches, 60);
/// assert!(!first.cache_hit);
/// assert!(second.cache_hit); // preprocessing ran once
/// ```
pub struct Service {
    registry: GraphRegistry,
    cache: PreparedCache,
    stats: ServiceStats,
    admission: semaphore::Semaphore,
    config: ServiceConfig,
}

impl Service {
    /// Creates an empty service with the given sizing knobs.
    pub fn new(config: ServiceConfig) -> Self {
        Service {
            registry: GraphRegistry::new(),
            cache: PreparedCache::new(config.cache_capacity),
            stats: ServiceStats::new(),
            admission: semaphore::Semaphore::new(config.max_in_flight.max(1)),
            config,
        }
    }

    /// The target-graph registry.
    pub fn registry(&self) -> &GraphRegistry {
        &self.registry
    }

    /// The prepared-engine cache.
    pub fn cache(&self) -> &PreparedCache {
        &self.cache
    }

    /// The sizing knobs this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// A point-in-time snapshot of the aggregate service statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Executes one query against the named target.
    ///
    /// The pattern is parsed through the registry's shared label interner,
    /// the prepared engine is fetched from (or inserted into) the cache, and
    /// the run is gated by the global admission limit.
    pub fn run_query(&self, target: &str, spec: &QuerySpec) -> Result<QueryOutcome, ServiceError> {
        let started = Instant::now();
        let result = self.run_query_inner(target, spec, started);
        if result.is_err() {
            self.stats.record_error();
        }
        result
    }

    /// The shared lookup → parse → cached-prepare pipeline behind both
    /// `QUERY` and `EXPLAIN`.  Returns the prepared engine, whether it was
    /// a cache hit, and the pattern hash.  Keeping this in one place is
    /// what guarantees an `EXPLAIN` describes exactly the plan the
    /// identical `QUERY` will run.
    fn prepare_for_spec(
        &self,
        target: &str,
        spec: &QuerySpec,
    ) -> Result<(Arc<PreparedEngine>, bool, u64), ServiceError> {
        let (target_graph, target_stats) = self
            .registry
            .get_with_stats(target)
            .ok_or_else(|| ServiceError::UnknownTarget(target.to_string()))?;
        let pattern = self.registry.parse_pattern(&spec.pattern_text)?;
        let (engine, cache_hit) = self.cache.get_or_prepare_planned(
            &pattern,
            target,
            &target_graph,
            Some(&target_stats),
            spec.algorithm,
            spec.mode,
            spec.run.strategy,
        );
        Ok((engine, cache_hit, PreparedCache::pattern_hash(&pattern)))
    }

    fn run_query_inner(
        &self,
        target: &str,
        spec: &QuerySpec,
        started: Instant,
    ) -> Result<QueryOutcome, ServiceError> {
        let (engine, cache_hit, pattern_hash) = self.prepare_for_spec(target, spec)?;
        let outcome = {
            let _permit = self.admission.acquire();
            engine.run(&spec.run)
        };
        let latency_seconds = started.elapsed().as_secs_f64();
        self.stats.record_query(outcome.matches, latency_seconds);
        Ok(QueryOutcome {
            target: target.to_string(),
            pattern_hash,
            cache_hit,
            latency_seconds,
            outcome,
        })
    }

    /// Plans (or fetches the cached plan for) one query without running it
    /// and reports the plan — the machinery behind the protocol's `EXPLAIN`
    /// verb.  Preparation goes through the same [`PreparedCache`] as
    /// [`Service::run_query`], so an `EXPLAIN` warms the cache for the
    /// query that follows it.
    pub fn explain(&self, target: &str, spec: &QuerySpec) -> Result<ExplainOutcome, ServiceError> {
        let result = self.explain_inner(target, spec);
        if result.is_err() {
            self.stats.record_error();
        }
        result
    }

    fn explain_inner(
        &self,
        target: &str,
        spec: &QuerySpec,
    ) -> Result<ExplainOutcome, ServiceError> {
        let started = Instant::now();
        let (engine, cache_hit, pattern_hash) = self.prepare_for_spec(target, spec)?;
        Ok(ExplainOutcome {
            target: target.to_string(),
            pattern_hash,
            cache_hit,
            latency_seconds: started.elapsed().as_secs_f64(),
            engine,
        })
    }

    /// Executes a [`QuerySet`] on this service's batch worker pool.
    pub fn run_batch(&self, set: &QuerySet) -> BatchOutcome {
        let executor = BatchExecutor::new(self.config.batch_workers);
        let outcome = executor.execute(self, set);
        self.stats.record_batch();
        outcome
    }
}

/// The result of an `EXPLAIN`: the prepared engine whose plan is reported.
#[derive(Clone)]
pub struct ExplainOutcome {
    /// Name of the target the plan was built against.
    pub target: String,
    /// Stable-within-process hash of the canonical pattern.
    pub pattern_hash: u64,
    /// Whether the plan came out of the [`PreparedCache`].
    pub cache_hit: bool,
    /// End-to-end service latency of the explain in seconds.
    pub latency_seconds: f64,
    /// The prepared engine; its [`PreparedEngine::plan`] carries the match
    /// order, strategy and cost estimates.
    pub engine: Arc<PreparedEngine>,
}

/// Convenience alias: a service shared across server connection threads.
pub type SharedService = Arc<Service>;

//! The query-serving subsystem: enumeration as a long-running service.
//!
//! The paper treats each enumeration as a one-shot batch job; this crate
//! turns the library into a service shaped for its one-target/many-patterns
//! workloads (PPIS32, GRAEMLIN32, PDBSv1):
//!
//! * [`GraphRegistry`] loads named target graphs from `.gfu`/`.gfd` files
//!   and owns them (behind [`std::sync::Arc`]) for the process lifetime,
//!   interning node labels through one shared table so every pattern/target
//!   pair agrees on the numbering;
//! * [`PreparedCache`] is a bounded LRU over prepared engines keyed by
//!   *(pattern, target name, algorithm)* — a repeated pattern skips the
//!   domain computation / forward checking / ordering phase entirely;
//! * [`BatchExecutor`] fans a [`QuerySet`] (many patterns, one target) out
//!   over a std-thread worker pool, with every run gated by the service's
//!   global in-flight admission limit;
//! * [`Service`] ties the three together and keeps aggregate statistics
//!   (queries served, total matches, and a latency distribution built on
//!   [`sge_util::LatencyHistogram`]);
//! * [`Server`] is a std-only TCP front end speaking the newline-delimited
//!   text protocol documented in [`protocol`] (`LOAD`, `QUERY`, `EXPLAIN`,
//!   `BATCH`, `STATS`, `SHUTDOWN`) with single-line JSON responses, driven
//!   by the `sge-serve` / `sge-client` binaries.  A `QUERY` with
//!   `emit=stream` answers with a header line, newline-delimited row frames
//!   of `chunk` mappings each and a footer line instead — backed by
//!   [`Service::run_query_streaming`], whose bounded-channel bridge keeps
//!   server memory independent of the result cardinality and cancels
//!   enumeration when the client disconnects mid-stream.
//!
//! Everything is `std`-only: no async runtime, no serialization crates —
//! the JSON responses come from the hand-rolled encoder in [`json`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod client;
pub mod connection;
pub mod coordinator;
#[cfg(unix)]
pub mod event_server;
pub mod json;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod stats;

mod semaphore;

pub use batch::{BatchExecutor, BatchOutcome, QuerySet};
pub use cache::{CacheStats, PreparedCache};
pub use connection::{Backend, Connection, StepOutcome};
pub use coordinator::Coordinator;
#[cfg(unix)]
pub use event_server::EventServer;
pub use registry::{GraphInfo, GraphRegistry};
pub use server::Server;
pub use stats::{ServiceStats, StatsSnapshot};
// The wire-plane vocabulary moved to `sge-wire`; re-exported so historical
// `sge_service::{QuerySpec, ServiceError, …}` paths keep working.
pub use sge_wire::{
    EmitMode, ExplainAnalyzeOutcome, ExplainOutcome, QueryOutcome, QuerySpec, ServiceError,
    StreamHeader, StreamSink, StreamedQueryOutcome, DEFAULT_STREAM_CHUNK, MAX_STREAM_CHUNK,
};

use sge_engine::{EnumerationOutcome, PreparedEngine, RunConfig, Scheduler};
use sge_graph::{BitmapConfig, NodeId};
use sge_obs::{Counter, EventLog, Gauge, MetricsRegistry, MetricsSnapshot, QueryTrace, TraceSink};
use sge_plan::{CostModel, Planner, RoutingConfig, RoutingDecision, SchedulerChoice};
use sge_util::{Clock, SystemClock};
use std::sync::Arc;
use std::time::Duration;

/// Sizing knobs of a [`Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Maximum number of prepared engines the [`PreparedCache`] retains.
    pub cache_capacity: usize,
    /// Worker threads a [`BatchExecutor`] uses per batch.
    pub batch_workers: usize,
    /// Global cap on concurrently *executing* enumeration runs (admission
    /// control across all connections and batches).
    pub max_in_flight: usize,
    /// Planner-routing knobs: when a query does not pin a scheduler
    /// (`sched=` on the wire), [`Planner::route`] picks one from the
    /// cost-model-corrected state estimate under these thresholds.
    pub routing: RoutingConfig,
    /// Bitmap-sidecar knobs applied when targets are registered through
    /// [`Service::load_target`] (the `LOAD` verb); `bitmap_cap=<bytes>` on
    /// the wire overrides `bitmaps.max_bytes` per load.
    pub bitmaps: BitmapConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServiceConfig {
            cache_capacity: 64,
            batch_workers: cores,
            max_in_flight: cores.max(1) * 2,
            routing: RoutingConfig::default(),
            bitmaps: BitmapConfig::default(),
        }
    }
}

/// The serving core: registry + cache + stats + admission control.
///
/// [`Server`] exposes it over TCP; it is equally usable in-process:
///
/// ```
/// use sge_service::{QuerySpec, Service, ServiceConfig};
///
/// let service = Service::new(ServiceConfig::default());
/// let target = sge_graph::generators::clique(5, 0);
/// service.registry().insert("k5", target);
///
/// let pattern = sge_graph::io::write_graph(&sge_graph::generators::directed_cycle(3, 0));
/// let first = service.run_query("k5", &QuerySpec::new(&pattern)).unwrap();
/// let second = service.run_query("k5", &QuerySpec::new(&pattern)).unwrap();
/// assert_eq!(first.outcome.matches, 60);
/// assert!(!first.cache_hit);
/// assert!(second.cache_hit); // preprocessing ran once
/// ```
pub struct Service {
    registry: GraphRegistry,
    cache: PreparedCache,
    stats: ServiceStats,
    metrics: MetricsRegistry,
    engine_counters: EngineCounters,
    dispatch: DispatchCells,
    cost_model: CostModel,
    admission: semaphore::Semaphore,
    config: ServiceConfig,
    clock: Arc<dyn Clock>,
    /// Shared event log, attached by the front end (see
    /// [`Service::set_event_log`]); [`Service::load_target`] records
    /// bitmap-cap fallback warnings here.
    event_log: std::sync::RwLock<Option<Arc<EventLog>>>,
}

/// Pre-registered handles for the routing/dispatch metrics.
struct DispatchCells {
    /// Runs dispatched on the sequential scheduler (routed or pinned).
    sequential: Counter,
    /// Runs dispatched on a parallel scheduler (work-stealing or rayon-style).
    work_stealing: Counter,
    /// The cost model's most recently updated correction factor, in
    /// milli-units (1000 = identity) — gauges are integral.
    correction: Gauge,
    /// Currently open server connections (maintained by the TCP front ends).
    connections_open: Gauge,
}

impl DispatchCells {
    fn with_registry(registry: &MetricsRegistry) -> Self {
        let cells = DispatchCells {
            sequential: registry.counter("engine.dispatch.sequential"),
            work_stealing: registry.counter("engine.dispatch.work_stealing"),
            correction: registry.gauge("engine.cost_model.correction"),
            connections_open: registry.gauge("service.connections_open"),
        };
        cells.correction.set(1000); // identity until the first observation
        cells
    }
}

/// Pre-registered handles for the post-run enumeration counters, so the
/// normal query path never takes the registry's registration lock.
struct EngineCounters {
    states: Counter,
    steals: Counter,
    steal_requests: Counter,
    tasks: Counter,
    kernel_bitmap: Counter,
    kernel_gallop: Counter,
    kernel_merge: Counter,
    kernel_prefilter_rejected: Counter,
}

impl EngineCounters {
    fn with_registry(registry: &MetricsRegistry) -> Self {
        EngineCounters {
            states: registry.counter("engine.states"),
            steals: registry.counter("engine.steals"),
            steal_requests: registry.counter("engine.steal_requests"),
            tasks: registry.counter("engine.tasks"),
            kernel_bitmap: registry.counter("engine.kernel.bitmap"),
            kernel_gallop: registry.counter("engine.kernel.gallop"),
            kernel_merge: registry.counter("engine.kernel.merge"),
            kernel_prefilter_rejected: registry.counter("engine.kernel.prefilter_rejected"),
        }
    }

    /// Folds one finished run into the registry — the outcome already
    /// aggregates the per-worker counters, so no trace sink is needed on
    /// the hot path.
    fn record(&self, outcome: &EnumerationOutcome) {
        self.states.add(outcome.states);
        self.steals.add(outcome.steals);
        self.steal_requests.add(outcome.steal_requests);
        self.tasks
            .add(outcome.worker_stats.iter().map(|w| w.tasks_executed).sum());
        self.kernel_bitmap.add(outcome.kernels.bitmap);
        self.kernel_gallop.add(outcome.kernels.gallop);
        self.kernel_merge.add(outcome.kernels.merge);
        self.kernel_prefilter_rejected
            .add(outcome.kernels.prefilter_rejected);
    }
}

impl Service {
    /// Creates an empty service with the given sizing knobs, measuring time
    /// on the real [`SystemClock`].
    pub fn new(config: ServiceConfig) -> Self {
        Service::with_clock(config, Arc::new(SystemClock::new()))
    }

    /// Creates an empty service that measures time on `clock`.
    ///
    /// Every latency the service reports — per-query `latency_seconds`, the
    /// `STATS` latency distribution, batch wall time, admission-wait time —
    /// derives from this clock, so a [`sge_util::VirtualClock`] makes them
    /// fully deterministic (what the simulator's same-seed/same-trace
    /// guarantee relies on).
    pub fn with_clock(config: ServiceConfig, clock: Arc<dyn Clock>) -> Self {
        Service::with_clock_and_registry(config, clock, GraphRegistry::new())
    }

    /// [`Service::with_clock`] over a caller-built registry — the sharded
    /// coordinator constructs every shard's registry over **one** shared
    /// label interner, so a pattern parsed on any shard agrees with every
    /// shard's target labels.
    pub fn with_clock_and_registry(
        config: ServiceConfig,
        clock: Arc<dyn Clock>,
        registry: GraphRegistry,
    ) -> Self {
        let metrics = MetricsRegistry::new();
        Service {
            registry,
            cache: PreparedCache::new(config.cache_capacity),
            stats: ServiceStats::with_registry(&metrics),
            engine_counters: EngineCounters::with_registry(&metrics),
            dispatch: DispatchCells::with_registry(&metrics),
            cost_model: CostModel::new(),
            metrics,
            admission: semaphore::Semaphore::new(config.max_in_flight.max(1)),
            config,
            clock,
            event_log: std::sync::RwLock::new(None),
        }
    }

    /// Attaches the shared event log (the front end's `--log` ring); LOAD
    /// warnings — e.g. a bitmap sidecar hitting its memory cap — are
    /// recorded there.
    pub fn set_event_log(&self, log: Arc<EventLog>) {
        *self
            .event_log
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(log);
    }

    /// Records one event line on the attached log, if any.
    fn log_event(&self, line: &str) {
        if let Some(log) = self
            .event_log
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .as_ref()
        {
            log.record(line);
        }
    }

    /// Loads a target file into the registry (the `LOAD` verb): the
    /// service-level path that applies the configured [`BitmapConfig`] —
    /// with `bitmap_cap` overriding the byte cap per call — and records a
    /// warning event when the sidecar hits the cap and falls back to
    /// CSR-only kernels.
    pub fn load_target(
        &self,
        name: &str,
        path: impl AsRef<std::path::Path>,
        bitmap_cap: Option<usize>,
    ) -> Result<GraphInfo, ServiceError> {
        let mut config = self.config.bitmaps;
        if let Some(cap) = bitmap_cap {
            config.max_bytes = cap;
        }
        let info = self.registry.load_file_with_config(name, path, &config)?;
        if info.bitmap_capped {
            let required = self
                .registry
                .get_full(name)
                .map(|(_, _, bitmaps)| bitmaps.required_row_bytes())
                .unwrap_or(0);
            self.log_event(
                &json::Json::obj(vec![
                    ("event", json::Json::str("bitmap_cap_fallback")),
                    ("target", json::Json::str(name)),
                    ("required_bytes", json::Json::U64(required as u64)),
                    ("cap_bytes", json::Json::U64(config.max_bytes as u64)),
                ])
                .render(),
            );
        }
        Ok(info)
    }

    /// The clock all service latencies are measured on.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The target-graph registry.
    pub fn registry(&self) -> &GraphRegistry {
        &self.registry
    }

    /// The prepared-engine cache.
    pub fn cache(&self) -> &PreparedCache {
        &self.cache
    }

    /// The sizing knobs this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// A point-in-time snapshot of the aggregate service statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The metrics registry behind the `METRICS` wire verb.  The `service.*`
    /// counters are the same cells [`Service::stats`] reads; `engine.*`
    /// accumulates enumeration-level totals across all served queries.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A point-in-time snapshot of every registered metric, with the cache
    /// counters and occupancy gauges synchronized first — what the `METRICS`
    /// verb serializes.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let cache = self.cache.stats();
        // Cache counters live on the cache itself (it predates the registry);
        // mirror them through monotonic deltas so repeated snapshots never
        // double-count.
        for (name, observed) in [
            ("cache.hits", cache.hits),
            ("cache.misses", cache.misses),
            ("cache.evictions", cache.evictions),
            ("cache.inserts", cache.inserts),
        ] {
            let counter = self.metrics.counter(name);
            counter.add(observed.saturating_sub(counter.value()));
        }
        self.metrics
            .gauge("cache.entries")
            .set(cache.entries as u64);
        self.metrics
            .gauge("cache.capacity")
            .set(cache.capacity as u64);
        self.metrics.snapshot()
    }

    /// Executes one query against the named target.
    ///
    /// The pattern is parsed through the registry's shared label interner,
    /// the prepared engine is fetched from (or inserted into) the cache, and
    /// the run is gated by the global admission limit.
    pub fn run_query(&self, target: &str, spec: &QuerySpec) -> Result<QueryOutcome, ServiceError> {
        let started = self.clock.now();
        let result = self.run_query_inner(target, spec, started);
        if result.is_err() {
            self.stats.record_error();
        }
        result
    }

    /// The shared lookup → parse → cached-prepare pipeline behind both
    /// `QUERY` and `EXPLAIN`.  Returns the prepared engine, whether it was
    /// a cache hit, and the pattern hash.  Keeping this in one place is
    /// what guarantees an `EXPLAIN` describes exactly the plan the
    /// identical `QUERY` will run.
    fn prepare_for_spec(
        &self,
        target: &str,
        spec: &QuerySpec,
    ) -> Result<(Arc<PreparedEngine>, bool, u64), ServiceError> {
        let (target_graph, target_stats, target_bitmaps) = self
            .registry
            .get_full(target)
            .ok_or_else(|| ServiceError::UnknownTarget(target.to_string()))?;
        let pattern = self.registry.parse_pattern(&spec.pattern_text)?;
        let (engine, cache_hit) = match self.registry.shard_meta(target) {
            Some((owned, replication_hops)) => {
                // Shard executor path: plans are *rooted* at the pattern node
                // of minimum undirected eccentricity and position 0 is
                // restricted to shard-owned vertices.  Correctness needs the
                // whole pattern to fit inside the replicated R-hop ball
                // around any owned root, so patterns that are empty,
                // disconnected, or wider than the replication radius are
                // rejected rather than silently undercounted.
                let (root, eccentricity) =
                    sge_plan::min_eccentricity_root(&pattern).ok_or_else(|| {
                        ServiceError::Protocol(format!(
                            "sharded target '{target}' requires a non-empty connected pattern"
                        ))
                    })?;
                if eccentricity > replication_hops {
                    return Err(ServiceError::Protocol(format!(
                        "pattern radius {eccentricity} exceeds the shard replication \
                         radius {replication_hops} of target '{target}'"
                    )));
                }
                self.cache.get_or_prepare_with(
                    &pattern,
                    target,
                    &target_graph,
                    spec.algorithm,
                    spec.mode,
                    spec.run.strategy,
                    || {
                        let plan = Planner::new(spec.run.strategy).plan_rooted(
                            &pattern,
                            &target_graph,
                            &target_stats,
                            spec.algorithm,
                            root,
                            Some(Arc::clone(&owned)),
                        );
                        PreparedEngine::from_plan(
                            Arc::new(pattern.clone()),
                            Arc::clone(&target_graph),
                            Some(Arc::clone(&target_bitmaps)),
                            plan,
                            spec.mode,
                        )
                    },
                )
            }
            None => self.cache.get_or_prepare_planned(
                &pattern,
                target,
                &target_graph,
                Some(&target_stats),
                Some(&target_bitmaps),
                spec.algorithm,
                spec.mode,
                spec.run.strategy,
            ),
        };
        Ok((engine, cache_hit, PreparedCache::pattern_hash(&pattern)))
    }

    /// Acquires an admission permit, recording how long the caller waited
    /// (on this service's clock) so admission-control pressure is visible in
    /// `STATS` — and deterministic under a virtual clock.
    fn admit(&self) -> semaphore::Permit<'_> {
        let wait_started = self.clock.now();
        let permit = self.admission.acquire();
        let waited = self.clock.now().saturating_sub(wait_started);
        self.stats.record_admission_wait(waited.as_secs_f64());
        permit
    }

    /// The per-target cost model routing decisions consult.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// The `service.connections_open` gauge handle — incremented /
    /// decremented by the TCP front ends as connections open and close.
    pub fn connections_gauge(&self) -> Gauge {
        self.dispatch.connections_open.clone()
    }

    /// Runs dispatched per scheduler family so far:
    /// `(sequential, work_stealing)`.
    pub fn dispatch_counts(&self) -> (u64, u64) {
        (
            self.dispatch.sequential.value(),
            self.dispatch.work_stealing.value(),
        )
    }

    /// The most recently updated cost-model correction factor (1.0 until a
    /// first complete run is observed).
    pub fn correction_factor(&self) -> f64 {
        self.dispatch.correction.value() as f64 / 1000.0
    }

    /// The routing decision [`Planner::route`] makes for `engine` against
    /// `target` right now (current correction factor, configured thresholds).
    pub fn routing_decision(&self, target: &str, engine: &PreparedEngine) -> RoutingDecision {
        let correction = self.cost_model.correction_for(target);
        Planner::new(engine.strategy()).route(&engine.plan().cost, correction, &self.config.routing)
    }

    /// The run configuration a query will actually execute under: the spec's
    /// own when the scheduler is pinned, otherwise the spec with its
    /// scheduler replaced by the planner's routed choice.
    fn effective_run(
        &self,
        target: &str,
        spec: &QuerySpec,
        engine: &PreparedEngine,
    ) -> (RunConfig, Option<RoutingDecision>) {
        if spec.pinned {
            return (spec.run, None);
        }
        let decision = self.routing_decision(target, engine);
        let mut run = spec.run;
        run.scheduler = scheduler_for_choice(decision.choice);
        (run, Some(decision))
    }

    /// Counts one dispatch under the scheduler family that will execute it.
    fn record_dispatch(&self, scheduler: &Scheduler) {
        if scheduler.is_sequential() {
            self.dispatch.sequential.inc();
        } else {
            self.dispatch.work_stealing.inc();
        }
    }

    /// Folds one finished run into the cost model — only *complete* runs:
    /// a cancelled, timed-out or limit-capped run undercounts the true tree
    /// and would corrupt the observed/estimated ratio.
    fn observe_run(&self, target: &str, engine: &PreparedEngine, outcome: &EnumerationOutcome) {
        if outcome.cancelled || outcome.timed_out || outcome.limit_hit {
            return;
        }
        let estimated = engine.plan().cost.est_total_states;
        if !estimated.is_finite() || estimated <= 0.0 {
            return;
        }
        let factor = self.cost_model.observe(target, estimated, outcome.states);
        self.dispatch
            .correction
            .set((factor * 1000.0).round().max(0.0) as u64);
    }

    fn run_query_inner(
        &self,
        target: &str,
        spec: &QuerySpec,
        started: Duration,
    ) -> Result<QueryOutcome, ServiceError> {
        let (engine, cache_hit, pattern_hash) = self.prepare_for_spec(target, spec)?;
        let (run, decision) = self.effective_run(target, spec, &engine);
        self.record_dispatch(&run.scheduler);
        let outcome = {
            let _permit = self.admit();
            engine.run(&run)
        };
        self.observe_run(target, &engine, &outcome);
        let latency_seconds = self.clock.now().saturating_sub(started).as_secs_f64();
        self.stats.record_query(outcome.matches, latency_seconds);
        self.engine_counters.record(&outcome);
        Ok(QueryOutcome {
            target: target.to_string(),
            pattern_hash,
            cache_hit,
            latency_seconds,
            routed: decision.is_some(),
            outcome,
        })
    }

    /// Executes one query against the named target, delivering mappings to
    /// `sink` in frames of up to `spec.chunk` rows while enumeration runs —
    /// the machinery behind the protocol's `emit=stream` QUERY mode.
    ///
    /// Enumeration and sink writes overlap (bounded-channel bridge inside
    /// [`sge_engine::Engine::run_streaming`]), so service memory is O(chunk)
    /// regardless of how many matches exist.  A failing sink write —
    /// typically a disconnected client — cooperatively cancels enumeration:
    /// the schedulers stop at their next budget check instead of running the
    /// search to completion into a dead socket, and the returned outcome
    /// reports `cancelled`.
    ///
    /// Rows arrive in discovery order (schedule-dependent under parallel
    /// schedulers); `spec.run.collect_mappings` is ignored — rows go through
    /// the sink, not into the outcome.
    pub fn run_query_streaming(
        &self,
        target: &str,
        spec: &QuerySpec,
        sink: &mut dyn StreamSink,
    ) -> Result<StreamedQueryOutcome, ServiceError> {
        let started = self.clock.now();
        let result = self.run_query_streaming_inner(target, spec, sink, started);
        if result.is_err() {
            self.stats.record_error();
        }
        result
    }

    fn run_query_streaming_inner(
        &self,
        target: &str,
        spec: &QuerySpec,
        sink: &mut dyn StreamSink,
        started: Duration,
    ) -> Result<StreamedQueryOutcome, ServiceError> {
        let (engine, cache_hit, pattern_hash) = self.prepare_for_spec(target, spec)?;
        let (mut run, decision) = self.effective_run(target, spec, &engine);
        let chunk = spec.chunk.clamp(1, MAX_STREAM_CHUNK);
        let header = StreamHeader {
            target: target.to_string(),
            chunk,
            cache_hit,
            pattern_hash,
            algorithm: engine.algorithm(),
            strategy: engine.strategy(),
            scheduler: run.scheduler,
            routed: decision.is_some(),
        };
        // A failing header write means the client is already gone; nothing
        // ran, so surface it as a plain error instead of a result.
        sink.begin(&header)?;
        self.record_dispatch(&run.scheduler);
        run.collect_mappings = 0;
        let mut buffer: Vec<Vec<NodeId>> = Vec::with_capacity(chunk);
        let mut rows_sent: u64 = 0;
        let mut sink_alive = true;
        let outcome = {
            let _permit = self.admit();
            engine.run_streaming(&run, chunk, |mapping| {
                buffer.push(mapping);
                if buffer.len() < chunk {
                    return true;
                }
                sink_alive = sink.rows(&buffer).is_ok();
                if sink_alive {
                    rows_sent += buffer.len() as u64;
                }
                buffer.clear();
                // Returning false cancels enumeration: the write failed, so
                // the client will never read another row.
                sink_alive
            })
        };
        if sink_alive && !buffer.is_empty() {
            if sink.rows(&buffer).is_ok() {
                rows_sent += buffer.len() as u64;
            } else {
                sink_alive = false;
            }
        }
        let cancelled = outcome.cancelled || !sink_alive;
        self.observe_run(target, &engine, &outcome);
        let latency_seconds = self.clock.now().saturating_sub(started).as_secs_f64();
        self.stats.record_query(outcome.matches, latency_seconds);
        self.stats.record_stream(rows_sent, cancelled);
        self.engine_counters.record(&outcome);
        Ok(StreamedQueryOutcome {
            query: QueryOutcome {
                target: target.to_string(),
                pattern_hash,
                cache_hit,
                latency_seconds,
                routed: decision.is_some(),
                outcome,
            },
            rows_sent,
            cancelled,
        })
    }

    /// Plans (or fetches the cached plan for) one query without running it
    /// and reports the plan — the machinery behind the protocol's `EXPLAIN`
    /// verb.  Preparation goes through the same [`PreparedCache`] as
    /// [`Service::run_query`], so an `EXPLAIN` warms the cache for the
    /// query that follows it.
    pub fn explain(&self, target: &str, spec: &QuerySpec) -> Result<ExplainOutcome, ServiceError> {
        let result = self.explain_inner(target, spec);
        if result.is_err() {
            self.stats.record_error();
        }
        result
    }

    fn explain_inner(
        &self,
        target: &str,
        spec: &QuerySpec,
    ) -> Result<ExplainOutcome, ServiceError> {
        let started = self.clock.now();
        let (engine, cache_hit, pattern_hash) = self.prepare_for_spec(target, spec)?;
        let routing = self.routing_decision(target, &engine);
        let effective_scheduler = if spec.pinned {
            spec.run.scheduler
        } else {
            scheduler_for_choice(routing.choice)
        };
        Ok(ExplainOutcome {
            target: target.to_string(),
            pattern_hash,
            cache_hit,
            latency_seconds: self.clock.now().saturating_sub(started).as_secs_f64(),
            routing,
            routed: !spec.pinned,
            effective_scheduler,
            engine,
        })
    }

    /// `EXPLAIN ANALYZE`: plans the query **and** executes it with a
    /// per-query [`TraceSink`] attached, returning the planner's estimates
    /// side-by-side with what the run actually observed, plus a span
    /// breakdown of where the wall time went.
    ///
    /// Spans are measured on the service's injected clock (deterministic
    /// under a virtual clock): `plan` covers parse + cache lookup /
    /// preparation, `admission_wait` the wait for an in-flight permit,
    /// `enumeration` the run itself.  Mapping collection is disabled — the
    /// deliverable is the instrumentation, not the rows.  The run counts
    /// into `STATS`/`METRICS` exactly like a served query.
    pub fn explain_analyze(
        &self,
        target: &str,
        spec: &QuerySpec,
    ) -> Result<ExplainAnalyzeOutcome, ServiceError> {
        let result = self.explain_analyze_inner(target, spec);
        if result.is_err() {
            self.stats.record_error();
        }
        result
    }

    fn explain_analyze_inner(
        &self,
        target: &str,
        spec: &QuerySpec,
    ) -> Result<ExplainAnalyzeOutcome, ServiceError> {
        let started = self.clock.now();
        let mut trace = QueryTrace::begin(started);
        let (engine, cache_hit, pattern_hash) = self.prepare_for_spec(target, spec)?;
        let planned = self.clock.now();
        trace.record_span("plan", started, planned);

        let routing = self.routing_decision(target, &engine);
        let (mut run, decision) = self.effective_run(target, spec, &engine);
        self.record_dispatch(&run.scheduler);
        let sink = Arc::new(TraceSink::new(engine.plan().num_positions()));
        let outcome = {
            let wait_started = self.clock.now();
            let permit = self.admission.acquire();
            let admitted = self.clock.now();
            self.stats
                .record_admission_wait(admitted.saturating_sub(wait_started).as_secs_f64());
            trace.record_span("admission_wait", wait_started, admitted);
            let _permit = permit;
            run.collect_mappings = 0;
            let mut instrumented = engine.engine();
            instrumented.set_trace_sink(Arc::clone(&sink));
            let outcome = instrumented.run(&run);
            trace.record_span("enumeration", admitted, self.clock.now());
            outcome
        };
        self.observe_run(target, &engine, &outcome);
        let latency_seconds = self.clock.now().saturating_sub(started).as_secs_f64();
        self.stats.record_query(outcome.matches, latency_seconds);
        self.engine_counters.record(&outcome);
        Ok(ExplainAnalyzeOutcome {
            target: target.to_string(),
            pattern_hash,
            cache_hit,
            latency_seconds,
            observed_candidates: sink.candidates_per_position(),
            observed_states: sink.states_per_position(),
            spans: trace.spans().to_vec(),
            routing,
            routed: decision.is_some(),
            engine,
            outcome,
        })
    }

    /// Executes a [`QuerySet`] on this service's batch worker pool.
    pub fn run_batch(&self, set: &QuerySet) -> BatchOutcome {
        let executor = BatchExecutor::new(self.config.batch_workers);
        let outcome = executor.execute(self, set);
        self.stats.record_batch();
        outcome
    }
}

/// Maps an executor-agnostic [`SchedulerChoice`] onto the engine's concrete
/// scheduler type (work-stealing runs get the default task-group size with
/// stealing enabled).
pub fn scheduler_for_choice(choice: SchedulerChoice) -> Scheduler {
    match choice {
        SchedulerChoice::Sequential => Scheduler::Sequential,
        SchedulerChoice::WorkStealing { workers } => Scheduler::work_stealing(workers),
    }
}

/// Convenience alias: a service shared across server connection threads.
pub type SharedService = Arc<Service>;

//! The service-side face of the wire protocol.
//!
//! Parsing and the pure response builders live in [`sge_wire::protocol`]
//! (re-exported here wholesale, so historical `sge_service::protocol::*`
//! paths keep working).  What remains in this module are the builders that
//! read live [`Service`] state — `STATS` and `METRICS` — plus the `BATCH`
//! aggregation, which wraps the service-side [`BatchOutcome`].

pub use sge_wire::protocol::*;

use crate::json::Json;
use crate::{BatchOutcome, Service};

/// Response to `METRICS`: one JSON object with every registered metric,
/// sorted by name — counters and gauges as integers, histograms as nested
/// summary objects.
pub fn metrics_response(service: &Service) -> Json {
    metrics_json(service.metrics_snapshot())
}

/// Response to a `BATCH` (individual query failures are reported in-place
/// in `results`, the batch itself is `ok`).
pub fn batch_response(batch: &BatchOutcome) -> Json {
    let results = batch
        .results
        .iter()
        .map(|result| match result {
            Ok(query) => Json::obj(
                std::iter::once(("ok", Json::Bool(true)))
                    .chain(query_body(query))
                    .collect(),
            ),
            Err(err) => error_response(err),
        })
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("target", Json::str(batch.target.clone())),
        ("queries", Json::U64(batch.results.len() as u64)),
        ("succeeded", Json::U64(batch.succeeded() as u64)),
        ("total_matches", Json::U64(batch.total_matches())),
        ("cache_hits", Json::U64(batch.cache_hits() as u64)),
        ("wall_seconds", Json::F64(batch.wall_seconds)),
        ("queries_per_second", Json::F64(batch.queries_per_second())),
        ("workers", Json::U64(batch.workers as u64)),
        ("results", Json::Arr(results)),
    ])
}

/// The top-level fields of a `STATS` response for one executing service:
/// its counters, dispatch/cache/latency sub-objects and target list.
/// Shared between [`stats_response`] and the coordinator's per-shard
/// breakdown so both render identical shapes.
pub fn stats_fields(service: &Service) -> Vec<(&'static str, Json)> {
    let snapshot = service.stats();
    let cache = service.cache().stats();
    let (dispatch_sequential, dispatch_work_stealing) = service.dispatch_counts();
    let connections_open = service.connections_gauge().value();
    let targets = service
        .registry()
        .list()
        .into_iter()
        .map(|info| {
            Json::obj(vec![
                ("name", Json::str(info.name)),
                ("nodes", Json::U64(info.nodes as u64)),
                ("edges", Json::U64(info.edges as u64)),
            ])
        })
        .collect();
    vec![
        ("queries_served", Json::U64(snapshot.queries_served)),
        ("batches_served", Json::U64(snapshot.batches_served)),
        ("total_matches", Json::U64(snapshot.total_matches)),
        ("errors", Json::U64(snapshot.errors)),
        ("streams_served", Json::U64(snapshot.streams_served)),
        ("rows_streamed", Json::U64(snapshot.rows_streamed)),
        ("streams_cancelled", Json::U64(snapshot.streams_cancelled)),
        ("admissions", Json::U64(snapshot.admissions)),
        (
            "admission_wait_seconds",
            Json::F64(snapshot.admission_wait_seconds),
        ),
        ("connections_open", Json::U64(connections_open)),
        (
            "dispatch",
            Json::obj(vec![
                ("sequential", Json::U64(dispatch_sequential)),
                ("work_stealing", Json::U64(dispatch_work_stealing)),
            ]),
        ),
        (
            "cost_model_correction",
            Json::F64(service.correction_factor()),
        ),
        ("targets", Json::Arr(targets)),
        (
            "cache",
            Json::obj(vec![
                ("capacity", Json::U64(cache.capacity as u64)),
                ("entries", Json::U64(cache.entries as u64)),
                ("hits", Json::U64(cache.hits)),
                ("misses", Json::U64(cache.misses)),
                ("evictions", Json::U64(cache.evictions)),
                ("inserts", Json::U64(cache.inserts)),
            ]),
        ),
        (
            "latency",
            Json::obj(vec![
                ("count", Json::U64(snapshot.queries_served)),
                ("mean_seconds", Json::F64(snapshot.latency_mean_seconds)),
                ("min_seconds", Json::F64(snapshot.latency_min_seconds)),
                ("max_seconds", Json::F64(snapshot.latency_max_seconds)),
                ("p50_seconds", Json::F64(snapshot.latency_p50_seconds)),
                ("p90_seconds", Json::F64(snapshot.latency_p90_seconds)),
                ("p99_seconds", Json::F64(snapshot.latency_p99_seconds)),
            ]),
        ),
    ]
}

/// Response to `STATS`.
pub fn stats_response(service: &Service) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.extend(stats_fields(service));
    Json::obj(pairs)
}

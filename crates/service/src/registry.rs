//! The target-graph registry: named, process-lifetime owned graphs.

use crate::ServiceError;
use sge_graph::io::parse_graph_with_interner;
use sge_graph::{AdjacencyBitmaps, BitmapConfig, Graph, GraphStats};
use sge_util::Bitset;
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

// The summary struct itself is wire-plane vocabulary now (LOAD responses
// are built from it); the registry re-exports it so existing
// `registry::GraphInfo` paths keep working.
pub use sge_wire::GraphInfo;

/// The label interner shared by every graph and pattern parsed through one
/// registry — and, under sharding, by every *shard's* registry, so a label
/// means the same dense id on every shard.
pub type SharedInterner = Arc<Mutex<HashMap<String, u32>>>;

/// Loads and owns named target graphs for the lifetime of the process.
///
/// All graphs funneled through [`GraphRegistry::load_file`] and all query
/// patterns parsed with [`GraphRegistry::parse_pattern`] share **one** label
/// interner, so a pattern's `C`/`N`/`O` labels mean the same dense ids as the
/// target's — the invariant the RI family's label comparisons rely on.
/// Graphs inserted programmatically via [`GraphRegistry::insert`] bypass the
/// interner and must already use consistent integer labels.
struct TargetEntry {
    graph: Arc<Graph>,
    /// Label-frequency statistics, computed once at registration — the
    /// planner consumes these on every cache miss, and recomputing them per
    /// preparation would put a full O(V + E log E) target pass on the
    /// serving hot path.
    stats: Arc<GraphStats>,
    /// Bitmap adjacency sidecar, built once at registration and shared by
    /// every prepared engine against this target.  When the configured byte
    /// cap was exceeded the sidecar is *capped*: it carries the per-node
    /// label signatures (the candidate prefilter keeps working) but no rows,
    /// so every intersection falls back to the CSR gallop kernels.
    bitmaps: Arc<AdjacencyBitmaps>,
    /// Present when this entry is one shard of a partitioned graph: the
    /// shard-local owned-vertex set plus the replication radius the partition
    /// was built with.  The service's prepare path uses it to pin query plans
    /// to an owned root, which is what makes per-shard match sets disjoint.
    shard: Option<ShardMeta>,
}

#[derive(Clone)]
struct ShardMeta {
    owned: Arc<Bitset>,
    replication_hops: usize,
}

/// See module docs; holds one [`TargetEntry`] per registered name.
pub struct GraphRegistry {
    graphs: RwLock<HashMap<String, TargetEntry>>,
    interner: SharedInterner,
}

impl Default for GraphRegistry {
    fn default() -> Self {
        GraphRegistry::new()
    }
}

impl GraphRegistry {
    /// Creates an empty registry with its own label interner.
    pub fn new() -> Self {
        GraphRegistry::with_interner(Arc::new(Mutex::new(HashMap::new())))
    }

    /// Creates an empty registry sharing `interner` with other registries.
    ///
    /// The coordinator hands every shard service a clone of one interner so
    /// a pattern parsed on any shard agrees with every shard's target labels.
    pub fn with_interner(interner: SharedInterner) -> Self {
        GraphRegistry {
            graphs: RwLock::new(HashMap::new()),
            interner,
        }
    }

    /// The label interner this registry parses through (clone it into
    /// [`GraphRegistry::with_interner`] to share label numbering).
    pub fn interner(&self) -> SharedInterner {
        Arc::clone(&self.interner)
    }

    /// Loads a `.gfu`/`.gfd` file and registers it under `name` with the
    /// default [`BitmapConfig`], replacing any previous graph of that name.
    pub fn load_file(&self, name: &str, path: impl AsRef<Path>) -> Result<GraphInfo, ServiceError> {
        self.load_file_with_config(name, path, &BitmapConfig::default())
    }

    /// [`GraphRegistry::load_file`] with explicit bitmap-sidecar knobs (the
    /// wire protocol's `LOAD ... bitmap_cap=<bytes>`).
    pub fn load_file_with_config(
        &self,
        name: &str,
        path: impl AsRef<Path>,
        config: &BitmapConfig,
    ) -> Result<GraphInfo, ServiceError> {
        // Read before locking: the interner gates every concurrent query's
        // pattern parse and must not wait on disk I/O.
        let text = std::fs::read_to_string(path).map_err(ServiceError::Io)?;
        let graph = {
            let mut interner = self
                .interner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            parse_graph_with_interner(&text, &mut interner)?
        };
        Ok(self.insert_with_config(name, graph, config))
    }

    /// Registers an in-memory graph under `name` (labels must already be
    /// consistent with the registry's numbering).
    pub fn insert(&self, name: &str, graph: Graph) -> GraphInfo {
        self.insert_with_config(name, graph, &BitmapConfig::default())
    }

    /// [`GraphRegistry::insert`] with explicit bitmap-sidecar knobs.
    pub fn insert_with_config(&self, name: &str, graph: Graph, config: &BitmapConfig) -> GraphInfo {
        // Stats and the bitmap sidecar are computed outside the write lock
        // so concurrent lookups never wait on the frequency-table or
        // row-building passes.
        self.insert_entry(name, graph, config, None)
    }

    /// Registers one shard of a partitioned graph: a compacted shard-local
    /// graph plus the set of shard-local node ids the shard *owns* and the
    /// replication radius the partition was built with.  Queries against a
    /// shard entry are planned rooted and restricted to owned vertices (see
    /// the service's prepare path), so the union of match sets over all
    /// shards of one partition is exactly the unsharded match set.
    pub fn insert_shard(
        &self,
        name: &str,
        graph: Graph,
        config: &BitmapConfig,
        owned: Arc<Bitset>,
        replication_hops: usize,
    ) -> GraphInfo {
        let meta = ShardMeta {
            owned,
            replication_hops,
        };
        self.insert_entry(name, graph, config, Some(meta))
    }

    fn insert_entry(
        &self,
        name: &str,
        graph: Graph,
        config: &BitmapConfig,
        shard: Option<ShardMeta>,
    ) -> GraphInfo {
        let bitmaps = Arc::new(AdjacencyBitmaps::build(&graph, config));
        let info = graph_info(name, &graph, &bitmaps);
        let entry = TargetEntry {
            stats: Arc::new(GraphStats::of(&graph)),
            graph: Arc::new(graph),
            bitmaps,
            shard,
        };
        self.graphs
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(name.to_string(), entry);
        info
    }

    /// The shard metadata of `name`, when it was registered through
    /// [`GraphRegistry::insert_shard`]: `(owned set, replication_hops)`.
    pub fn shard_meta(&self, name: &str) -> Option<(Arc<Bitset>, usize)> {
        self.graphs
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(name)
            .and_then(|entry| entry.shard.as_ref())
            .map(|meta| (Arc::clone(&meta.owned), meta.replication_hops))
    }

    /// Looks a target up by name.
    pub fn get(&self, name: &str) -> Option<Arc<Graph>> {
        self.get_with_stats(name).map(|(graph, _)| graph)
    }

    /// Looks a target up by name together with its registration-time
    /// statistics (what the planner's cost model consumes).
    pub fn get_with_stats(&self, name: &str) -> Option<(Arc<Graph>, Arc<GraphStats>)> {
        self.get_full(name).map(|(graph, stats, _)| (graph, stats))
    }

    /// Looks a target up by name together with its statistics and its bitmap
    /// adjacency sidecar — everything a cached preparation needs.
    pub fn get_full(
        &self,
        name: &str,
    ) -> Option<(Arc<Graph>, Arc<GraphStats>, Arc<AdjacencyBitmaps>)> {
        self.graphs
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(name)
            .map(|entry| {
                (
                    Arc::clone(&entry.graph),
                    Arc::clone(&entry.stats),
                    Arc::clone(&entry.bitmaps),
                )
            })
    }

    /// Parses a query pattern through the shared label interner.
    pub fn parse_pattern(&self, text: &str) -> Result<Graph, ServiceError> {
        let mut interner = self
            .interner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        Ok(parse_graph_with_interner(text, &mut interner)?)
    }

    /// Summaries of every registered graph, sorted by name.
    pub fn list(&self) -> Vec<GraphInfo> {
        let graphs = self
            .graphs
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut infos: Vec<GraphInfo> = graphs
            .iter()
            .map(|(name, entry)| graph_info(name, &entry.graph, &entry.bitmaps))
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// `true` when no graph is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn graph_info(name: &str, graph: &Graph, bitmaps: &AdjacencyBitmaps) -> GraphInfo {
    GraphInfo {
        name: name.to_string(),
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        bitmap_rows: bitmaps.row_count(),
        bitmap_bytes: bitmaps.row_bytes(),
        bitmap_capped: bitmaps.capped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::generators;
    use sge_graph::io::write_graph;

    #[test]
    fn insert_get_and_list() {
        let registry = GraphRegistry::new();
        assert!(registry.is_empty());
        let info = registry.insert("k4", generators::clique(4, 0));
        assert_eq!(info.nodes, 4);
        assert_eq!(info.edges, 12);
        registry.insert("path", generators::directed_path(3, 0));
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.get("k4").unwrap().num_nodes(), 4);
        assert!(registry.get("missing").is_none());
        // Stats are captured at registration time.
        let (graph, stats) = registry.get_with_stats("k4").unwrap();
        assert_eq!(stats.nodes, graph.num_nodes());
        assert_eq!(stats.edge_label_count(0), graph.num_edges());
        let names: Vec<_> = registry.list().into_iter().map(|i| i.name).collect();
        assert_eq!(names, vec!["k4", "path"]);
    }

    #[test]
    fn file_loading_shares_the_interner_with_patterns() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sge-registry-test-{}.gfu", std::process::id()));
        // Target with string labels: C, N, C.
        std::fs::write(&path, "#mol\n3\nC\nN\nC\n2\n0 1\n1 2\n").unwrap();
        let registry = GraphRegistry::new();
        let info = registry.load_file("mol", &path).unwrap();
        assert_eq!(info.nodes, 3);
        std::fs::remove_file(&path).ok();

        // A pattern using label N must intern to the same id the target got.
        let pattern = registry.parse_pattern("1\nN\n0\n").unwrap();
        let target = registry.get("mol").unwrap();
        assert_eq!(pattern.label(0), target.label(1));
        assert_ne!(pattern.label(0), target.label(0));
    }

    #[test]
    fn load_file_missing_is_an_error() {
        let registry = GraphRegistry::new();
        assert!(registry
            .load_file("x", "/nonexistent/definitely-missing.gfu")
            .is_err());
    }

    #[test]
    fn registration_builds_the_bitmap_sidecar() {
        let registry = GraphRegistry::new();
        let info = registry.insert("k12", generators::clique(12, 0));
        // clique(12): every node's 11-neighborhood clears the default
        // threshold in both directions.
        assert_eq!(info.bitmap_rows, 24);
        assert!(info.bitmap_bytes > 0);
        assert!(!info.bitmap_capped);
        let (_, _, bitmaps) = registry.get_full("k12").unwrap();
        assert_eq!(bitmaps.row_count(), 24);

        // A sparse path earns no rows but the sidecar (and its signatures)
        // still exists.
        let sparse = registry.insert("p3", generators::directed_path(3, 0));
        assert_eq!(sparse.bitmap_rows, 0);
        assert!(!sparse.bitmap_capped);
    }

    #[test]
    fn byte_cap_falls_back_to_csr_only() {
        let registry = GraphRegistry::new();
        let config = BitmapConfig {
            degree_threshold: 1,
            max_bytes: 1, // no row fits
        };
        let info = registry.insert_with_config("k8", generators::clique(8, 0), &config);
        assert!(info.bitmap_capped);
        assert_eq!(info.bitmap_rows, 0);
        assert_eq!(info.bitmap_bytes, 0);
        // Signatures survive the cap: the prefilter still works.
        let (_, _, bitmaps) = registry.get_full("k8").unwrap();
        assert!(bitmaps.capped());
        assert_ne!(bitmaps.out_sig(0), 0);
    }

    #[test]
    fn reload_replaces() {
        let registry = GraphRegistry::new();
        registry.insert("g", generators::clique(3, 0));
        registry.insert("g", generators::clique(5, 0));
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.get("g").unwrap().num_nodes(), 5);
        // Round-trip sanity: the stored graph serializes like the original.
        let text = write_graph(&generators::clique(5, 0));
        assert_eq!(text, write_graph(&registry.get("g").unwrap()));
    }
}

//! The target-graph registry: named, process-lifetime owned graphs.

use crate::ServiceError;
use sge_graph::io::parse_graph_with_interner;
use sge_graph::{Graph, GraphStats};
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

/// Summary of one registered graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphInfo {
    /// Registry name (the key queries refer to).
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
}

/// Loads and owns named target graphs for the lifetime of the process.
///
/// All graphs funneled through [`GraphRegistry::load_file`] and all query
/// patterns parsed with [`GraphRegistry::parse_pattern`] share **one** label
/// interner, so a pattern's `C`/`N`/`O` labels mean the same dense ids as the
/// target's — the invariant the RI family's label comparisons rely on.
/// Graphs inserted programmatically via [`GraphRegistry::insert`] bypass the
/// interner and must already use consistent integer labels.
struct TargetEntry {
    graph: Arc<Graph>,
    /// Label-frequency statistics, computed once at registration — the
    /// planner consumes these on every cache miss, and recomputing them per
    /// preparation would put a full O(V + E log E) target pass on the
    /// serving hot path.
    stats: Arc<GraphStats>,
}

/// See module docs; holds one [`TargetEntry`] per registered name.
pub struct GraphRegistry {
    graphs: RwLock<HashMap<String, TargetEntry>>,
    interner: Mutex<HashMap<String, u32>>,
}

impl Default for GraphRegistry {
    fn default() -> Self {
        GraphRegistry::new()
    }
}

impl GraphRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        GraphRegistry {
            graphs: RwLock::new(HashMap::new()),
            interner: Mutex::new(HashMap::new()),
        }
    }

    /// Loads a `.gfu`/`.gfd` file and registers it under `name`, replacing
    /// any previous graph of that name.
    pub fn load_file(&self, name: &str, path: impl AsRef<Path>) -> Result<GraphInfo, ServiceError> {
        // Read before locking: the interner gates every concurrent query's
        // pattern parse and must not wait on disk I/O.
        let text = std::fs::read_to_string(path).map_err(ServiceError::Io)?;
        let graph = {
            let mut interner = self
                .interner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            parse_graph_with_interner(&text, &mut interner)?
        };
        Ok(self.insert(name, graph))
    }

    /// Registers an in-memory graph under `name` (labels must already be
    /// consistent with the registry's numbering).
    pub fn insert(&self, name: &str, graph: Graph) -> GraphInfo {
        let info = GraphInfo {
            name: name.to_string(),
            nodes: graph.num_nodes(),
            edges: graph.num_edges(),
        };
        // Stats are computed outside the write lock so concurrent lookups
        // never wait on the frequency-table pass.
        let entry = TargetEntry {
            stats: Arc::new(GraphStats::of(&graph)),
            graph: Arc::new(graph),
        };
        self.graphs
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(name.to_string(), entry);
        info
    }

    /// Looks a target up by name.
    pub fn get(&self, name: &str) -> Option<Arc<Graph>> {
        self.get_with_stats(name).map(|(graph, _)| graph)
    }

    /// Looks a target up by name together with its registration-time
    /// statistics (what the planner's cost model consumes).
    pub fn get_with_stats(&self, name: &str) -> Option<(Arc<Graph>, Arc<GraphStats>)> {
        self.graphs
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(name)
            .map(|entry| (Arc::clone(&entry.graph), Arc::clone(&entry.stats)))
    }

    /// Parses a query pattern through the shared label interner.
    pub fn parse_pattern(&self, text: &str) -> Result<Graph, ServiceError> {
        let mut interner = self
            .interner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        Ok(parse_graph_with_interner(text, &mut interner)?)
    }

    /// Summaries of every registered graph, sorted by name.
    pub fn list(&self) -> Vec<GraphInfo> {
        let graphs = self
            .graphs
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut infos: Vec<GraphInfo> = graphs
            .iter()
            .map(|(name, entry)| GraphInfo {
                name: name.clone(),
                nodes: entry.graph.num_nodes(),
                edges: entry.graph.num_edges(),
            })
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// `true` when no graph is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::generators;
    use sge_graph::io::write_graph;

    #[test]
    fn insert_get_and_list() {
        let registry = GraphRegistry::new();
        assert!(registry.is_empty());
        let info = registry.insert("k4", generators::clique(4, 0));
        assert_eq!(info.nodes, 4);
        assert_eq!(info.edges, 12);
        registry.insert("path", generators::directed_path(3, 0));
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.get("k4").unwrap().num_nodes(), 4);
        assert!(registry.get("missing").is_none());
        // Stats are captured at registration time.
        let (graph, stats) = registry.get_with_stats("k4").unwrap();
        assert_eq!(stats.nodes, graph.num_nodes());
        assert_eq!(stats.edge_label_count(0), graph.num_edges());
        let names: Vec<_> = registry.list().into_iter().map(|i| i.name).collect();
        assert_eq!(names, vec!["k4", "path"]);
    }

    #[test]
    fn file_loading_shares_the_interner_with_patterns() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sge-registry-test-{}.gfu", std::process::id()));
        // Target with string labels: C, N, C.
        std::fs::write(&path, "#mol\n3\nC\nN\nC\n2\n0 1\n1 2\n").unwrap();
        let registry = GraphRegistry::new();
        let info = registry.load_file("mol", &path).unwrap();
        assert_eq!(info.nodes, 3);
        std::fs::remove_file(&path).ok();

        // A pattern using label N must intern to the same id the target got.
        let pattern = registry.parse_pattern("1\nN\n0\n").unwrap();
        let target = registry.get("mol").unwrap();
        assert_eq!(pattern.label(0), target.label(1));
        assert_ne!(pattern.label(0), target.label(0));
    }

    #[test]
    fn load_file_missing_is_an_error() {
        let registry = GraphRegistry::new();
        assert!(registry
            .load_file("x", "/nonexistent/definitely-missing.gfu")
            .is_err());
    }

    #[test]
    fn reload_replaces() {
        let registry = GraphRegistry::new();
        registry.insert("g", generators::clique(3, 0));
        registry.insert("g", generators::clique(5, 0));
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.get("g").unwrap().num_nodes(), 5);
        // Round-trip sanity: the stored graph serializes like the original.
        let text = write_graph(&generators::clique(5, 0));
        assert_eq!(text, write_graph(&registry.get("g").unwrap()));
    }
}

//! A counting semaphore on `Mutex` + `Condvar` (std has none).

use std::sync::{Condvar, Mutex};

/// Counting semaphore used for global admission control.
pub(crate) struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    /// A semaphore with `permits` slots, clamped to at least one: zero
    /// permits can never be granted, so every `acquire` would block forever —
    /// a misconfigured `max_in_flight=0` used to deadlock the whole service
    /// on its first query.
    pub(crate) fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits.max(1)),
            available: Condvar::new(),
        }
    }

    /// Blocks until a permit is available; the permit is released when the
    /// returned guard drops.
    pub(crate) fn acquire(&self) -> Permit<'_> {
        let mut permits = self
            .permits
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while *permits == 0 {
            permits = self
                .available
                .wait(permits)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        *permits -= 1;
        Permit { semaphore: self }
    }
}

/// RAII guard for one admission permit.
pub(crate) struct Permit<'a> {
    semaphore: &'a Semaphore,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut permits = self
            .semaphore
            .permits
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *permits += 1;
        self.semaphore.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn zero_permits_is_clamped_instead_of_deadlocking() {
        // Regression: `Semaphore::new(0)` used to make every `acquire` wait
        // forever.  Construction now clamps to one permit, so a single
        // acquire/release cycle completes.
        let semaphore = Semaphore::new(0);
        drop(semaphore.acquire());
        drop(semaphore.acquire()); // the permit was released and re-granted
    }

    #[test]
    fn limits_concurrency() {
        let semaphore = Arc::new(Semaphore::new(2));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let semaphore = Arc::clone(&semaphore);
                let in_flight = Arc::clone(&in_flight);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    let _permit = semaphore.acquire();
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }
}

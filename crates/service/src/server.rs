//! The std-only TCP front end.
//!
//! One thread per connection, newline-delimited requests, one JSON line per
//! response.  `SHUTDOWN` answers, then stops the accept loop (a loopback
//! self-connection wakes the blocking `accept`).

use crate::protocol::{
    batch_response, error_response, explain_response, load_response, parse_batch_query,
    parse_command, query_response, shutdown_response, stats_response, Command,
};
use crate::{QuerySet, ServiceError, SharedService};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    service: SharedService,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs, service: SharedService) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client issues `SHUTDOWN`.
    pub fn run(self) -> std::io::Result<()> {
        let local_addr = self.listener.local_addr()?;
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&self.shutdown);
            std::thread::spawn(move || {
                // Per-connection errors only terminate that connection.
                let _ = handle_connection(stream, &service, &shutdown, local_addr);
            });
        }
        Ok(())
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &SharedService,
    shutdown: &AtomicBool,
    local_addr: SocketAddr,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client closed
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_command(&line) {
            Ok(Command::Load { name, path }) => match service.registry().load_file(&name, &path) {
                Ok(info) => load_response(&info),
                Err(err) => error_response(&err),
            },
            Ok(Command::Query { target, spec }) => match service.run_query(&target, &spec) {
                Ok(outcome) => query_response(&outcome),
                Err(err) => error_response(&err),
            },
            Ok(Command::Explain { target, spec }) => match service.explain(&target, &spec) {
                Ok(outcome) => explain_response(&outcome),
                Err(err) => error_response(&err),
            },
            Ok(Command::Batch { target, count }) => match read_batch(&mut reader, target, count) {
                Ok(set) => batch_response(&service.run_batch(&set)),
                Err(err) => error_response(&err),
            },
            Ok(Command::Stats) => stats_response(service),
            Ok(Command::Shutdown) => {
                writeln!(writer, "{}", shutdown_response().render())?;
                writer.flush()?;
                shutdown.store(true, Ordering::SeqCst);
                // Wake the blocking accept loop so Server::run observes the
                // flag even with no further client traffic.
                let _ = TcpStream::connect(wake_addr(local_addr));
                return Ok(());
            }
            Err(err) => {
                // A malformed BATCH header still announced continuation
                // lines (the client sends them regardless); consume them so
                // they are not misread as top-level commands.
                for _ in 0..crate::client::continuation_lines(&line) {
                    let mut continuation = String::new();
                    if reader.read_line(&mut continuation)? == 0 {
                        break;
                    }
                }
                error_response(&err)
            }
        };
        writeln!(writer, "{}", response.render())?;
        writer.flush()?;
    }
}

/// The address to poke to wake the blocking `accept`: a wildcard bind
/// (`0.0.0.0` / `::`) is not connectable on every platform, so substitute
/// the matching loopback address.
fn wake_addr(local_addr: SocketAddr) -> SocketAddr {
    let mut addr = local_addr;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

/// Reads the `count` continuation lines of a `BATCH` request.
///
/// All `count` lines are consumed even when one fails to parse — bailing
/// early would leave the remaining continuation lines in the stream to be
/// misread as top-level commands, desynchronizing the request/response
/// pairing for the rest of the connection.
fn read_batch(
    reader: &mut BufReader<TcpStream>,
    target: String,
    count: usize,
) -> Result<QuerySet, ServiceError> {
    let mut set = QuerySet::new(target);
    let mut first_error = None;
    let mut line = String::new();
    for index in 0..count {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(ServiceError::Protocol(format!(
                "connection closed after {index} of {count} batch query lines"
            )));
        }
        match parse_batch_query(&line) {
            Ok(spec) => {
                set.push(spec);
            }
            Err(err) => first_error = first_error.or(Some(err)),
        }
    }
    match first_error {
        Some(err) => Err(err),
        None => Ok(set),
    }
}

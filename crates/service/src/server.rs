//! The std-only TCP front end.
//!
//! One thread per connection, newline-delimited requests, one JSON line per
//! response — except streaming queries (`emit=stream`), which answer with a
//! header line, row frames and a footer line (see [`crate::protocol`]).
//! `SHUTDOWN` answers, stops the accept loop (a loopback self-connection
//! wakes the blocking `accept`), and the server then joins the per-connection
//! threads with a drain deadline so in-flight responses are not truncated.
//!
//! Robustness: request lines are read through [`Read::take`] so a client
//! that never sends a newline cannot grow server memory past
//! [`MAX_REQUEST_LINE_BYTES`], and the continuation-line drain after a
//! malformed `BATCH` header is capped at [`MAX_BATCH_QUERIES`] lines — both
//! overflows are answered with a structured error before the connection is
//! dropped.

use crate::protocol::{
    batch_response, error_response, explain_response, load_response, parse_batch_query,
    parse_command, query_response, shutdown_response, stats_response, stream_footer_response,
    stream_header_response, stream_rows_frame, Command, MAX_BATCH_QUERIES, MAX_REQUEST_LINE_BYTES,
};
use crate::{EmitMode, QuerySet, ServiceError, SharedService, StreamHeader, StreamSink};
use sge_graph::NodeId;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long [`Server::run`] waits for in-flight connection threads after
/// `SHUTDOWN` before giving up on them (idle keep-alive connections would
/// otherwise hold the process open forever).
const DEFAULT_DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    service: SharedService,
    shutdown: Arc<AtomicBool>,
    drain_timeout: Duration,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs, service: SharedService) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
            drain_timeout: DEFAULT_DRAIN_TIMEOUT,
        })
    }

    /// Sets how long `run` waits for in-flight connections after `SHUTDOWN`.
    pub fn with_drain_timeout(mut self, timeout: Duration) -> Server {
        self.drain_timeout = timeout;
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client issues `SHUTDOWN`, then drains:
    /// connection threads are joined until the drain deadline expires, so
    /// mid-query/mid-write connections finish their responses before the
    /// server returns (idle connections that outlast the deadline are
    /// abandoned — they hold no half-written response).
    pub fn run(self) -> std::io::Result<()> {
        let local_addr = self.listener.local_addr()?;
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            // Reap finished handlers so the vector tracks live connections,
            // not connection history.
            connections.retain(|handle| !handle.is_finished());
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&self.shutdown);
            connections.push(std::thread::spawn(move || {
                // Per-connection errors only terminate that connection.
                let _ = handle_connection(stream, &service, &shutdown, local_addr);
            }));
        }
        // Drain: give in-flight handlers until the deadline to finish.
        let deadline = Instant::now() + self.drain_timeout;
        for handle in connections {
            while !handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
            // else: an idle client is still connected; abandon the handler
            // (it owns no partially-written response) so shutdown completes.
        }
        Ok(())
    }
}

/// Outcome of one bounded request-line read.
enum LineRead {
    /// Clean end of stream.
    Eof,
    /// A complete line (newline seen within the cap).
    Line,
    /// The cap was hit before a newline arrived.
    Overflow,
    /// The line fit the cap but is not valid UTF-8.
    Invalid,
}

/// Reads one request line through a [`Read::take`] guard so an unterminated
/// line cannot grow past [`MAX_REQUEST_LINE_BYTES`].
///
/// Bytes are read raw (`read_until`) and UTF-8 validated *after* the length
/// check: validating first would turn a cap boundary that splits a
/// multi-byte character into an `InvalidData` I/O error, silently dropping
/// the connection instead of answering the documented structured error.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> std::io::Result<LineRead> {
    line.clear();
    let mut bytes = Vec::new();
    let read = (&mut *reader)
        .take(MAX_REQUEST_LINE_BYTES as u64 + 1)
        .read_until(b'\n', &mut bytes)?;
    if read == 0 {
        return Ok(LineRead::Eof);
    }
    if read > MAX_REQUEST_LINE_BYTES {
        return Ok(LineRead::Overflow);
    }
    match String::from_utf8(bytes) {
        Ok(text) => {
            *line = text;
            Ok(LineRead::Line)
        }
        Err(_) => Ok(LineRead::Invalid),
    }
}

fn line_too_long_error() -> ServiceError {
    ServiceError::Protocol(format!(
        "request line exceeds {MAX_REQUEST_LINE_BYTES} bytes; closing connection"
    ))
}

fn invalid_utf8_error() -> ServiceError {
    ServiceError::Protocol("request line is not valid UTF-8; closing connection".to_string())
}

/// Writes one structured error line before the caller drops the connection.
fn refuse(writer: &mut TcpStream, err: &ServiceError) -> std::io::Result<()> {
    writeln!(writer, "{}", error_response(err).render())?;
    writer.flush()
}

fn handle_connection(
    stream: TcpStream,
    service: &SharedService,
    shutdown: &AtomicBool,
    local_addr: SocketAddr,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(()); // server is draining; stop taking requests
        }
        match read_bounded_line(&mut reader, &mut line)? {
            LineRead::Eof => return Ok(()), // client closed
            LineRead::Overflow => {
                // Answer with a structured error, then drop the connection:
                // the rest of the oversized line cannot be resynchronized.
                return refuse(&mut writer, &line_too_long_error());
            }
            LineRead::Invalid => return refuse(&mut writer, &invalid_utf8_error()),
            LineRead::Line => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_command(&line) {
            Ok(Command::Load { name, path }) => match service.registry().load_file(&name, &path) {
                Ok(info) => load_response(&info),
                Err(err) => error_response(&err),
            },
            Ok(Command::Query { target, spec }) if spec.emit == EmitMode::Stream => {
                let mut sink = SocketSink {
                    writer: &mut writer,
                };
                match service.run_query_streaming(&target, &spec, &mut sink) {
                    Ok(streamed) => {
                        // A dead client makes this write fail, which ends the
                        // connection — exactly what a footer to nobody needs.
                        writeln!(writer, "{}", stream_footer_response(&streamed).render())?;
                        writer.flush()?;
                        continue;
                    }
                    // The header never went out (client vanished first):
                    // nothing ran, drop the connection.
                    Err(ServiceError::Io(err)) => return Err(err),
                    // Pre-run failures (unknown target, parse error) are a
                    // normal single-line error, like a buffered query.
                    Err(err) => error_response(&err),
                }
            }
            Ok(Command::Query { target, spec }) => match service.run_query(&target, &spec) {
                Ok(outcome) => query_response(&outcome),
                Err(err) => error_response(&err),
            },
            Ok(Command::Explain { target, spec }) => match service.explain(&target, &spec) {
                Ok(outcome) => explain_response(&outcome),
                Err(err) => error_response(&err),
            },
            Ok(Command::Batch { target, count }) => match read_batch(&mut reader, target, count)? {
                BatchRead::Set(set) => batch_response(&service.run_batch(&set)),
                BatchRead::Failed(err) => error_response(&err),
                BatchRead::Overflow => return refuse(&mut writer, &line_too_long_error()),
            },
            Ok(Command::Stats) => stats_response(service),
            Ok(Command::Shutdown) => {
                writeln!(writer, "{}", shutdown_response().render())?;
                writer.flush()?;
                shutdown.store(true, Ordering::SeqCst);
                // Wake the blocking accept loop so Server::run observes the
                // flag even with no further client traffic.
                let _ = TcpStream::connect(wake_addr(local_addr));
                return Ok(());
            }
            Err(err) => {
                // A malformed BATCH header still announced continuation
                // lines (the client sends them regardless); consume them so
                // they are not misread as top-level commands.  The announced
                // count comes from the *unvalidated* header, so the drain is
                // capped — a header announcing more than the cap closes the
                // connection instead of pinning the handler forever.
                let announced = crate::client::continuation_lines(&line);
                if announced > MAX_BATCH_QUERIES {
                    let err = ServiceError::Protocol(format!(
                        "malformed BATCH header announces {announced} continuation lines \
                         (cap {MAX_BATCH_QUERIES}); closing connection"
                    ));
                    return refuse(&mut writer, &err);
                }
                let mut continuation = String::new();
                for _ in 0..announced {
                    match read_bounded_line(&mut reader, &mut continuation)? {
                        LineRead::Eof => break,
                        LineRead::Overflow => return refuse(&mut writer, &line_too_long_error()),
                        // Drained lines are never parsed; any bytes do.
                        LineRead::Invalid | LineRead::Line => {}
                    }
                }
                error_response(&err)
            }
        };
        writeln!(writer, "{}", response.render())?;
        writer.flush()?;
    }
}

/// [`StreamSink`] over the connection socket: one JSON line per call.
struct SocketSink<'a> {
    writer: &'a mut TcpStream,
}

impl StreamSink for SocketSink<'_> {
    fn begin(&mut self, header: &StreamHeader) -> std::io::Result<()> {
        writeln!(self.writer, "{}", stream_header_response(header).render())?;
        self.writer.flush()
    }

    fn rows(&mut self, rows: &[Vec<NodeId>]) -> std::io::Result<()> {
        writeln!(self.writer, "{}", stream_rows_frame(rows).render())?;
        self.writer.flush()
    }
}

/// The address to poke to wake the blocking `accept`: a wildcard bind
/// (`0.0.0.0` / `::`) is not connectable on every platform, so substitute
/// the matching loopback address.
fn wake_addr(local_addr: SocketAddr) -> SocketAddr {
    let mut addr = local_addr;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

/// Outcome of reading a batch's continuation lines.
enum BatchRead {
    /// All lines parsed.
    Set(QuerySet),
    /// At least one line failed to parse (all lines were still consumed so
    /// the connection stays in sync).
    Failed(ServiceError),
    /// A continuation line overflowed the request-line cap; the connection
    /// cannot be resynchronized and must be dropped.
    Overflow,
}

/// Reads the `count` continuation lines of a `BATCH` request.
///
/// All `count` lines are consumed even when one fails to parse — bailing
/// early would leave the remaining continuation lines in the stream to be
/// misread as top-level commands, desynchronizing the request/response
/// pairing for the rest of the connection.  (`count` was validated against
/// [`MAX_BATCH_QUERIES`] by the protocol parser.)
fn read_batch(
    reader: &mut BufReader<TcpStream>,
    target: String,
    count: usize,
) -> std::io::Result<BatchRead> {
    let mut set = QuerySet::new(target);
    let mut first_error = None;
    let mut line = String::new();
    for index in 0..count {
        match read_bounded_line(reader, &mut line)? {
            LineRead::Eof => {
                return Ok(BatchRead::Failed(ServiceError::Protocol(format!(
                    "connection closed after {index} of {count} batch query lines"
                ))));
            }
            LineRead::Overflow => return Ok(BatchRead::Overflow),
            LineRead::Invalid => {
                // The newline framing held, so the connection stays in sync;
                // the garbage line just fails like any unparsable query.
                first_error = first_error.or(Some(invalid_utf8_error()));
                continue;
            }
            LineRead::Line => {}
        }
        match parse_batch_query(&line) {
            Ok(spec) => {
                set.push(spec);
            }
            Err(err) => first_error = first_error.or(Some(err)),
        }
    }
    Ok(match first_error {
        Some(err) => BatchRead::Failed(err),
        None => BatchRead::Set(set),
    })
}

//! The std-only TCP front end.
//!
//! One thread per connection, newline-delimited requests, one JSON line per
//! response — except streaming queries (`emit=stream`), which answer with a
//! header line, row frames and a footer line (see [`crate::protocol`]).
//! The per-connection request loop itself lives in [`crate::connection`]
//! (transport-generic, so the deterministic simulator drives the same code);
//! this module owns what is irreducibly TCP: binding, the accept loop, the
//! thread-per-connection model, and drain-on-`SHUTDOWN`.
//!
//! `SHUTDOWN` answers, stops the accept loop (a loopback self-connection
//! wakes the blocking `accept`), and the server then waits for in-flight
//! connection handlers on a [`ConnectionTracker`] — a counter plus condvar,
//! so draining parks instead of burning a sleep-spin — up to a drain
//! deadline measured on the server's injectable [`Clock`].

use crate::connection::{Backend, Connection, StepOutcome};
use crate::json::Json;
use sge_obs::EventLog;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use sge_util::Clock;

/// How long [`Server::run`] waits for in-flight connection threads after
/// `SHUTDOWN` before giving up on them (idle keep-alive connections would
/// otherwise hold the process open forever).
const DEFAULT_DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    service: Arc<dyn Backend>,
    shutdown: Arc<AtomicBool>,
    drain_timeout: Duration,
    event_log: Option<Arc<EventLog>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port).  The backend is
    /// either a plain [`crate::Service`] or a sharded
    /// [`crate::coordinator::Coordinator`] — the accept loop and protocol
    /// handling are identical.
    pub fn bind<B: Backend + 'static>(
        addr: impl ToSocketAddrs,
        service: Arc<B>,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
            drain_timeout: DEFAULT_DRAIN_TIMEOUT,
            event_log: None,
        })
    }

    /// Sets how long `run` waits for in-flight connections after `SHUTDOWN`.
    pub fn with_drain_timeout(mut self, timeout: Duration) -> Server {
        self.drain_timeout = timeout;
        self
    }

    /// Attaches a structured event log: the server records one JSON line per
    /// lifecycle event (`listening`, `conn_open`, `conn_close`, `shutdown`,
    /// `drained`) with timestamps from the service clock.  Without a log the
    /// server pays nothing.
    pub fn with_event_log(mut self, log: Arc<EventLog>) -> Server {
        // Share the log with the service so non-lifecycle events (bitmap
        // cap fallbacks on LOAD) land in the same stream.
        self.service.set_event_log(Arc::clone(&log));
        self.event_log = Some(log);
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client issues `SHUTDOWN`, then drains:
    /// the server waits for in-flight connection handlers until the drain
    /// deadline expires, so mid-query/mid-write connections finish their
    /// responses before the server returns (idle connections that outlast
    /// the deadline are abandoned — they hold no half-written response).
    pub fn run(self) -> std::io::Result<()> {
        let local_addr = self.listener.local_addr()?;
        let tracker = Arc::new(ConnectionTracker::new());
        let conn_ids = AtomicU64::new(0);
        log_event(
            self.event_log.as_deref(),
            self.service.as_ref(),
            "listening",
            vec![("addr", Json::str(local_addr.to_string()))],
        );
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let conn = conn_ids.fetch_add(1, Ordering::Relaxed) + 1;
            let peer = stream
                .peer_addr()
                .map(|addr| addr.to_string())
                .unwrap_or_else(|_| "unknown".to_string());
            log_event(
                self.event_log.as_deref(),
                self.service.as_ref(),
                "conn_open",
                vec![("conn", Json::U64(conn)), ("peer", Json::str(peer))],
            );
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&self.shutdown);
            let log = self.event_log.clone();
            let guard = tracker.register();
            let gauge = self.service.connections_gauge();
            gauge.inc();
            std::thread::spawn(move || {
                let _live = guard; // deregisters (and wakes the drain) on exit
                                   // Per-connection errors only terminate that connection.
                let _ = handle_connection(
                    stream,
                    &service,
                    &shutdown,
                    local_addr,
                    log.as_deref(),
                    conn,
                );
                gauge.dec();
                log_event(
                    log.as_deref(),
                    service.as_ref(),
                    "conn_close",
                    vec![("conn", Json::U64(conn))],
                );
            });
        }
        // Drain: give in-flight handlers until the deadline to finish.  The
        // deadline is measured on the service's clock, so drain semantics
        // are the same whether time is real or simulated.
        let clock = self.service.clock();
        let clean = tracker.drain(clock.as_ref(), self.drain_timeout);
        log_event(
            self.event_log.as_deref(),
            self.service.as_ref(),
            "drained",
            vec![("clean", Json::Bool(clean))],
        );
        Ok(())
    }
}

/// Records one structured JSON event line when a log is attached; a `None`
/// log costs one branch.  Timestamps come from the service clock, so logs
/// from a simulated service carry virtual time.
pub(crate) fn log_event(
    log: Option<&EventLog>,
    backend: &dyn Backend,
    event: &str,
    fields: Vec<(&str, Json)>,
) {
    let Some(log) = log else { return };
    let mut pairs = vec![
        ("ts_seconds", Json::F64(backend.clock().now().as_secs_f64())),
        ("event", Json::str(event)),
    ];
    pairs.extend(fields);
    log.record(&Json::obj(pairs).render());
}

/// Counts live connection handlers so drain can wait for them to finish
/// without polling.  Handlers hold a [`LiveGuard`]; dropping it decrements
/// the count and wakes any drainer.
struct ConnectionTracker {
    live: Mutex<usize>,
    changed: Condvar,
}

impl ConnectionTracker {
    fn new() -> Self {
        ConnectionTracker {
            live: Mutex::new(0),
            changed: Condvar::new(),
        }
    }

    /// Registers one handler; the guard deregisters on drop.
    fn register(self: &Arc<Self>) -> LiveGuard {
        let mut live = self
            .live
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *live += 1;
        LiveGuard {
            tracker: Arc::clone(self),
        }
    }

    /// Waits until every registered handler finished or `timeout` elapsed on
    /// `clock`.  Returns `true` when the drain completed (no live handlers).
    fn drain(&self, clock: &dyn Clock, timeout: Duration) -> bool {
        let deadline = clock.now().saturating_add(timeout);
        let mut live = self
            .live
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while *live > 0 {
            let now = clock.now();
            if now >= deadline {
                // An idle client is still connected; abandon its handler (it
                // owns no partially-written response) so shutdown completes.
                return false;
            }
            let (guard, _timeout) = self
                .changed
                .wait_timeout(live, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            live = guard;
        }
        true
    }
}

/// RAII registration of one live connection handler.
struct LiveGuard {
    tracker: Arc<ConnectionTracker>,
}

impl Drop for LiveGuard {
    fn drop(&mut self) {
        let mut live = self
            .tracker
            .live
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *live = live.saturating_sub(1);
        self.tracker.changed.notify_all();
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &Arc<dyn Backend>,
    shutdown: &AtomicBool,
    local_addr: SocketAddr,
    log: Option<&EventLog>,
    conn: u64,
) -> std::io::Result<()> {
    let writer = stream.try_clone()?;
    let mut connection = Connection::new(BufReader::new(stream), writer);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(()); // server is draining; stop taking requests
        }
        match connection.step(service.as_ref())? {
            StepOutcome::Continue => {}
            StepOutcome::Closed => return Ok(()),
            StepOutcome::ShutdownRequested => {
                shutdown.store(true, Ordering::SeqCst);
                log_event(
                    log,
                    service.as_ref(),
                    "shutdown",
                    vec![("conn", Json::U64(conn))],
                );
                // Wake the blocking accept loop so Server::run observes the
                // flag even with no further client traffic.
                let _ = TcpStream::connect(wake_addr(local_addr));
                return Ok(());
            }
        }
    }
}

/// The address to poke to wake the blocking `accept`: a wildcard bind
/// (`0.0.0.0` / `::`) is not connectable on every platform, so substitute
/// the matching loopback address.
fn wake_addr(local_addr: SocketAddr) -> SocketAddr {
    let mut addr = local_addr;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_util::{SystemClock, VirtualClock};

    #[test]
    fn tracker_drains_immediately_with_no_handlers() {
        let tracker = Arc::new(ConnectionTracker::new());
        assert!(tracker.drain(&SystemClock::new(), Duration::from_secs(1)));
    }

    #[test]
    fn tracker_waits_for_a_live_handler() {
        let tracker = Arc::new(ConnectionTracker::new());
        let guard = tracker.register();
        let worker = {
            let tracker = Arc::clone(&tracker);
            std::thread::spawn(move || tracker.drain(&SystemClock::new(), Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(10));
        drop(guard);
        assert!(worker.join().unwrap(), "drain should observe the release");
    }

    #[test]
    fn tracker_gives_up_at_the_deadline() {
        let tracker = Arc::new(ConnectionTracker::new());
        let _guard = tracker.register(); // never released
        let clock = SystemClock::new();
        assert!(!tracker.drain(&clock, Duration::from_millis(20)));
    }

    #[test]
    fn event_log_records_the_connection_lifecycle() {
        use std::io::{BufRead, BufReader, Write};
        let service = Arc::new(crate::Service::new(crate::ServiceConfig::default()));
        let log = Arc::new(EventLog::new(64));
        let server = Server::bind("127.0.0.1:0", service)
            .unwrap()
            .with_event_log(Arc::clone(&log));
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"STATS\nSHUTDOWN\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap(); // STATS response
        line.clear();
        reader.read_line(&mut line).unwrap(); // SHUTDOWN response
        drop(reader);
        drop(stream);
        handle.join().unwrap().unwrap();

        let lines = log.recent();
        let events: Vec<String> = lines
            .iter()
            .filter_map(|line| {
                let tail = line.split("\"event\":\"").nth(1)?;
                Some(tail.split('"').next().unwrap_or_default().to_string())
            })
            .collect();
        assert_eq!(events.first().map(String::as_str), Some("listening"));
        assert_eq!(events.last().map(String::as_str), Some("drained"));
        for expected in ["conn_open", "shutdown", "conn_close"] {
            assert!(
                events.iter().any(|event| event == expected),
                "missing {expected} in {events:?}"
            );
        }
        assert!(
            lines.iter().all(|line| line.contains("\"ts_seconds\":")),
            "every event line carries a clock timestamp: {lines:?}"
        );
        assert!(
            lines
                .iter()
                .any(|line| line.contains("\"conn\":1") && line.contains("\"peer\":")),
            "conn_open records the id and peer: {lines:?}"
        );
    }

    #[test]
    fn tracker_deadline_respects_an_expired_virtual_clock() {
        // Under simulated time an already-expired deadline abandons the
        // handler without any real-time wait.
        let tracker = Arc::new(ConnectionTracker::new());
        let _guard = tracker.register();
        let clock = VirtualClock::starting_at(Duration::from_secs(100));
        let wall = std::time::Instant::now();
        assert!(!tracker.drain(&clock, Duration::ZERO));
        assert!(wall.elapsed() < Duration::from_secs(1));
    }
}

//! Aggregate service statistics: counters plus a latency distribution.

use sge_util::{LatencyHistogram, RunningStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Thread-safe accumulator of service-level counters and latencies.
pub struct ServiceStats {
    queries: AtomicU64,
    batches: AtomicU64,
    matches: AtomicU64,
    errors: AtomicU64,
    streams: AtomicU64,
    rows_streamed: AtomicU64,
    streams_cancelled: AtomicU64,
    admissions: AtomicU64,
    admission_wait_nanos: AtomicU64,
    latency: Mutex<(RunningStats, LatencyHistogram)>,
}

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats::new()
    }
}

impl ServiceStats {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        ServiceStats {
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            matches: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            streams: AtomicU64::new(0),
            rows_streamed: AtomicU64::new(0),
            streams_cancelled: AtomicU64::new(0),
            admissions: AtomicU64::new(0),
            admission_wait_nanos: AtomicU64::new(0),
            latency: Mutex::new((RunningStats::new(), LatencyHistogram::new())),
        }
    }

    /// Records one successfully served query.
    pub fn record_query(&self, matches: u64, latency_seconds: f64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.matches.fetch_add(matches, Ordering::Relaxed);
        let mut latency = self
            .latency
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        latency.0.push(latency_seconds);
        latency.1.record(latency_seconds);
    }

    /// Records one completed batch.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one streamed query: how many rows went over the wire and
    /// whether the client vanished mid-stream (cancelling enumeration).
    pub fn record_stream(&self, rows_sent: u64, cancelled: bool) {
        self.streams.fetch_add(1, Ordering::Relaxed);
        self.rows_streamed.fetch_add(rows_sent, Ordering::Relaxed);
        if cancelled {
            self.streams_cancelled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one failed query.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one admission-permit acquisition and how long the caller
    /// waited for it.  The wait is measured on the service's injected clock,
    /// so under the simulator's virtual clock it is exactly reproducible —
    /// admission-control pressure becomes an observable, assertable fact
    /// instead of invisible latency jitter.
    pub fn record_admission_wait(&self, wait_seconds: f64) {
        self.admissions.fetch_add(1, Ordering::Relaxed);
        let nanos = (wait_seconds.max(0.0) * 1e9).round() as u64;
        self.admission_wait_nanos
            .fetch_add(nanos, Ordering::Relaxed);
    }

    /// A point-in-time snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let (running, histogram) = {
            let latency = self
                .latency
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            (latency.0.clone(), latency.1.clone())
        };
        StatsSnapshot {
            queries_served: self.queries.load(Ordering::Relaxed),
            batches_served: self.batches.load(Ordering::Relaxed),
            total_matches: self.matches.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            streams_served: self.streams.load(Ordering::Relaxed),
            rows_streamed: self.rows_streamed.load(Ordering::Relaxed),
            streams_cancelled: self.streams_cancelled.load(Ordering::Relaxed),
            admissions: self.admissions.load(Ordering::Relaxed),
            admission_wait_seconds: self.admission_wait_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            latency_mean_seconds: running.mean(),
            latency_stddev_seconds: running.stddev(),
            latency_min_seconds: running.min().unwrap_or(0.0),
            latency_max_seconds: running.max().unwrap_or(0.0),
            latency_p50_seconds: histogram.quantile_seconds(0.50).unwrap_or(0.0),
            latency_p90_seconds: histogram.quantile_seconds(0.90).unwrap_or(0.0),
            latency_p99_seconds: histogram.quantile_seconds(0.99).unwrap_or(0.0),
        }
    }
}

/// Point-in-time service statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Queries served successfully (single and batched).
    pub queries_served: u64,
    /// Batches completed.
    pub batches_served: u64,
    /// Sum of match counts over all served queries.
    pub total_matches: u64,
    /// Queries that failed (unknown target, parse error, …).
    pub errors: u64,
    /// Streamed queries served (also counted in `queries_served`).
    pub streams_served: u64,
    /// Total rows delivered over all streamed queries.
    pub rows_streamed: u64,
    /// Streamed queries whose client vanished mid-stream (enumeration was
    /// cancelled early).
    pub streams_cancelled: u64,
    /// Admission permits acquired (one per executed enumeration run).
    pub admissions: u64,
    /// Total time runs spent waiting for an admission permit, in seconds
    /// (measured on the service's injected clock).
    pub admission_wait_seconds: f64,
    /// Mean end-to-end query latency in seconds.
    pub latency_mean_seconds: f64,
    /// Population standard deviation of query latency.
    pub latency_stddev_seconds: f64,
    /// Fastest observed query.
    pub latency_min_seconds: f64,
    /// Slowest observed query.
    pub latency_max_seconds: f64,
    /// Median latency (histogram bucket resolution).
    pub latency_p50_seconds: f64,
    /// 90th-percentile latency (histogram bucket resolution).
    pub latency_p90_seconds: f64,
    /// 99th-percentile latency (histogram bucket resolution).
    pub latency_p99_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_latency_aggregate() {
        let stats = ServiceStats::new();
        stats.record_query(60, 0.001);
        stats.record_query(40, 0.003);
        stats.record_batch();
        stats.record_error();
        stats.record_stream(40, false);
        stats.record_stream(7, true);
        stats.record_admission_wait(0.5);
        stats.record_admission_wait(0.25);
        let snap = stats.snapshot();
        assert_eq!(snap.queries_served, 2);
        assert_eq!(snap.batches_served, 1);
        assert_eq!(snap.total_matches, 100);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.streams_served, 2);
        assert_eq!(snap.rows_streamed, 47);
        assert_eq!(snap.streams_cancelled, 1);
        assert_eq!(snap.admissions, 2);
        assert!((snap.admission_wait_seconds - 0.75).abs() < 1e-9);
        assert!((snap.latency_mean_seconds - 0.002).abs() < 1e-12);
        assert_eq!(snap.latency_min_seconds, 0.001);
        assert_eq!(snap.latency_max_seconds, 0.003);
        assert!(snap.latency_p50_seconds > 0.0);
        assert!(snap.latency_p99_seconds >= snap.latency_p50_seconds);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let snap = ServiceStats::new().snapshot();
        assert_eq!(snap, StatsSnapshot::default());
    }
}

//! Aggregate service statistics: counters plus a latency distribution.
//!
//! Since the observability plane landed, `ServiceStats` is a *view* over
//! handles registered in a [`MetricsRegistry`]: every counter the service
//! records is simultaneously visible through the `METRICS` wire verb (under
//! the `service.*` names) and through the legacy [`StatsSnapshot`] shape the
//! `STATS` verb reports.  Recording goes straight to the shared atomic
//! cells — there is no copy to keep in sync.

use sge_obs::{Counter, Histogram, MetricsRegistry};

/// Thread-safe accumulator of service-level counters and latencies.
///
/// Construct with [`ServiceStats::with_registry`] to share the cells with a
/// metrics registry; [`ServiceStats::new`] registers into a private throwaway
/// registry (tests, standalone use).
pub struct ServiceStats {
    queries: Counter,
    batches: Counter,
    matches: Counter,
    errors: Counter,
    streams: Counter,
    rows_streamed: Counter,
    streams_cancelled: Counter,
    admissions: Counter,
    admission_wait_nanos: Counter,
    latency: Histogram,
}

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats::new()
    }
}

impl ServiceStats {
    /// Creates a zeroed accumulator backed by a private registry.
    pub fn new() -> Self {
        Self::with_registry(&MetricsRegistry::new())
    }

    /// Creates an accumulator whose cells live in `registry` under the
    /// `service.*` metric names, so `STATS` and `METRICS` report the same
    /// underlying counts.
    pub fn with_registry(registry: &MetricsRegistry) -> Self {
        Self::with_registry_prefixed(registry, "service")
    }

    /// [`ServiceStats::with_registry`] under an arbitrary metric-name prefix.
    ///
    /// The sharded coordinator records its client-facing counters under
    /// `coordinator.*` so its admission waits and latencies never alias —
    /// and never double-count against — the per-shard `service.*` family.
    pub fn with_registry_prefixed(registry: &MetricsRegistry, prefix: &str) -> Self {
        let name = |suffix: &str| format!("{prefix}.{suffix}");
        ServiceStats {
            queries: registry.counter(&name("queries_served")),
            batches: registry.counter(&name("batches_served")),
            matches: registry.counter(&name("total_matches")),
            errors: registry.counter(&name("errors")),
            streams: registry.counter(&name("streams_served")),
            rows_streamed: registry.counter(&name("rows_streamed")),
            streams_cancelled: registry.counter(&name("streams_cancelled")),
            admissions: registry.counter(&name("admissions")),
            admission_wait_nanos: registry.counter(&name("admission_wait_nanos")),
            latency: registry.histogram(&name("latency_seconds")),
        }
    }

    /// Records one successfully served query.
    pub fn record_query(&self, matches: u64, latency_seconds: f64) {
        self.queries.inc();
        self.matches.add(matches);
        self.latency.record(latency_seconds);
    }

    /// Records one completed batch.
    pub fn record_batch(&self) {
        self.batches.inc();
    }

    /// Records one streamed query: how many rows went over the wire and
    /// whether the client vanished mid-stream (cancelling enumeration).
    pub fn record_stream(&self, rows_sent: u64, cancelled: bool) {
        self.streams.inc();
        self.rows_streamed.add(rows_sent);
        if cancelled {
            self.streams_cancelled.inc();
        }
    }

    /// Records one failed query.
    pub fn record_error(&self) {
        self.errors.inc();
    }

    /// Records one admission-permit acquisition and how long the caller
    /// waited for it.  The wait is measured on the service's injected clock,
    /// so under the simulator's virtual clock it is exactly reproducible —
    /// admission-control pressure becomes an observable, assertable fact
    /// instead of invisible latency jitter.
    pub fn record_admission_wait(&self, wait_seconds: f64) {
        self.admissions.inc();
        let nanos = (wait_seconds.max(0.0) * 1e9).round() as u64;
        self.admission_wait_nanos.add(nanos);
    }

    /// A point-in-time snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let (running, histogram) = self.latency.stats();
        StatsSnapshot {
            queries_served: self.queries.value(),
            batches_served: self.batches.value(),
            total_matches: self.matches.value(),
            errors: self.errors.value(),
            streams_served: self.streams.value(),
            rows_streamed: self.rows_streamed.value(),
            streams_cancelled: self.streams_cancelled.value(),
            admissions: self.admissions.value(),
            admission_wait_seconds: self.admission_wait_nanos.value() as f64 / 1e9,
            latency_mean_seconds: running.mean(),
            latency_stddev_seconds: running.stddev(),
            latency_min_seconds: running.min().unwrap_or(0.0),
            latency_max_seconds: running.max().unwrap_or(0.0),
            latency_p50_seconds: histogram.quantile_seconds(0.50).unwrap_or(0.0),
            latency_p90_seconds: histogram.quantile_seconds(0.90).unwrap_or(0.0),
            latency_p99_seconds: histogram.quantile_seconds(0.99).unwrap_or(0.0),
        }
    }
}

/// Point-in-time service statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Queries served successfully (single and batched).
    pub queries_served: u64,
    /// Batches completed.
    pub batches_served: u64,
    /// Sum of match counts over all served queries.
    pub total_matches: u64,
    /// Queries that failed (unknown target, parse error, …).
    pub errors: u64,
    /// Streamed queries served (also counted in `queries_served`).
    pub streams_served: u64,
    /// Total rows delivered over all streamed queries.
    pub rows_streamed: u64,
    /// Streamed queries whose client vanished mid-stream (enumeration was
    /// cancelled early).
    pub streams_cancelled: u64,
    /// Admission permits acquired (one per executed enumeration run).
    pub admissions: u64,
    /// Total time runs spent waiting for an admission permit, in seconds
    /// (measured on the service's injected clock).
    pub admission_wait_seconds: f64,
    /// Mean end-to-end query latency in seconds.
    pub latency_mean_seconds: f64,
    /// Population standard deviation of query latency.
    pub latency_stddev_seconds: f64,
    /// Fastest observed query.
    pub latency_min_seconds: f64,
    /// Slowest observed query.
    pub latency_max_seconds: f64,
    /// Median latency (histogram bucket resolution).
    pub latency_p50_seconds: f64,
    /// 90th-percentile latency (histogram bucket resolution).
    pub latency_p90_seconds: f64,
    /// 99th-percentile latency (histogram bucket resolution).
    pub latency_p99_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_obs::MetricValue;

    #[test]
    fn counters_and_latency_aggregate() {
        let stats = ServiceStats::new();
        stats.record_query(60, 0.001);
        stats.record_query(40, 0.003);
        stats.record_batch();
        stats.record_error();
        stats.record_stream(40, false);
        stats.record_stream(7, true);
        stats.record_admission_wait(0.5);
        stats.record_admission_wait(0.25);
        let snap = stats.snapshot();
        assert_eq!(snap.queries_served, 2);
        assert_eq!(snap.batches_served, 1);
        assert_eq!(snap.total_matches, 100);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.streams_served, 2);
        assert_eq!(snap.rows_streamed, 47);
        assert_eq!(snap.streams_cancelled, 1);
        assert_eq!(snap.admissions, 2);
        assert!((snap.admission_wait_seconds - 0.75).abs() < 1e-9);
        assert!((snap.latency_mean_seconds - 0.002).abs() < 1e-12);
        assert_eq!(snap.latency_min_seconds, 0.001);
        assert_eq!(snap.latency_max_seconds, 0.003);
        assert!(snap.latency_p50_seconds > 0.0);
        assert!(snap.latency_p99_seconds >= snap.latency_p50_seconds);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let snap = ServiceStats::new().snapshot();
        assert_eq!(snap, StatsSnapshot::default());
    }

    #[test]
    fn registry_sees_recorded_service_counters() {
        // The whole point of the migration: STATS and METRICS read the same
        // cells, so a record through ServiceStats is visible in the
        // registry's snapshot without any copying.
        let registry = MetricsRegistry::new();
        let stats = ServiceStats::with_registry(&registry);
        stats.record_query(60, 0.002);
        stats.record_admission_wait(0.0);
        let snapshot = registry.snapshot();
        let lookup = |name: &str| {
            snapshot
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(
            lookup("service.queries_served"),
            Some(MetricValue::Counter(1))
        );
        assert_eq!(
            lookup("service.total_matches"),
            Some(MetricValue::Counter(60))
        );
        assert_eq!(lookup("service.admissions"), Some(MetricValue::Counter(1)));
        match lookup("service.latency_seconds") {
            Some(MetricValue::Histogram(summary)) => {
                assert_eq!(summary.count, 1);
                assert!((summary.mean_seconds - 0.002).abs() < 1e-12);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}

//! End-to-end tests for the event-driven TCP front end (Unix only): framing
//! across arbitrary packet boundaries, parity with the blocking server, a
//! 512-connection soak, and drain-on-`SHUTDOWN`.

#![cfg(unix)]

use sge_graph::{generators, io::write_graph};
use sge_obs::EventLog;
use sge_service::client::run_script;
use sge_service::protocol::encode_inline_pattern;
use sge_service::{EventServer, Server, Service, ServiceConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn start_event_server(
    service: Arc<Service>,
    log: Option<Arc<EventLog>>,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let mut server = EventServer::bind("127.0.0.1:0", service).expect("bind loopback");
    if let Some(log) = log {
        server = server.with_event_log(log);
    }
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("event server run"));
    (addr, handle)
}

fn service_with_k5() -> Arc<Service> {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    service.registry().insert("k5", generators::clique(5, 0));
    service
}

fn triangle() -> String {
    encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)))
}

#[test]
fn event_server_serves_query_batch_stats_shutdown() {
    let log = Arc::new(EventLog::new(64));
    let (addr, server) = start_event_server(service_with_k5(), Some(Arc::clone(&log)));
    let triangle = triangle();
    let script = vec![
        format!("QUERY target=k5 pattern={triangle}"),
        format!("QUERY target=k5 sched=ws:4 pattern={triangle}"),
        "BATCH target=k5 n=2".to_string(),
        format!("pattern={triangle}"),
        format!("pattern={triangle}"),
        "STATS".to_string(),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    assert_eq!(responses.len(), 5, "{responses:?}");
    assert!(responses[0].contains("\"matches\":60"), "{}", responses[0]);
    assert!(responses[0].contains("\"cache_hit\":false"));
    assert!(responses[0].contains("\"routed\":true"), "{}", responses[0]);
    assert!(responses[1].contains("\"cache_hit\":true"));
    assert!(responses[1].contains("work-stealing"));
    assert!(
        responses[1].contains("\"routed\":false"),
        "{}",
        responses[1]
    );
    assert!(responses[2].contains("\"total_matches\":120"));
    assert!(
        responses[3].contains("\"queries_served\":4"),
        "{}",
        responses[3]
    );
    assert!(responses[4].contains("\"shutdown\":true"));
    server.join().expect("event server exits after SHUTDOWN");

    // Lifecycle events mirror the blocking server's, ending in a clean drain.
    let lines = log.recent();
    let events: Vec<String> = lines
        .iter()
        .filter_map(|line| {
            let tail = line.split("\"event\":\"").nth(1)?;
            Some(tail.split('"').next().unwrap_or_default().to_string())
        })
        .collect();
    assert_eq!(events.first().map(String::as_str), Some("listening"));
    assert_eq!(events.last().map(String::as_str), Some("drained"));
    for expected in ["conn_open", "shutdown", "conn_close"] {
        assert!(
            events.iter().any(|event| event == expected),
            "missing {expected} in {events:?}"
        );
    }
    assert!(
        lines.last().unwrap().contains("\"clean\":true"),
        "drain must complete cleanly: {lines:?}"
    );
}

/// Replaces the value after every volatile (timing-derived) key so two
/// responses can be compared byte-for-byte.
fn scrub_volatile(block: &str) -> String {
    const VOLATILE: [&str; 2] = ["_seconds\":", "_per_second\":"];
    let mut out = String::new();
    let mut rest = block;
    loop {
        let hit = VOLATILE
            .iter()
            .filter_map(|key| rest.find(key).map(|pos| pos + key.len()))
            .min();
        match hit {
            Some(end) => {
                out.push_str(&rest[..end]);
                out.push('0');
                let tail = &rest[end..];
                let stop = tail.find([',', '}']).unwrap_or(tail.len());
                rest = &tail[stop..];
            }
            None => {
                out.push_str(rest);
                return out;
            }
        }
    }
}

#[test]
fn responses_match_the_threaded_server_byte_for_byte() {
    // One deterministic worker so batched cache_hit flags cannot race.
    let config = || ServiceConfig {
        batch_workers: 1,
        ..ServiceConfig::default()
    };
    let triangle = triangle();
    let edge = encode_inline_pattern(&write_graph(&generators::directed_path(2, 0)));
    let script = vec![
        format!("QUERY target=k5 pattern={triangle}"),
        format!("QUERY target=k5 sched=ws:4 pattern={triangle}"),
        format!("QUERY target=k5 sched=auto collect=100 pattern={edge}"),
        format!("EXPLAIN target=k5 pattern={triangle}"),
        format!("EXPLAIN ANALYZE target=k5 pattern={triangle}"),
        "BATCH target=k5 n=2".to_string(),
        format!("pattern={triangle}"),
        format!("algo=ri-ds pattern={edge}"),
        format!("QUERY target=k5 emit=stream chunk=7 pattern={triangle}"),
        "FROB nonsense".to_string(),
        "SHUTDOWN".to_string(),
    ];

    let threaded = {
        let service = Arc::new(Service::new(config()));
        service.registry().insert("k5", generators::clique(5, 0));
        let server = Server::bind("127.0.0.1:0", service).expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().expect("run"));
        let responses = run_script(addr, &script).expect("threaded script");
        handle.join().unwrap();
        responses
    };
    let event_driven = {
        let service = Arc::new(Service::new(config()));
        service.registry().insert("k5", generators::clique(5, 0));
        let (addr, handle) = start_event_server(service, None);
        let responses = run_script(addr, &script).expect("event script");
        handle.join().unwrap();
        responses
    };

    assert_eq!(threaded.len(), event_driven.len());
    for (index, (a, b)) in threaded.iter().zip(&event_driven).enumerate() {
        assert_eq!(
            scrub_volatile(a),
            scrub_volatile(b),
            "response {index} differs between front ends"
        );
    }
}

#[test]
fn partial_lines_are_reassembled_across_readiness_events() {
    let (addr, server) = start_event_server(service_with_k5(), None);
    let triangle = triangle();

    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Dribble one QUERY line in three flushes with pauses in between: the
    // loop sees three separate readiness events and must not dispatch
    // until the newline lands.
    let request = format!("QUERY target=k5 pattern={triangle}\n");
    let bytes = request.as_bytes();
    for chunk in bytes.chunks(bytes.len() / 3 + 1) {
        writer.write_all(chunk).unwrap();
        writer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(30));
    }
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"matches\":60"), "{line}");

    // A BATCH whose continuation lines arrive in a later packet than the
    // header: framing must wait for all announced lines.
    write!(writer, "BATCH target=k5 n=2\npattern={triangle}\n").unwrap();
    writer.flush().unwrap();
    std::thread::sleep(Duration::from_millis(30));
    writeln!(writer, "pattern={triangle}").unwrap();
    writer.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"total_matches\":120"), "{line}");

    // Two pipelined requests in one packet still answer in order.
    write!(writer, "STATS\nQUERY target=k5 pattern={triangle}\n").unwrap();
    writer.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"queries_served\":"), "{line}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"matches\":60"), "{line}");

    let responses = run_script(addr, &["SHUTDOWN".to_string()]).unwrap();
    assert!(responses[0].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn eof_terminated_request_still_answers() {
    let (addr, server) = start_event_server(service_with_k5(), None);
    // No trailing newline, then half-close: EOF finishes the line exactly
    // like the blocking reader's read_until-at-EOF.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(b"STATS").unwrap();
    writer.flush().unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut response = String::new();
    let mut reader = stream;
    reader.read_to_string(&mut response).unwrap();
    assert!(response.contains("\"queries_served\":"), "{response}");

    let responses = run_script(addr, &["SHUTDOWN".to_string()]).unwrap();
    assert!(responses[0].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn oversized_line_gets_structured_error_and_close() {
    let (addr, server) = start_event_server(service_with_k5(), None);
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let oversized = vec![b'Q'; (1 << 20) + 1];
    writer.write_all(&oversized).unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    let mut reader = stream;
    reader.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("{\"ok\":false,"), "{response}");
    assert!(response.contains("exceeds"), "{response}");

    let responses = run_script(addr, &["SHUTDOWN".to_string()]).unwrap();
    assert!(responses[0].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn disconnect_with_response_pending_keeps_the_server_alive() {
    let (addr, server) = start_event_server(service_with_k5(), None);
    let triangle = triangle();
    // Fire a query and vanish without reading the answer — several times,
    // so at least one response hits a closed (or resetting) socket.
    for _ in 0..5 {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        writeln!(writer, "QUERY target=k5 collect=100 pattern={triangle}").unwrap();
        writer.flush().unwrap();
        drop(writer);
        drop(stream);
    }
    // The loop must shrug those off and keep serving everyone else.
    let responses = run_script(
        addr,
        &[
            format!("QUERY target=k5 pattern={triangle}"),
            "SHUTDOWN".to_string(),
        ],
    )
    .expect("fresh connection after disconnects");
    assert!(responses[0].contains("\"matches\":60"), "{}", responses[0]);
    assert!(responses[1].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn soak_512_idle_connections_with_interleaved_queries() {
    let log = Arc::new(EventLog::new(64));
    let service = service_with_k5();
    let (addr, server) = start_event_server(Arc::clone(&service), Some(Arc::clone(&log)));
    let triangle = triangle();

    // 512 concurrent connections held open; every 16th runs a query while
    // the rest sit idle (one pollfd each, no parked threads).
    let mut idle = Vec::new();
    let mut active = Vec::new();
    for i in 0..512 {
        let stream = TcpStream::connect(addr).expect("connect under soak");
        if i % 16 == 0 {
            active.push(stream);
        } else {
            idle.push(stream);
        }
    }
    for stream in &mut active {
        writeln!(stream, "QUERY target=k5 pattern={triangle}").unwrap();
        stream.flush().unwrap();
    }
    for stream in active {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"matches\":60"), "soak query answer: {line}");
    }

    // The gauge sees every open connection (the scripted probe adds one).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let open = service.metrics().gauge("service.connections_open").value();
        if open >= 480 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "connections_open gauge stuck at {open}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let responses = run_script(addr, &["STATS".to_string(), "SHUTDOWN".to_string()]).unwrap();
    assert!(
        responses[0].contains("\"connections_open\":"),
        "{}",
        responses[0]
    );
    assert!(responses[1].contains("\"shutdown\":true"));
    server
        .join()
        .expect("drain completes with idle connections open");
    let lines = log.recent();
    assert!(lines.last().unwrap().contains("\"drained\""), "{lines:?}");
    drop(idle);
    // Every connection was accounted for on shutdown.
    assert_eq!(
        service.metrics().gauge("service.connections_open").value(),
        0,
        "gauge returns to zero after drain"
    );
}

//! End-to-end service tests over the in-process API (the acceptance path:
//! registry load → repeated query → cache hit → identical mappings).

use sge_engine::{RunConfig, Scheduler};
use sge_graph::{generators, io::write_graph};
use sge_ri::Algorithm;
use sge_service::{QuerySet, QuerySpec, Service, ServiceConfig};

fn temp_path(stem: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("{stem}-{}", std::process::id()))
}

/// The ISSUE acceptance scenario: load a target file into the registry,
/// submit the same pattern twice, observe a PreparedCache hit (preprocessing
/// runs once) and byte-identical sorted mappings from both queries and
/// across schedulers.
#[test]
fn repeated_pattern_hits_cache_with_identical_mappings() {
    let service = Service::new(ServiceConfig::default());

    // Load the target from a real file, as a server deployment would.
    let target_path = temp_path("sge-e2e-k5.gfd");
    std::fs::write(&target_path, write_graph(&generators::clique(5, 0))).unwrap();
    let info = service.registry().load_file("k5", &target_path).unwrap();
    std::fs::remove_file(&target_path).ok();
    assert_eq!(info.nodes, 5);
    assert_eq!(info.edges, 20);

    let pattern = write_graph(&generators::directed_cycle(3, 0));
    let spec = QuerySpec::new(&pattern)
        .with_run(RunConfig::new(Scheduler::Sequential).with_collected_mappings(1000));

    let first = service.run_query("k5", &spec).unwrap();
    let second = service.run_query("k5", &spec).unwrap();

    // Preprocessing ran once: miss then hit.
    assert!(!first.cache_hit);
    assert!(second.cache_hit);
    let cache = service.cache().stats();
    assert_eq!(cache.misses, 1);
    assert_eq!(cache.hits, 1);
    assert_eq!(first.pattern_hash, second.pattern_hash);

    // Byte-identical sorted mappings from both queries…
    assert_eq!(first.outcome.matches, 60);
    assert_eq!(second.outcome.matches, 60);
    assert_eq!(first.outcome.mappings.len(), 60);
    assert_eq!(first.outcome.mappings, second.outcome.mappings);
    // …and the cached preprocessing cost is reported unchanged.
    assert_eq!(
        first.outcome.preprocess_seconds,
        second.outcome.preprocess_seconds
    );

    // …and across every scheduler, all served by the same cached engine.
    for scheduler in [
        Scheduler::work_stealing(2),
        Scheduler::work_stealing(4),
        Scheduler::Rayon { workers: 3 },
    ] {
        let run = RunConfig::new(scheduler).with_collected_mappings(1000);
        let outcome = service
            .run_query("k5", &QuerySpec::new(&pattern).with_run(run))
            .unwrap();
        assert!(outcome.cache_hit, "{scheduler}");
        assert_eq!(
            outcome.outcome.mappings, first.outcome.mappings,
            "{scheduler}"
        );
    }
    assert_eq!(service.cache().stats().misses, 1, "preprocessing ran once");

    let stats = service.stats();
    assert_eq!(stats.queries_served, 5);
    assert_eq!(stats.total_matches, 5 * 60);
    assert_eq!(stats.errors, 0);
    assert!(stats.latency_max_seconds > 0.0);
}

#[test]
fn algorithms_agree_through_the_service() {
    let service = Service::new(ServiceConfig::default());
    service.registry().insert("grid", generators::grid(4, 4));
    let pattern = write_graph(&generators::undirected_cycle(4, 0));
    let mut reference = None;
    for algorithm in Algorithm::ALL {
        let spec = QuerySpec::new(&pattern)
            .with_algorithm(algorithm)
            .with_run(RunConfig::default().with_collected_mappings(10_000));
        let outcome = service.run_query("grid", &spec).unwrap();
        let mappings = outcome.outcome.mappings.clone();
        match &reference {
            None => reference = Some(mappings),
            Some(expected) => assert_eq!(&mappings, expected, "{algorithm}"),
        }
    }
    // Four distinct cache entries: the algorithm is part of the key.
    assert_eq!(service.cache().stats().entries, 4);
}

#[test]
fn batch_through_the_service_matches_single_queries() {
    let service = Service::new(ServiceConfig {
        cache_capacity: 8,
        batch_workers: 4,
        max_in_flight: 3,
        ..ServiceConfig::default()
    });
    service.registry().insert("k6", generators::clique(6, 0));

    let patterns = [
        write_graph(&generators::directed_cycle(3, 0)),
        write_graph(&generators::directed_path(2, 0)),
        write_graph(&generators::clique(3, 0)),
    ];
    let singles: Vec<u64> = patterns
        .iter()
        .map(|p| {
            service
                .run_query("k6", &QuerySpec::new(p))
                .unwrap()
                .outcome
                .matches
        })
        .collect();

    let mut set = QuerySet::new("k6");
    for (i, pattern) in patterns.iter().cycle().take(30).enumerate() {
        let scheduler = match i % 3 {
            0 => Scheduler::Sequential,
            1 => Scheduler::work_stealing(2),
            _ => Scheduler::Rayon { workers: 2 },
        };
        set.push(QuerySpec::new(pattern).with_run(RunConfig::new(scheduler)));
    }
    let outcome = service.run_batch(&set);
    assert_eq!(outcome.succeeded(), 30);
    for (i, result) in outcome.results.iter().enumerate() {
        assert_eq!(
            result.as_ref().unwrap().outcome.matches,
            singles[i % 3],
            "query {i}"
        );
    }
    // Every batched query reused one of the three prepared engines.
    assert_eq!(outcome.cache_hits(), 30);
    assert_eq!(service.cache().stats().misses, 3);
}

#[test]
fn unknown_target_and_bad_pattern_are_clean_errors() {
    let service = Service::new(ServiceConfig::default());
    service.registry().insert("k3", generators::clique(3, 0));
    let good = write_graph(&generators::directed_path(2, 0));
    assert!(service
        .run_query("missing", &QuerySpec::new(&good))
        .is_err());
    assert!(service
        .run_query("k3", &QuerySpec::new("3\n0\n0\n"))
        .is_err());
    assert_eq!(service.stats().errors, 2);
    assert_eq!(service.stats().queries_served, 0);
}

#[test]
fn reloading_a_target_serves_fresh_results_not_the_cached_engine() {
    let service = Service::new(ServiceConfig::default());
    service.registry().insert("t", generators::clique(5, 0));
    let pattern = write_graph(&generators::directed_cycle(3, 0));

    let before = service.run_query("t", &QuerySpec::new(&pattern)).unwrap();
    assert_eq!(before.outcome.matches, 60);

    // Replace the target under the same name (what a LOAD does on reload).
    service.registry().insert("t", generators::clique(4, 0));
    let after = service.run_query("t", &QuerySpec::new(&pattern)).unwrap();
    assert!(!after.cache_hit, "stale engine must be invalidated");
    assert_eq!(after.outcome.matches, 24, "answers come from the new graph");

    let again = service.run_query("t", &QuerySpec::new(&pattern)).unwrap();
    assert!(again.cache_hit, "the fresh engine is cached");
    assert_eq!(again.outcome.matches, 24);
}

#[test]
fn time_and_match_limits_flow_through() {
    let service = Service::new(ServiceConfig::default());
    service.registry().insert("k6", generators::clique(6, 0));
    let pattern = write_graph(&generators::directed_cycle(3, 0));
    let limited = service
        .run_query(
            "k6",
            &QuerySpec::new(&pattern).with_run(RunConfig::default().with_max_matches(7)),
        )
        .unwrap();
    assert_eq!(limited.outcome.matches, 7);
    assert!(limited.outcome.limit_hit);
}

#[test]
fn explain_counts_errors_and_reports_the_cached_plan() {
    let service = Service::new(ServiceConfig::default());
    service
        .registry()
        .insert("k5", sge_graph::generators::clique(5, 0));
    let pattern = sge_graph::io::write_graph(&sge_graph::generators::directed_cycle(3, 0));

    // Every explain failure mode increments the error counter, exactly as
    // run_query failures do.
    assert!(service.explain("ghost", &QuerySpec::new(&pattern)).is_err());
    assert!(service
        .explain("k5", &QuerySpec::new("not a graph"))
        .is_err());
    assert_eq!(service.stats().errors, 2);

    // A successful explain reports the plan and warms the cache for the
    // identical query.
    let explained = service.explain("k5", &QuerySpec::new(&pattern)).unwrap();
    assert!(!explained.cache_hit);
    assert_eq!(explained.engine.plan().num_positions(), 3);
    assert!(explained.engine.plan().cost.est_total_states > 0.0);
    let query = service.run_query("k5", &QuerySpec::new(&pattern)).unwrap();
    assert!(query.cache_hit, "explain must warm the prepared cache");
    assert_eq!(query.outcome.matches, 60);
    // Explains do not count as served queries.
    assert_eq!(service.stats().queries_served, 1);
}

/// A [`StreamSink`] over plain vectors, optionally failing after a number of
/// frames to emulate a client that disconnects mid-stream.
struct VecSink {
    header: Option<sge_service::StreamHeader>,
    rows: Vec<Vec<sge_graph::NodeId>>,
    frames: usize,
    fail_after_frames: Option<usize>,
}

impl VecSink {
    fn new() -> Self {
        VecSink {
            header: None,
            rows: Vec::new(),
            frames: 0,
            fail_after_frames: None,
        }
    }

    fn failing_after(frames: usize) -> Self {
        VecSink {
            fail_after_frames: Some(frames),
            ..VecSink::new()
        }
    }
}

impl sge_service::StreamSink for VecSink {
    fn begin(&mut self, header: &sge_service::StreamHeader) -> std::io::Result<()> {
        self.header = Some(header.clone());
        Ok(())
    }

    fn rows(&mut self, rows: &[Vec<sge_graph::NodeId>]) -> std::io::Result<()> {
        if self
            .fail_after_frames
            .is_some_and(|limit| self.frames >= limit)
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "client gone",
            ));
        }
        self.frames += 1;
        self.rows.extend(rows.iter().cloned());
        Ok(())
    }
}

#[test]
fn streamed_rows_match_buffered_collection_for_every_scheduler() {
    let service = Service::new(ServiceConfig::default());
    service.registry().insert("k5", generators::clique(5, 0));
    let pattern = write_graph(&generators::directed_cycle(3, 0));

    let reference = service
        .run_query(
            "k5",
            &QuerySpec::new(&pattern).with_run(RunConfig::default().with_collected_mappings(1000)),
        )
        .unwrap();
    assert_eq!(reference.outcome.mappings.len(), 60);

    for scheduler in [
        Scheduler::Sequential,
        Scheduler::work_stealing(3),
        Scheduler::Rayon { workers: 2 },
    ] {
        for chunk in [1usize, 7, 1000] {
            let mut sink = VecSink::new();
            let streamed = service
                .run_query_streaming(
                    "k5",
                    &QuerySpec::new(&pattern)
                        .with_run(RunConfig::new(scheduler))
                        .with_streaming(chunk),
                    &mut sink,
                )
                .unwrap();
            assert_eq!(streamed.query.outcome.matches, 60, "{scheduler} {chunk}");
            assert_eq!(streamed.rows_sent, 60, "{scheduler} {chunk}");
            assert!(!streamed.cancelled, "{scheduler} {chunk}");
            assert!(
                streamed.query.outcome.mappings.is_empty(),
                "rows go to the sink, not the outcome"
            );
            let header = sink.header.expect("header delivered before rows");
            assert_eq!(header.chunk, chunk.min(65_536));
            let mut rows = sink.rows;
            assert_eq!(rows.len(), 60, "{scheduler} {chunk}");
            rows.sort_unstable();
            assert_eq!(rows, reference.outcome.mappings, "{scheduler} {chunk}");
        }
    }
    // Streamed queries show up in the aggregate stream counters.
    let stats = service.stats();
    assert_eq!(stats.streams_served, 9);
    assert_eq!(stats.rows_streamed, 9 * 60);
    assert_eq!(stats.streams_cancelled, 0);
}

#[test]
fn failing_sink_cancels_enumeration_and_is_counted() {
    let service = Service::new(ServiceConfig::default());
    service.registry().insert("k16", generators::clique(16, 0));
    let pattern = write_graph(&generators::directed_path(2, 0)); // 240 matches

    let mut sink = VecSink::failing_after(2);
    let streamed = service
        .run_query_streaming(
            "k16",
            &QuerySpec::new(&pattern).with_streaming(4),
            &mut sink,
        )
        .unwrap();
    assert!(streamed.cancelled);
    assert_eq!(streamed.rows_sent, 8, "two 4-row frames were delivered");
    assert!(
        streamed.query.outcome.matches < 240,
        "enumeration stopped early, got {}",
        streamed.query.outcome.matches
    );
    let stats = service.stats();
    assert_eq!(stats.streams_served, 1);
    assert_eq!(stats.streams_cancelled, 1);
    assert_eq!(stats.rows_streamed, 8);
}

#[test]
fn explain_analyze_reports_observed_counts_and_spans() {
    let service = Service::new(ServiceConfig::default());
    service.registry().insert("k5", generators::clique(5, 0));
    let pattern = write_graph(&generators::directed_cycle(3, 0));

    let analyzed = service
        .explain_analyze("k5", &QuerySpec::new(&pattern))
        .unwrap();
    assert_eq!(analyzed.outcome.matches, 60);
    assert!(analyzed.outcome.mappings.is_empty(), "collection disabled");

    // Observed arrays line up position-for-position with the estimates.
    let plan = analyzed.engine.plan();
    assert_eq!(analyzed.observed_candidates.len(), plan.num_positions());
    assert_eq!(analyzed.observed_states.len(), plan.num_positions());
    assert_eq!(plan.cost.positions.len(), plan.num_positions());
    assert!(analyzed.observed_candidates[0] > 0);
    assert_eq!(
        analyzed.observed_states.iter().sum::<u64>(),
        analyzed.outcome.states,
        "per-position checks sum to the outcome's state count"
    );

    // The span breakdown covers the documented phases, in order, with
    // offsets relative to the query start.
    let names: Vec<&str> = analyzed.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["plan", "admission_wait", "enumeration"]);
    for span in &analyzed.spans {
        assert!(span.start_seconds >= 0.0, "{}", span.name);
        assert!(span.duration_seconds >= 0.0, "{}", span.name);
        assert!(span.start_seconds + span.duration_seconds <= analyzed.latency_seconds + 1e-9);
    }

    // An analyze counts as a served query and warms the cache.
    assert_eq!(service.stats().queries_served, 1);
    let query = service.run_query("k5", &QuerySpec::new(&pattern)).unwrap();
    assert!(query.cache_hit, "analyze must warm the prepared cache");

    // Observed counts are schedule-invariant: a parallel analyze of the
    // same query reports identical per-position arrays.
    let parallel = service
        .explain_analyze(
            "k5",
            &QuerySpec::new(&pattern).with_run(RunConfig::new(Scheduler::work_stealing(4))),
        )
        .unwrap();
    assert_eq!(parallel.observed_candidates, analyzed.observed_candidates);
    assert_eq!(parallel.observed_states, analyzed.observed_states);
}

#[test]
fn metrics_snapshot_covers_the_catalogue_and_agrees_with_stats() {
    use sge_obs::MetricValue;

    let service = Service::new(ServiceConfig {
        cache_capacity: 8,
        batch_workers: 2,
        max_in_flight: 2,
        ..ServiceConfig::default()
    });
    service.registry().insert("k5", generators::clique(5, 0));
    let pattern = write_graph(&generators::directed_cycle(3, 0));
    service.run_query("k5", &QuerySpec::new(&pattern)).unwrap();
    service.run_query("k5", &QuerySpec::new(&pattern)).unwrap();
    service.run_query("missing", &QuerySpec::new(&pattern)).ok();

    let snapshot = service.metrics_snapshot();
    let get = |name: &str| {
        snapshot
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("metric {name} missing from snapshot"))
    };
    assert_eq!(get("service.queries_served"), MetricValue::Counter(2));
    assert_eq!(get("service.total_matches"), MetricValue::Counter(120));
    assert_eq!(get("service.errors"), MetricValue::Counter(1));
    assert_eq!(get("service.admissions"), MetricValue::Counter(2));
    assert_eq!(get("cache.hits"), MetricValue::Counter(1));
    assert_eq!(get("cache.misses"), MetricValue::Counter(1));
    assert_eq!(get("cache.inserts"), MetricValue::Counter(1));
    assert_eq!(get("cache.evictions"), MetricValue::Counter(0));
    assert_eq!(get("cache.entries"), MetricValue::Gauge(1));
    assert_eq!(get("cache.capacity"), MetricValue::Gauge(8));
    // Engine totals accumulate across served queries (two identical runs).
    match get("engine.states") {
        MetricValue::Counter(states) => assert!(states > 0 && states % 2 == 0),
        other => panic!("engine.states: {other:?}"),
    }
    match get("service.latency_seconds") {
        MetricValue::Histogram(summary) => assert_eq!(summary.count, 2),
        other => panic!("service.latency_seconds: {other:?}"),
    }

    // Snapshots are idempotent: the cache mirror uses deltas, so a second
    // snapshot reports the same counts, not doubled ones.
    let again = service.metrics_snapshot();
    assert_eq!(snapshot, again);
    // STATS and METRICS read the same cells.
    assert_eq!(service.stats().queries_served, 2);
}

#[test]
fn zero_max_in_flight_is_clamped_not_deadlocked() {
    // Regression: admission with zero permits used to block the first query
    // forever.  The semaphore now clamps to one permit.
    let service = Service::new(ServiceConfig {
        cache_capacity: 4,
        batch_workers: 2,
        max_in_flight: 0,
        ..ServiceConfig::default()
    });
    service.registry().insert("k5", generators::clique(5, 0));
    let pattern = write_graph(&generators::directed_cycle(3, 0));
    let outcome = service.run_query("k5", &QuerySpec::new(&pattern)).unwrap();
    assert_eq!(outcome.outcome.matches, 60);
}

// ---------------------------------------------------------------------------
// Planner-routed scheduling and the self-correcting cost model
// ---------------------------------------------------------------------------

/// Property: repeating the *same* query converges the per-target correction
/// factor onto the observed/estimated state ratio, with monotonically
/// shrinking error (the EWMA contracts geometrically on a fixed signal).
#[test]
fn repeated_identical_queries_converge_the_correction_factor() {
    let service = Service::new(ServiceConfig::default());
    service.registry().insert("grid", generators::grid(6, 6));
    let pattern = write_graph(&generators::directed_path(3, 0));
    let spec = QuerySpec::new(&pattern); // routed: feeds the cost model

    // The true ratio the model should learn: observed states over the
    // planner's raw estimate (both deterministic for a fixed query).
    let first = service.run_query("grid", &spec).unwrap();
    let explain = service.explain("grid", &QuerySpec::new(&pattern)).unwrap();
    let estimated = explain.routing.raw_est_states;
    assert!(estimated > 0.0);
    let ratio = first.outcome.states as f64 / estimated;

    let mut last_error = (service.cost_model().correction_for("grid") - ratio).abs();
    for round in 0..12 {
        service.run_query("grid", &spec).unwrap();
        let error = (service.cost_model().correction_for("grid") - ratio).abs();
        assert!(
            error <= last_error + 1e-12,
            "round {round}: error grew from {last_error} to {error}"
        );
        last_error = error;
    }
    let converged = service.cost_model().correction_for("grid");
    assert!(
        (converged - ratio).abs() <= ratio.max(1.0) * 0.05,
        "correction {converged} did not converge to ratio {ratio}"
    );
    // The gauge mirrors the model (milli-units).
    assert!(
        (service.correction_factor() - converged).abs() < 0.002,
        "gauge {} vs model {converged}",
        service.correction_factor()
    );
}

/// Routed and pinned-scheduler runs of the same query return byte-identical
/// sorted mappings — routing changes *where* the tree is enumerated, never
/// *what* comes back.
#[test]
fn routed_and_pinned_schedulers_agree_on_sorted_mappings() {
    use sge_plan::RoutingConfig;
    // Threshold 1 state: every routed query fans out to work-stealing, so
    // the parity below crosses scheduler families even on a 1-core host.
    let service = Service::new(ServiceConfig {
        routing: RoutingConfig::pinned(1.0, 100.0, 4),
        ..ServiceConfig::default()
    });
    service.registry().insert("k6", generators::clique(6, 0));
    let pattern = write_graph(&generators::directed_cycle(3, 0));
    let collect = RunConfig::default().with_collected_mappings(10_000);

    let routed = service
        .run_query("k6", &QuerySpec::new(&pattern).with_run(collect).routed())
        .unwrap();
    assert!(routed.routed);
    assert!(
        matches!(routed.outcome.scheduler, Scheduler::WorkStealing { .. }),
        "threshold 1 must route to work-stealing, got {}",
        routed.outcome.scheduler
    );

    for scheduler in [Scheduler::Sequential, Scheduler::work_stealing(4)] {
        let pinned = service
            .run_query(
                "k6",
                &QuerySpec::new(&pattern)
                    .with_run(RunConfig::new(scheduler).with_collected_mappings(10_000)),
            )
            .unwrap();
        assert!(!pinned.routed, "{scheduler}");
        assert_eq!(pinned.outcome.scheduler, scheduler);
        assert_eq!(
            pinned.outcome.mappings, routed.outcome.mappings,
            "routed vs pinned {scheduler}: sorted mappings must be identical"
        );
        assert_eq!(pinned.outcome.matches, routed.outcome.matches);
    }
}

/// The dispatch counters split routed traffic by scheduler family, and
/// EXPLAIN surfaces the routing decision without executing anything.
#[test]
fn dispatch_counters_and_explain_report_routing() {
    use sge_plan::{RoutingConfig, SchedulerChoice};
    let service = Service::new(ServiceConfig {
        routing: RoutingConfig::pinned(50_000.0, 25_000.0, 4),
        ..ServiceConfig::default()
    });
    service.registry().insert("k5", generators::clique(5, 0));
    let pattern = write_graph(&generators::directed_cycle(3, 0));

    let outcome = service.run_query("k5", &QuerySpec::new(&pattern)).unwrap();
    assert!(outcome.routed);
    // 60 matches in a 5-clique sits far under the 50k threshold.
    assert_eq!(outcome.outcome.scheduler, Scheduler::Sequential);
    let (sequential, work_stealing) = service.dispatch_counts();
    assert_eq!((sequential, work_stealing), (1, 0));

    // A pinned run is not *routed*, but its dispatch is still counted.
    service
        .run_query(
            "k5",
            &QuerySpec::new(&pattern).with_run(RunConfig::new(Scheduler::work_stealing(2))),
        )
        .unwrap();
    assert_eq!(service.dispatch_counts(), (1, 1));

    let explain = service.explain("k5", &QuerySpec::new(&pattern)).unwrap();
    assert!(explain.routed);
    assert_eq!(explain.routing.choice, SchedulerChoice::Sequential);
    assert!(explain.routing.threshold == 50_000.0);
    // EXPLAIN plans only: the dispatch counters did not move.
    assert_eq!(service.dispatch_counts(), (1, 1));
}

/// A `LOAD` whose sidecar trips the byte cap records a `bitmap_cap_fallback`
/// event, and a dense query afterwards still answers correctly (the gallop
/// kernels serve it) while an uncapped load ticks the bitmap counter.
#[test]
fn bitmap_cap_fallback_is_logged_and_counted() {
    let service = Service::new(ServiceConfig::default());
    let log = std::sync::Arc::new(sge_obs::EventLog::new(16));
    service.set_event_log(std::sync::Arc::clone(&log));

    let target_path = temp_path("sge-e2e-k16.gfd");
    std::fs::write(&target_path, write_graph(&generators::clique(16, 0))).unwrap();

    // Capped: rows are dropped, the event log says so with the numbers.
    let capped = service.load_target("k16", &target_path, Some(1)).unwrap();
    assert!(capped.bitmap_capped);
    assert_eq!(capped.bitmap_rows, 0);
    let events = log.recent();
    let warning = events
        .iter()
        .find(|line| line.contains("bitmap_cap_fallback"))
        .expect("cap fallback event recorded");
    assert!(warning.contains("\"target\":\"k16\""), "{warning}");
    assert!(warning.contains("\"cap_bytes\":1"), "{warning}");

    let pattern = write_graph(&generators::directed_cycle(4, 0));
    let spec = QuerySpec::new(&pattern).with_algorithm(Algorithm::RiDs);
    let capped_run = service.run_query("k16", &spec).unwrap();
    assert_eq!(capped_run.outcome.matches, 43_680);
    assert_eq!(capped_run.outcome.kernels.bitmap, 0, "no rows, no bitmap");
    assert!(capped_run.outcome.kernels.intersections() > 0);

    // Uncapped reload: same answer, now over the bitmap kernel, and the
    // service-level counter moved.
    let full = service.load_target("k16", &target_path, None).unwrap();
    std::fs::remove_file(&target_path).ok();
    assert!(!full.bitmap_capped);
    assert_eq!(full.bitmap_rows, 32);
    let full_run = service.run_query("k16", &spec).unwrap();
    assert_eq!(full_run.outcome.matches, 43_680);
    assert!(full_run.outcome.kernels.bitmap > 0);
    let snapshot = service.metrics_snapshot();
    let bitmap_counter = snapshot
        .iter()
        .find(|(name, _)| name.as_str() == "engine.kernel.bitmap")
        .map(|(_, value)| match value {
            sge_obs::MetricValue::Counter(v) => *v,
            other => panic!("unexpected metric kind {other:?}"),
        })
        .expect("engine.kernel.bitmap registered");
    assert_eq!(bitmap_counter, full_run.outcome.kernels.bitmap);
    // Exactly one cap warning was emitted: the clean reload logged nothing.
    assert_eq!(
        log.recent()
            .iter()
            .filter(|line| line.contains("bitmap_cap_fallback"))
            .count(),
        1
    );
}

//! The million-edge LOAD proof: a modular target whose adjacency-bitmap
//! sidecar blows the byte cap on the single registry loads **uncapped on
//! every shard** of a 4-way partition.
//!
//! The cap is self-calibrated, not hard-coded: a zero-budget probe build
//! reports the bytes the full-graph sidecar *would* need, and the test pins
//! the cap at half that.  The monolithic path must then fall back to
//! CSR-only kernels (`bitmap_capped`, zero rows) while each compacted shard
//! ball — a quarter of the rows at roughly a quarter of the row width —
//! fits with a wide margin.

use sge_datasets::{generate_modular, ModularSpec};
use sge_graph::{io::write_graph, AdjacencyBitmaps, BitmapConfig};
use sge_service::{Backend, Coordinator, Service, ServiceConfig};

fn temp_path(stem: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("{stem}-{}", std::process::id()))
}

#[test]
fn four_shards_keep_the_million_edge_sidecar_uncapped() {
    let spec = ModularSpec::million_edge();
    let graph = generate_modular(&spec, 0x0DA7_A5E7, "modular-1m");
    assert_eq!(graph.num_edges(), 1_004_928);

    // Probe with a zero byte budget: the build caps immediately but still
    // reports the full requirement, which calibrates the test cap.
    let probe = AdjacencyBitmaps::build(
        &graph,
        &BitmapConfig {
            max_bytes: 0,
            ..BitmapConfig::default()
        },
    );
    assert!(probe.capped());
    let required = probe.required_row_bytes();
    assert!(required > 0, "modular target must earn bitmap rows");
    let cap = required / 2;

    let path = temp_path("sge-modular-1m.graph");
    std::fs::write(&path, write_graph(&graph)).expect("write dataset");

    // Single registry: the full-width sidecar cannot fit under half its
    // requirement — CSR-only fallback, zero rows.
    let service = Service::new(ServiceConfig::default());
    let mono = service
        .load_target("modular", &path, Some(cap))
        .expect("monolithic load");
    assert!(mono.bitmap_capped, "full-graph sidecar should blow the cap");
    assert_eq!(mono.bitmap_rows, 0);
    assert_eq!(mono.nodes, spec.nodes());
    assert_eq!(mono.edges, spec.directed_edges());

    // Four shards under the *same* cap: compaction shrinks row count and
    // row width together, so every shard loads its rows.
    let coordinator = Coordinator::new(4, ServiceConfig::default());
    let (total, shard_infos) = coordinator
        .load_target("modular", &path, Some(cap))
        .expect("sharded load");
    assert_eq!(shard_infos.len(), 4);
    assert_eq!(total.nodes, spec.nodes());
    assert_eq!(total.edges, spec.directed_edges());
    assert!(!total.bitmap_capped, "no shard should hit the cap");
    for (index, info) in shard_infos.iter().enumerate() {
        assert!(!info.bitmap_capped, "shard {index} capped");
        assert!(info.bitmap_rows > 0, "shard {index} earned no rows");
        assert!(
            info.bitmap_bytes <= cap,
            "shard {index} exceeds the per-shard cap"
        );
        assert!(
            info.nodes < spec.nodes(),
            "shard {index} ball not compacted"
        );
    }
    assert!(total.bitmap_rows > 0);

    // The wire-level LOAD response carries the same verdict per shard.
    let response = coordinator
        .load_json("modular-wire", &path.display().to_string(), Some(cap))
        .render();
    assert!(response.contains("\"ok\":true"), "response: {response}");
    assert!(response.contains("\"shards\":["), "response: {response}");
    assert_eq!(
        response.matches("\"bitmap_capped\":false").count(),
        5, // the aggregate plus all four shards
        "response: {response}"
    );
    assert!(!response.contains("\"bitmap_capped\":true"));

    std::fs::remove_file(&path).ok();
}

//! Sharded scatter-gather parity: for every shard count, the union of
//! per-shard rooted match sets must be **byte-identical** to the unsharded
//! engine's sorted mappings, and the merged counts must agree with the
//! independent VF2 oracle.
//!
//! The target is deliberately boundary-heavy: bridge edges between
//! communities, triangles that straddle the cut, and self-loops on the
//! bridge endpoints — the structures a naive edge-cut union would
//! double-count or drop.

use sge_engine::{RunConfig, Scheduler};
use sge_graph::{generators, io::write_graph, GraphBuilder, NodeId};
use sge_service::{
    Coordinator, QuerySpec, Service, ServiceConfig, ServiceError, StreamHeader, StreamSink,
};

fn temp_path(stem: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("{stem}-{}", std::process::id()))
}

/// Communities of directed cliques joined into a ring by double bridge
/// edges, with a triangle closed across each cut and a self-loop on each
/// community's bridge anchor.
fn bridged_communities(communities: usize, size: usize) -> sge_graph::Graph {
    let mut b = GraphBuilder::new();
    for _ in 0..communities * size {
        b.add_node(0);
    }
    for c in 0..communities {
        let base = (c * size) as u32;
        for i in 0..size as u32 {
            for j in 0..size as u32 {
                if i != j {
                    b.add_edge(base + i, base + j, 0);
                }
            }
        }
    }
    for c in 0..communities {
        let a = (c * size) as u32;
        let d = (((c + 1) % communities) * size) as u32;
        // Two parallel bridges a↔d and a↔d+1; with the intra-community edge
        // d↔d+1 they close an undirected triangle across the cut.
        for peer in [d, d + 1] {
            b.add_edge(a, peer, 0);
            b.add_edge(peer, a, 0);
        }
        b.add_edge(a, a, 0);
    }
    b.build()
}

/// An undirected triangle with a self-loop on one corner.
fn looped_triangle() -> sge_graph::Graph {
    let mut b = GraphBuilder::new();
    for _ in 0..3 {
        b.add_node(0);
    }
    for (u, v) in [(0, 1), (1, 2), (0, 2)] {
        b.add_edge(u, v, 0);
        b.add_edge(v, u, 0);
    }
    b.add_edge(0, 0, 0);
    b.build()
}

/// A single self-looped node.
fn self_loop_node() -> sge_graph::Graph {
    let mut b = GraphBuilder::new();
    b.add_node(0);
    b.add_edge(0, 0, 0);
    b.build()
}

struct CollectSink {
    header: Option<StreamHeader>,
    rows: Vec<Vec<NodeId>>,
}

impl StreamSink for CollectSink {
    fn begin(&mut self, header: &StreamHeader) -> std::io::Result<()> {
        self.header = Some(header.clone());
        Ok(())
    }

    fn rows(&mut self, rows: &[Vec<NodeId>]) -> std::io::Result<()> {
        self.rows.extend(rows.iter().cloned());
        Ok(())
    }
}

#[test]
fn sharded_union_matches_unsharded_engine_and_vf2() {
    let target = bridged_communities(4, 6);
    let target_path = temp_path("sge-parity-bridged.gfd");
    std::fs::write(&target_path, write_graph(&target)).unwrap();

    let unsharded = Service::new(ServiceConfig::default());
    unsharded
        .registry()
        .load_file("bridged", &target_path)
        .unwrap();

    let patterns: Vec<(&str, sge_graph::Graph)> = vec![
        ("triangle", generators::clique(3, 0)),
        ("looped_triangle", looped_triangle()),
        ("path3", generators::undirected_path(3, 0)),
        ("clique4", generators::clique(4, 0)),
        ("self_loop", self_loop_node()),
    ];

    for shard_count in [1usize, 2, 4] {
        let coordinator = Coordinator::new(shard_count, ServiceConfig::default());
        let (total, per_shard) = coordinator
            .load_target("bridged", &target_path, None)
            .unwrap();
        assert_eq!(total.nodes, target.num_nodes());
        assert_eq!(total.edges, target.num_edges());
        assert_eq!(per_shard.len(), shard_count);

        for (name, pattern) in &patterns {
            let oracle = sge_vf2::count_matches(pattern, &target);
            let text = write_graph(pattern);
            let specs = [
                QuerySpec::new(&text).with_run(
                    RunConfig::new(Scheduler::Sequential).with_collected_mappings(1_000_000),
                ),
                QuerySpec::new(&text)
                    .with_run(RunConfig::default().with_collected_mappings(1_000_000))
                    .routed(),
            ];
            for (variant, spec) in specs.iter().enumerate() {
                let reference = unsharded.run_query("bridged", spec).unwrap();
                assert_eq!(
                    reference.outcome.matches, oracle,
                    "{name} variant {variant}: unsharded vs VF2"
                );

                let (merged, shard_outcomes) = coordinator.run_query("bridged", spec).unwrap();
                assert_eq!(
                    merged.outcome.matches, oracle,
                    "{name} variant {variant} shards {shard_count}: merged count vs VF2"
                );
                assert_eq!(
                    merged.outcome.mappings, reference.outcome.mappings,
                    "{name} variant {variant} shards {shard_count}: sorted mappings"
                );
                assert_eq!(shard_outcomes.len(), shard_count);
                let shard_sum: u64 = shard_outcomes.iter().map(|o| o.outcome.matches).sum();
                assert_eq!(
                    shard_sum, oracle,
                    "{name} variant {variant} shards {shard_count}: ownership partitions matches"
                );
            }
        }
    }
    std::fs::remove_file(&target_path).ok();
}

#[test]
fn streamed_rows_equal_buffered_mappings() {
    let target_path = temp_path("sge-parity-stream.gfd");
    std::fs::write(&target_path, write_graph(&bridged_communities(3, 5))).unwrap();

    let coordinator = Coordinator::new(2, ServiceConfig::default());
    coordinator
        .load_target("bridged", &target_path, None)
        .unwrap();
    std::fs::remove_file(&target_path).ok();

    let text = write_graph(&generators::clique(3, 0));
    let buffered_spec = QuerySpec::new(&text)
        .with_run(RunConfig::new(Scheduler::Sequential).with_collected_mappings(1_000_000));
    let (buffered, _) = coordinator.run_query("bridged", &buffered_spec).unwrap();

    let stream_spec = QuerySpec::new(&text)
        .with_run(RunConfig::new(Scheduler::Sequential))
        .with_streaming(7);
    let mut sink = CollectSink {
        header: None,
        rows: Vec::new(),
    };
    let (merged, per_shard) = coordinator
        .run_query_streaming("bridged", &stream_spec, &mut sink)
        .unwrap();

    assert!(sink.header.is_some());
    assert!(!merged.cancelled);
    assert_eq!(merged.rows_sent, sink.rows.len() as u64);
    assert_eq!(per_shard.len(), 2);
    let mut streamed = sink.rows;
    streamed.sort_unstable();
    assert_eq!(
        streamed, buffered.outcome.mappings,
        "streamed union equals buffered sorted mappings"
    );
}

#[test]
fn radius_and_connectivity_violations_are_rejected() {
    let target_path = temp_path("sge-parity-reject.gfd");
    std::fs::write(&target_path, write_graph(&bridged_communities(3, 4))).unwrap();
    let coordinator = Coordinator::new(2, ServiceConfig::default());
    coordinator
        .load_target("bridged", &target_path, None)
        .unwrap();
    std::fs::remove_file(&target_path).ok();

    // Eccentricity 3 from the best root > replication radius 2.
    let long_path = write_graph(&generators::undirected_path(7, 0));
    let err = coordinator
        .run_query("bridged", &QuerySpec::new(&long_path))
        .unwrap_err();
    match err {
        ServiceError::Protocol(message) => assert!(message.contains("radius"), "{message}"),
        other => panic!("expected protocol error, got {other}"),
    }

    // Disconnected patterns have no root whose ball covers them.
    let mut b = GraphBuilder::new();
    b.add_node(0);
    b.add_node(0);
    let disconnected = write_graph(&b.build());
    let err = coordinator
        .run_query("bridged", &QuerySpec::new(&disconnected))
        .unwrap_err();
    match err {
        ServiceError::Protocol(message) => assert!(message.contains("connected"), "{message}"),
        other => panic!("expected protocol error, got {other}"),
    }
}

#[test]
fn coordinator_and_shard_admission_families_stay_separate() {
    // Regression for the STATS/METRICS double-count: a coordinator-level
    // admission wait must surface under `coordinator.*` only, and shard
    // executions under each shard's `service.*` only — summing the two
    // families over-reports unless they stay disjoint.
    let target_path = temp_path("sge-parity-admission.gfd");
    std::fs::write(&target_path, write_graph(&bridged_communities(2, 5))).unwrap();
    let coordinator = Coordinator::new(2, ServiceConfig::default());
    coordinator
        .load_target("bridged", &target_path, None)
        .unwrap();
    std::fs::remove_file(&target_path).ok();

    let text = write_graph(&generators::clique(3, 0));
    let spec = QuerySpec::new(&text).with_run(RunConfig::new(Scheduler::Sequential));
    let queries = 3u64;
    for _ in 0..queries {
        coordinator.run_query("bridged", &spec).unwrap();
    }

    // Coordinator-level: one admission per merged query.
    let coord = coordinator.stats();
    assert_eq!(coord.admissions, queries);
    assert_eq!(coord.queries_served, queries);

    // Shard-level: one admission per shard execution — per shard, not per
    // merged query, and never added into the coordinator's own counters.
    let shard_admissions: u64 = coordinator
        .shards()
        .iter()
        .map(|shard| shard.stats().admissions)
        .sum();
    assert_eq!(shard_admissions, queries * 2);

    // The coordinator's own registry must not contain any `service.*`
    // cells, and its METRICS aggregation namespaces shard families under
    // `shard.` — the two sums stay independently legible.
    let own: Vec<String> = coordinator
        .metrics()
        .snapshot()
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    assert!(own.iter().any(|n| n == "coordinator.admissions"));
    assert!(
        own.iter().all(|n| !n.starts_with("service.")),
        "coordinator registry leaked service.* cells: {own:?}"
    );
}

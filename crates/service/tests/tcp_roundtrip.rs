//! Full TCP round-trips: server thread + scripted client over loopback.

use sge_graph::{generators, io::write_graph};
use sge_service::client::run_script;
use sge_service::protocol::encode_inline_pattern;
use sge_service::{Server, Service, ServiceConfig};
use std::sync::Arc;

fn start_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let server = Server::bind("127.0.0.1:0", service).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn write_target_file(stem: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("{stem}-{}.gfd", std::process::id()));
    std::fs::write(&path, write_graph(&generators::clique(5, 0))).unwrap();
    path
}

#[test]
fn load_query_batch_stats_shutdown() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-k5");
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    let edge = encode_inline_pattern(&write_graph(&generators::directed_path(2, 0)));

    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        format!("QUERY target=k5 pattern={triangle}"),
        format!("QUERY target=k5 sched=ws:4 pattern={triangle}"),
        format!("QUERY target=k5 algo=ri sched=rayon:2 max=5 pattern={edge}"),
        format!("BATCH target=k5 n=2"),
        format!("pattern={triangle}"),
        format!("algo=ri-ds pattern={edge}"),
        "STATS".to_string(),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    assert_eq!(
        responses.len(),
        7,
        "one response per request: {responses:?}"
    );

    // LOAD
    assert!(responses[0].contains("\"ok\":true"));
    assert!(responses[0].contains("\"nodes\":5"));
    assert!(responses[0].contains("\"edges\":20"));
    // QUERY (cold, then cached under another scheduler)
    assert!(responses[1].contains("\"matches\":60"));
    assert!(responses[1].contains("\"cache_hit\":false"));
    assert!(responses[2].contains("\"matches\":60"));
    assert!(responses[2].contains("\"cache_hit\":true"));
    assert!(responses[2].contains("work-stealing"));
    // Limited RI query under the rayon-style pool.
    assert!(responses[3].contains("\"matches\":5"));
    assert!(responses[3].contains("\"limit_hit\":true"));
    // BATCH: 60 + 20 matches.
    assert!(responses[4].contains("\"queries\":2"));
    assert!(responses[4].contains("\"succeeded\":2"));
    assert!(responses[4].contains("\"total_matches\":80"));
    // STATS: 3 single + 2 batched queries, 60*2 + 5 + 60 + 20 matches.
    assert!(responses[5].contains("\"queries_served\":5"));
    assert!(responses[5].contains("\"total_matches\":205"));
    assert!(responses[5].contains("\"batches_served\":1"));
    assert!(responses[5].contains("\"name\":\"k5\""));
    // SHUTDOWN stops the accept loop.
    assert!(responses[6].contains("\"shutdown\":true"));
    server.join().expect("server thread exits after SHUTDOWN");
}

#[test]
fn mappings_are_returned_and_sorted_when_collected() {
    let (addr, server) = start_server();
    let service_pattern = encode_inline_pattern(&write_graph(&generators::directed_path(2, 0)));
    let target_path = write_target_file("sge-tcp-collect");
    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        format!("QUERY target=k5 collect=100 pattern={service_pattern}"),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    assert!(responses[1].contains("\"matches\":20"));
    let mappings_field = responses[1]
        .split("\"mappings\":")
        .nth(1)
        .expect("mappings present");
    // First (lexicographically smallest) mapping of an edge into a 5-clique.
    assert!(mappings_field.starts_with("[[0,1]"));
    server.join().unwrap();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let (addr, server) = start_server();
    let script = vec![
        "FROB target=x".to_string(),
        "QUERY target=nowhere pattern=1;0;0".to_string(),
        "QUERY target=nowhere".to_string(),
        "STATS".to_string(),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    assert!(responses[0].contains("\"ok\":false"));
    assert!(responses[0].contains("unknown verb"));
    assert!(responses[1].contains("unknown target"));
    assert!(responses[2].contains("\"ok\":false"));
    // The connection survived all three errors.
    assert!(responses[3].contains("\"queries_served\":0"));
    assert!(responses[4].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn query_against_unloaded_target_is_a_structured_error() {
    let (addr, server) = start_server();
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    let script = vec![
        format!("QUERY target=ghost pattern={triangle}"),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    // One structured JSON error line — never a panic or a silent empty reply.
    assert!(
        responses[0].starts_with("{\"ok\":false,"),
        "{}",
        responses[0]
    );
    assert!(
        responses[0].contains("\"error\":\"unknown target 'ghost'\""),
        "{}",
        responses[0]
    );
    assert!(responses[1].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn empty_batch_is_a_structured_error_and_keeps_the_connection_alive() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-emptybatch");
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        "BATCH target=k5 n=0".to_string(), // announces zero continuation lines
        format!("QUERY target=k5 pattern={triangle}"),
        "BATCH target=ghost n=0".to_string(), // empty batch wins over bad target
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    assert_eq!(responses.len(), 5, "{responses:?}");
    assert!(
        responses[1].starts_with("{\"ok\":false,"),
        "{}",
        responses[1]
    );
    assert!(responses[1].contains("n >= 1"), "{}", responses[1]);
    // The connection stays in sync: the next query still runs normally.
    assert!(responses[2].contains("\"matches\":60"), "{}", responses[2]);
    assert!(
        responses[3].starts_with("{\"ok\":false,"),
        "{}",
        responses[3]
    );
    assert!(responses[4].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn bad_batch_line_keeps_the_connection_in_sync() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-badbatch");
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        "BATCH target=k5 n=2".to_string(),
        "algo=wat pattern=1;0;0".to_string(), // malformed continuation line
        format!("pattern={triangle}"),        // still consumed, not re-parsed as a verb
        format!("QUERY target=k5 pattern={triangle}"),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    // 4 requests (LOAD, BATCH, QUERY, SHUTDOWN) → exactly 4 responses, in order.
    assert_eq!(responses.len(), 4, "{responses:?}");
    assert!(responses[1].contains("\"ok\":false"));
    assert!(responses[1].contains("unknown algorithm"));
    assert!(responses[2].contains("\"matches\":60"), "{}", responses[2]);
    assert!(responses[3].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn bad_batch_header_keeps_the_connection_in_sync() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-badheader");
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    // Header parses its n= but is missing target=; the client still sends
    // the 2 announced query lines, which the server must consume.
    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        "BATCH n=2".to_string(),
        format!("pattern={triangle}"),
        format!("pattern={triangle}"),
        format!("QUERY target=k5 pattern={triangle}"),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    assert_eq!(responses.len(), 4, "{responses:?}");
    assert!(responses[1].contains("\"ok\":false"));
    assert!(responses[1].contains("BATCH requires target"));
    assert!(responses[2].contains("\"matches\":60"), "{}", responses[2]);
    assert!(responses[3].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn truncated_batch_script_errors_instead_of_hanging() {
    let (addr, server) = start_server();
    let script = vec![
        "BATCH target=k5 n=3".to_string(),
        "pattern=1;0;0".to_string(), // 1 of 3 announced lines
    ];
    let err = run_script(addr, &script).expect_err("incomplete batch must not be sent");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let responses = run_script(addr, &["SHUTDOWN".to_string()]).unwrap();
    assert!(responses[0].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn concurrent_clients_share_the_cache() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-conc");
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    // Load and warm the cache with one serial query so the concurrent
    // clients below all hit the same prepared entry deterministically.
    let load = vec![
        format!("LOAD k5 {}", target_path.display()),
        format!("QUERY target=k5 pattern={triangle}"),
    ];
    run_script(addr, &load).expect("load");

    let handles: Vec<_> = (0..4)
        .map(|i| {
            let triangle = triangle.clone();
            std::thread::spawn(move || {
                let sched = if i % 2 == 0 { "seq" } else { "ws:2" };
                let script = vec![format!("QUERY target=k5 sched={sched} pattern={triangle}")];
                run_script(addr, &script).expect("query")
            })
        })
        .collect();
    for handle in handles {
        let responses = handle.join().unwrap();
        assert!(responses[0].contains("\"matches\":60"));
    }

    let responses = run_script(addr, &["STATS".to_string(), "SHUTDOWN".to_string()]).unwrap();
    std::fs::remove_file(&target_path).ok();
    assert!(responses[0].contains("\"queries_served\":5"));
    // All four clients keyed the same (pattern, target, algorithm) entry.
    assert!(
        responses[0].contains("\"misses\":1"),
        "stats: {}",
        responses[0]
    );
    server.join().unwrap();
}

#[test]
fn explain_round_trips_with_order_costs_and_strategy() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-explain");
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        format!("EXPLAIN target=k5 pattern={triangle}"),
        format!("EXPLAIN target=k5 strategy=least-frequent-label pattern={triangle}"),
        format!("EXPLAIN target=k5 strategy=degree-descending algo=ri pattern={triangle}"),
        // The default-strategy EXPLAIN warmed the cache for the same query.
        format!("QUERY target=k5 pattern={triangle}"),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    assert_eq!(responses.len(), 6, "{responses:?}");

    // Default EXPLAIN: RI-greedy plan with 3 positions, costs per position.
    assert!(responses[1].starts_with("{\"ok\":true"), "{}", responses[1]);
    assert!(responses[1].contains("\"strategy\":\"ri-greedy\""));
    assert!(responses[1].contains("\"positions\":3"));
    assert!(responses[1].contains("\"order\":["));
    assert!(responses[1].contains("\"est_candidates\":["));
    assert!(responses[1].contains("\"est_states\":["));
    assert!(responses[1].contains("\"impossible\":false"));
    assert!(responses[1].contains("\"mode\":\"intersection\""));
    // Strategy selection reaches the plan.
    assert!(responses[2].contains("\"strategy\":\"least-frequent-label\""));
    assert!(responses[3].contains("\"strategy\":\"degree-descending\""));
    assert!(responses[3].contains("\"algorithm\":\"RI\""));
    // EXPLAIN prepared through the shared cache, so the QUERY hits.
    assert!(
        responses[4].contains("\"cache_hit\":true"),
        "{}",
        responses[4]
    );
    assert!(responses[4].contains("\"matches\":60"));
    assert!(responses[5].contains("\"shutdown\":true"));
    server.join().unwrap();
}

/// A dense target routes constrained positions onto the bitmap kernel, and
/// the whole story is visible over the wire: LOAD reports the sidecar, the
/// plan's kernel per position shows in EXPLAIN / EXPLAIN ANALYZE, runtime
/// usage shows in `kernel_usage` and the `engine.kernel.*` counters, and a
/// byte-capped reload of the same graph degrades to the gallop kernels.
#[test]
fn kernel_selection_is_visible_in_load_explain_and_metrics() {
    let (addr, server) = start_server();
    let target_path = std::env::temp_dir().join(format!("sge-tcp-k16-{}.gfd", std::process::id()));
    std::fs::write(&target_path, write_graph(&generators::clique(16, 0))).unwrap();
    let square = encode_inline_pattern(&write_graph(&generators::directed_cycle(4, 0)));
    let script = vec![
        format!("LOAD k16 {}", target_path.display()),
        format!("EXPLAIN target=k16 pattern={square}"),
        format!("EXPLAIN ANALYZE target=k16 max=500 pattern={square}"),
        "METRICS".to_string(),
        // Reload under a 1-byte cap: no rows fit, kernels fall back.
        format!("LOAD k16 {} bitmap_cap=1", target_path.display()),
        format!("EXPLAIN target=k16 pattern={square}"),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    assert_eq!(responses.len(), 7, "{responses:?}");

    // LOAD reports the sidecar: one out-row and one in-row per node.
    assert!(
        responses[0].contains("\"bitmap_rows\":32"),
        "{}",
        responses[0]
    );
    assert!(responses[0].contains("\"bitmap_capped\":false"));
    // The planner routes every constrained position onto the bitmap kernel
    // (the root position is a scan — it has no parents to intersect).
    let kernels = "\"kernels\":[\"scan\",\"bitmap\",\"bitmap\",\"bitmap\"]";
    assert!(responses[1].contains(kernels), "{}", responses[1]);
    assert!(responses[2].contains(kernels), "{}", responses[2]);
    // …and the executed run actually exercised it: bitmap rows were ANDed,
    // the linear-merge fallback never fired.
    assert!(
        !responses[2].contains("\"kernel_usage\":{\"bitmap\":0,"),
        "{}",
        responses[2]
    );
    assert!(responses[2].contains("\"merge\":0"), "{}", responses[2]);
    // METRICS exposes the cumulative kernel counters.
    for counter in [
        "\"engine.kernel.bitmap\":",
        "\"engine.kernel.gallop\":",
        "\"engine.kernel.merge\":",
        "\"engine.kernel.prefilter_rejected\":",
    ] {
        assert!(responses[3].contains(counter), "{}", responses[3]);
    }
    assert!(
        !responses[3].contains("\"engine.kernel.bitmap\":0,"),
        "{}",
        responses[3]
    );
    // The capped reload kept the signatures but dropped the rows…
    assert!(
        responses[4].contains("\"bitmap_capped\":true"),
        "{}",
        responses[4]
    );
    assert!(responses[4].contains("\"bitmap_rows\":0"));
    // …so the same plan now resolves to the CSR gallop kernels.
    assert!(
        responses[5].contains("\"kernels\":[\"scan\",\"gallop\",\"gallop\",\"gallop\"]"),
        "{}",
        responses[5]
    );
    assert!(responses[6].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn strategy_is_selectable_on_query_and_batch() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-strategy");
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        format!("QUERY target=k5 strategy=least-frequent-label pattern={triangle}"),
        format!("QUERY target=k5 strategy=ri-greedy pattern={triangle}"),
        // Same pattern, different strategy: distinct cache entries, both cold.
        "STATS".to_string(),
        "BATCH target=k5 n=2".to_string(),
        format!("strategy=degree-descending pattern={triangle}"),
        format!("strategy=degree_descending mode=single-parent pattern={triangle}"),
        format!("QUERY target=k5 strategy=bogus pattern={triangle}"),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    assert_eq!(responses.len(), 7, "{responses:?}");
    // All strategies agree on the match count and are echoed back.
    assert!(responses[1].contains("\"matches\":60"));
    assert!(responses[1].contains("\"strategy\":\"least-frequent-label\""));
    assert!(responses[2].contains("\"matches\":60"));
    assert!(responses[2].contains("\"strategy\":\"ri-greedy\""));
    assert!(responses[3].contains("\"misses\":2"), "{}", responses[3]);
    // Batched queries carry their strategy (and candidate mode) too.
    assert!(responses[4].contains("\"succeeded\":2"));
    assert!(responses[4].contains("\"total_matches\":120"));
    assert!(responses[4].contains("\"strategy\":\"degree-descending\""));
    // An unknown strategy is a structured protocol error.
    assert!(
        responses[5].starts_with("{\"ok\":false"),
        "{}",
        responses[5]
    );
    assert!(responses[5].contains("unknown strategy"));
    assert!(responses[6].contains("\"shutdown\":true"));
    server.join().unwrap();
}

// ---------------------------------------------------------------------------
// Streaming (`emit=stream`) over the wire
// ---------------------------------------------------------------------------

/// Parses every row out of a streamed response block's `{"rows":[...]}`
/// frame lines.
fn parse_streamed_rows(block: &str) -> Vec<Vec<u64>> {
    block
        .lines()
        .filter(|line| line.starts_with("{\"rows\":["))
        .flat_map(|line| {
            let inner = line
                .trim_start_matches("{\"rows\":[")
                .trim_end_matches("]}");
            parse_row_list(inner)
        })
        .collect()
}

/// Parses `[0,1],[2,3]` (possibly empty) into rows of integers.
fn parse_row_list(inner: &str) -> Vec<Vec<u64>> {
    let mut rows = Vec::new();
    let mut rest = inner;
    while let Some(open) = rest.find('[') {
        let close = rest[open..].find(']').expect("balanced row") + open;
        let row: Vec<u64> = rest[open + 1..close]
            .split(',')
            .filter(|t| !t.is_empty())
            .map(|t| t.parse().expect("integer node id"))
            .collect();
        rows.push(row);
        rest = &rest[close + 1..];
    }
    rows
}

#[test]
fn streamed_rows_are_parity_with_buffered_mappings_and_vf2() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-stream-parity");
    let triangle_graph = generators::directed_cycle(3, 0);
    let triangle = encode_inline_pattern(&write_graph(&triangle_graph));

    // Independent oracle for the match count.
    let oracle = sge_vf2::count_matches(&triangle_graph, &generators::clique(5, 0));
    assert_eq!(oracle, 60);

    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        format!("QUERY target=k5 collect=1000 pattern={triangle}"),
        format!("QUERY target=k5 emit=stream chunk=7 pattern={triangle}"),
        format!("QUERY target=k5 emit=stream chunk=7 sched=ws:3 pattern={triangle}"),
        "STATS".to_string(),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    assert_eq!(responses.len(), 6, "{responses:?}");

    // Reference: the buffered response's sorted mappings array.
    let buffered = &responses[1];
    let mappings_field = buffered.split("\"mappings\":[").nth(1).expect("mappings");
    let reference = parse_row_list(mappings_field.trim_end_matches("]}"));
    assert_eq!(reference.len(), 60);

    for (label, block) in [("seq", &responses[2]), ("ws", &responses[3])] {
        let lines: Vec<&str> = block.lines().collect();
        assert!(
            lines[0].starts_with("{\"ok\":true,\"stream\":true"),
            "{label}: {}",
            lines[0]
        );
        assert!(lines[0].contains("\"chunk\":7"), "{label}");
        let footer = lines.last().unwrap();
        assert!(
            footer.starts_with("{\"ok\":true,\"done\":true"),
            "{label}: {footer}"
        );
        assert!(footer.contains("\"matches\":60"), "{label}: {footer}");
        assert!(footer.contains("\"rows_sent\":60"), "{label}: {footer}");
        assert!(footer.contains("\"cancelled\":false"), "{label}: {footer}");
        assert!(
            !footer.contains("\"mappings\""),
            "{label}: rows travel in frames, not the footer"
        );
        // 60 rows in chunks of 7 → 9 frames (8 full + 1 of 4) between
        // header and footer.
        assert_eq!(lines.len(), 2 + 9, "{label}: {block}");
        let mut rows = parse_streamed_rows(block);
        assert_eq!(rows.len() as u64, oracle, "{label}");
        rows.sort_unstable();
        assert_eq!(
            rows, reference,
            "{label}: streamed rows == collect_mappings"
        );
    }

    // The stream counters saw both streamed queries, none cancelled.
    assert!(
        responses[4].contains("\"streams_served\":2"),
        "{}",
        responses[4]
    );
    assert!(
        responses[4].contains("\"rows_streamed\":120"),
        "{}",
        responses[4]
    );
    assert!(
        responses[4].contains("\"streams_cancelled\":0"),
        "{}",
        responses[4]
    );
    assert!(
        responses[4].contains("\"queries_served\":3"),
        "{}",
        responses[4]
    );
    assert!(responses[5].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn mid_stream_disconnect_cancels_enumeration_without_hurting_other_connections() {
    use std::io::{BufRead, BufReader, Write};
    let (addr, server) = start_server();

    // A large instance: a directed triangle in a 64-clique has 249,984
    // embeddings (64*63*62) — far more than the socket buffers can swallow,
    // so the server is guaranteed to still be streaming when the client
    // vanishes.
    let target_path =
        std::env::temp_dir().join(format!("sge-tcp-disconnect-{}.gfd", std::process::id()));
    std::fs::write(&target_path, write_graph(&generators::clique(64, 0))).unwrap();
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));

    let load = vec![format!("LOAD big {}", target_path.display())];
    run_script(addr, &load).expect("load");

    // Raw client: start the stream, read the header and one frame, then
    // drop the connection with rows still in flight (unread data makes the
    // close an immediate RST, so server writes start failing).
    {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writeln!(
            writer,
            "QUERY target=big emit=stream chunk=4 pattern={triangle}"
        )
        .unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("{\"ok\":true,\"stream\":true"), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("{\"rows\":["), "{line}");
        // Drop both halves: the client is gone mid-stream.
    }

    // The handler notices the dead socket, cancels enumeration and records
    // the cancelled stream; poll STATS from a *different* connection.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let stats = loop {
        let responses =
            run_script(addr, &["STATS".to_string()]).expect("stats over a fresh connection");
        if responses[0].contains("\"streams_cancelled\":1") {
            break responses.into_iter().next().unwrap();
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never recorded the cancelled stream: {}",
            responses[0]
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    // Enumeration terminated early: the recorded match count is a strict
    // lower bound of the full 249,984.
    let total: u64 = stats
        .split("\"total_matches\":")
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .expect("total_matches in stats");
    assert!(
        total < 249_984,
        "enumeration ran to completion into a dead socket: {total}"
    );

    // Other connections are unaffected: a buffered query still serves.
    let check = run_script(
        addr,
        &[
            format!("QUERY target=big max=10 pattern={triangle}"),
            "SHUTDOWN".to_string(),
        ],
    )
    .expect("query after disconnect");
    std::fs::remove_file(&target_path).ok();
    assert!(check[0].contains("\"matches\":10"), "{}", check[0]);
    assert!(check[1].contains("\"shutdown\":true"));
    server.join().unwrap();
}

// ---------------------------------------------------------------------------
// Robustness: line cap, drain cap, graceful shutdown
// ---------------------------------------------------------------------------

#[test]
fn oversized_request_line_is_rejected_and_connection_dropped() {
    use std::io::{Read, Write};
    let (addr, server) = start_server();

    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    // One byte over the cap, no newline: the server must not buffer forever.
    let oversized = vec![b'Q'; (1 << 20) + 1];
    writer.write_all(&oversized).unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    let mut reader = stream;
    reader.read_to_string(&mut response).unwrap();
    // A structured error, then EOF (read_to_string returned → closed).
    assert!(response.starts_with("{\"ok\":false,"), "{response}");
    assert!(response.contains("exceeds"), "{response}");

    let responses = run_script(addr, &["SHUTDOWN".to_string()]).unwrap();
    assert!(responses[0].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn huge_announced_batch_drain_is_capped_and_connection_closed() {
    use std::io::{Read, Write};
    let (addr, server) = start_server();

    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    // Malformed header (missing target=) announcing u64::MAX continuation
    // lines: the server must refuse to drain them and close instead.
    writeln!(writer, "BATCH n=18446744073709551615").unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    let mut reader = stream;
    reader.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("{\"ok\":false,"), "{response}");
    assert!(
        response.contains("closing connection") || response.contains("cap"),
        "{response}"
    );

    // A header over the cap but with a valid shape is rejected the same way
    // (and its announced drain is refused).
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    writeln!(writer, "BATCH target=x n=100000").unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    let mut reader = stream;
    reader.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("{\"ok\":false,"), "{response}");

    // The server itself is unharmed.
    let responses = run_script(addr, &["STATS".to_string(), "SHUTDOWN".to_string()]).unwrap();
    assert!(responses[0].contains("\"ok\":true"));
    assert!(responses[1].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn shutdown_drains_in_flight_queries_and_ignores_idle_connections() {
    use std::io::{BufRead, BufReader, Write};
    let service = Arc::new(Service::new(ServiceConfig::default()));
    service.registry().insert("k5", generators::clique(5, 0));
    let server = Server::bind("127.0.0.1:0", service)
        .expect("bind loopback")
        .with_drain_timeout(std::time::Duration::from_millis(500));
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));

    // An idle connection that never sends anything must not block shutdown.
    let idle = std::net::TcpStream::connect(addr).unwrap();

    // A connection with a query in flight: send it, then SHUTDOWN from a
    // second connection, then read the full response.
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "QUERY target=k5 collect=100 pattern={triangle}").unwrap();
    writer.flush().unwrap();

    let responses = run_script(addr, &["SHUTDOWN".to_string()]).unwrap();
    assert!(responses[0].contains("\"shutdown\":true"));

    // The in-flight response arrives complete, not truncated.
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(response.contains("\"matches\":60"), "{response}");
    assert!(response.trim_end().ends_with('}'), "{response}");

    // run() returns despite the idle connection (drain deadline).
    let start = std::time::Instant::now();
    handle.join().expect("server thread exits after SHUTDOWN");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "shutdown drain took too long"
    );
    drop(idle);
}

#[test]
fn oversized_line_splitting_a_multibyte_char_still_gets_a_structured_error() {
    use std::io::{Read, Write};
    let (addr, server) = start_server();

    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    // (cap+1) bytes of valid UTF-8 whose final character straddles the cap
    // boundary: the length check must fire before UTF-8 validation, or the
    // truncated read turns into an InvalidData error and the connection
    // drops without the documented structured response.
    let mut oversized = "é".repeat((1 << 19) + 1).into_bytes(); // 2 bytes each
    oversized.truncate((1 << 20) + 1);
    writer.write_all(&oversized).unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    let mut reader = stream;
    reader.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("{\"ok\":false,"), "{response}");
    assert!(response.contains("exceeds"), "{response}");

    // A short but non-UTF-8 line is refused with its own structured error.
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(b"QUERY \xff\xfe target=x\n").unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    let mut reader = stream;
    reader.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("{\"ok\":false,"), "{response}");
    assert!(response.contains("not valid UTF-8"), "{response}");

    let responses = run_script(addr, &["SHUTDOWN".to_string()]).unwrap();
    assert!(responses[0].contains("\"shutdown\":true"));
    server.join().unwrap();
}

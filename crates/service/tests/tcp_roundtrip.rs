//! Full TCP round-trips: server thread + scripted client over loopback.

use sge_graph::{generators, io::write_graph};
use sge_service::client::run_script;
use sge_service::protocol::encode_inline_pattern;
use sge_service::{Server, Service, ServiceConfig};
use std::sync::Arc;

fn start_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let server = Server::bind("127.0.0.1:0", service).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn write_target_file(stem: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("{stem}-{}.gfd", std::process::id()));
    std::fs::write(&path, write_graph(&generators::clique(5, 0))).unwrap();
    path
}

#[test]
fn load_query_batch_stats_shutdown() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-k5");
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    let edge = encode_inline_pattern(&write_graph(&generators::directed_path(2, 0)));

    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        format!("QUERY target=k5 pattern={triangle}"),
        format!("QUERY target=k5 sched=ws:4 pattern={triangle}"),
        format!("QUERY target=k5 algo=ri sched=rayon:2 max=5 pattern={edge}"),
        format!("BATCH target=k5 n=2"),
        format!("pattern={triangle}"),
        format!("algo=ri-ds pattern={edge}"),
        "STATS".to_string(),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    assert_eq!(
        responses.len(),
        7,
        "one response per request: {responses:?}"
    );

    // LOAD
    assert!(responses[0].contains("\"ok\":true"));
    assert!(responses[0].contains("\"nodes\":5"));
    assert!(responses[0].contains("\"edges\":20"));
    // QUERY (cold, then cached under another scheduler)
    assert!(responses[1].contains("\"matches\":60"));
    assert!(responses[1].contains("\"cache_hit\":false"));
    assert!(responses[2].contains("\"matches\":60"));
    assert!(responses[2].contains("\"cache_hit\":true"));
    assert!(responses[2].contains("work-stealing"));
    // Limited RI query under the rayon-style pool.
    assert!(responses[3].contains("\"matches\":5"));
    assert!(responses[3].contains("\"limit_hit\":true"));
    // BATCH: 60 + 20 matches.
    assert!(responses[4].contains("\"queries\":2"));
    assert!(responses[4].contains("\"succeeded\":2"));
    assert!(responses[4].contains("\"total_matches\":80"));
    // STATS: 3 single + 2 batched queries, 60*2 + 5 + 60 + 20 matches.
    assert!(responses[5].contains("\"queries_served\":5"));
    assert!(responses[5].contains("\"total_matches\":205"));
    assert!(responses[5].contains("\"batches_served\":1"));
    assert!(responses[5].contains("\"name\":\"k5\""));
    // SHUTDOWN stops the accept loop.
    assert!(responses[6].contains("\"shutdown\":true"));
    server.join().expect("server thread exits after SHUTDOWN");
}

#[test]
fn mappings_are_returned_and_sorted_when_collected() {
    let (addr, server) = start_server();
    let service_pattern = encode_inline_pattern(&write_graph(&generators::directed_path(2, 0)));
    let target_path = write_target_file("sge-tcp-collect");
    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        format!("QUERY target=k5 collect=100 pattern={service_pattern}"),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    assert!(responses[1].contains("\"matches\":20"));
    let mappings_field = responses[1]
        .split("\"mappings\":")
        .nth(1)
        .expect("mappings present");
    // First (lexicographically smallest) mapping of an edge into a 5-clique.
    assert!(mappings_field.starts_with("[[0,1]"));
    server.join().unwrap();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let (addr, server) = start_server();
    let script = vec![
        "FROB target=x".to_string(),
        "QUERY target=nowhere pattern=1;0;0".to_string(),
        "QUERY target=nowhere".to_string(),
        "STATS".to_string(),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    assert!(responses[0].contains("\"ok\":false"));
    assert!(responses[0].contains("unknown verb"));
    assert!(responses[1].contains("unknown target"));
    assert!(responses[2].contains("\"ok\":false"));
    // The connection survived all three errors.
    assert!(responses[3].contains("\"queries_served\":0"));
    assert!(responses[4].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn query_against_unloaded_target_is_a_structured_error() {
    let (addr, server) = start_server();
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    let script = vec![
        format!("QUERY target=ghost pattern={triangle}"),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    // One structured JSON error line — never a panic or a silent empty reply.
    assert!(
        responses[0].starts_with("{\"ok\":false,"),
        "{}",
        responses[0]
    );
    assert!(
        responses[0].contains("\"error\":\"unknown target 'ghost'\""),
        "{}",
        responses[0]
    );
    assert!(responses[1].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn empty_batch_is_a_structured_error_and_keeps_the_connection_alive() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-emptybatch");
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        "BATCH target=k5 n=0".to_string(), // announces zero continuation lines
        format!("QUERY target=k5 pattern={triangle}"),
        "BATCH target=ghost n=0".to_string(), // empty batch wins over bad target
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    assert_eq!(responses.len(), 5, "{responses:?}");
    assert!(
        responses[1].starts_with("{\"ok\":false,"),
        "{}",
        responses[1]
    );
    assert!(responses[1].contains("n >= 1"), "{}", responses[1]);
    // The connection stays in sync: the next query still runs normally.
    assert!(responses[2].contains("\"matches\":60"), "{}", responses[2]);
    assert!(
        responses[3].starts_with("{\"ok\":false,"),
        "{}",
        responses[3]
    );
    assert!(responses[4].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn bad_batch_line_keeps_the_connection_in_sync() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-badbatch");
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        "BATCH target=k5 n=2".to_string(),
        "algo=wat pattern=1;0;0".to_string(), // malformed continuation line
        format!("pattern={triangle}"),        // still consumed, not re-parsed as a verb
        format!("QUERY target=k5 pattern={triangle}"),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    // 4 requests (LOAD, BATCH, QUERY, SHUTDOWN) → exactly 4 responses, in order.
    assert_eq!(responses.len(), 4, "{responses:?}");
    assert!(responses[1].contains("\"ok\":false"));
    assert!(responses[1].contains("unknown algorithm"));
    assert!(responses[2].contains("\"matches\":60"), "{}", responses[2]);
    assert!(responses[3].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn bad_batch_header_keeps_the_connection_in_sync() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-badheader");
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    // Header parses its n= but is missing target=; the client still sends
    // the 2 announced query lines, which the server must consume.
    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        "BATCH n=2".to_string(),
        format!("pattern={triangle}"),
        format!("pattern={triangle}"),
        format!("QUERY target=k5 pattern={triangle}"),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    assert_eq!(responses.len(), 4, "{responses:?}");
    assert!(responses[1].contains("\"ok\":false"));
    assert!(responses[1].contains("BATCH requires target"));
    assert!(responses[2].contains("\"matches\":60"), "{}", responses[2]);
    assert!(responses[3].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn truncated_batch_script_errors_instead_of_hanging() {
    let (addr, server) = start_server();
    let script = vec![
        "BATCH target=k5 n=3".to_string(),
        "pattern=1;0;0".to_string(), // 1 of 3 announced lines
    ];
    let err = run_script(addr, &script).expect_err("incomplete batch must not be sent");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let responses = run_script(addr, &["SHUTDOWN".to_string()]).unwrap();
    assert!(responses[0].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn concurrent_clients_share_the_cache() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-conc");
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    // Load and warm the cache with one serial query so the concurrent
    // clients below all hit the same prepared entry deterministically.
    let load = vec![
        format!("LOAD k5 {}", target_path.display()),
        format!("QUERY target=k5 pattern={triangle}"),
    ];
    run_script(addr, &load).expect("load");

    let handles: Vec<_> = (0..4)
        .map(|i| {
            let triangle = triangle.clone();
            std::thread::spawn(move || {
                let sched = if i % 2 == 0 { "seq" } else { "ws:2" };
                let script = vec![format!("QUERY target=k5 sched={sched} pattern={triangle}")];
                run_script(addr, &script).expect("query")
            })
        })
        .collect();
    for handle in handles {
        let responses = handle.join().unwrap();
        assert!(responses[0].contains("\"matches\":60"));
    }

    let responses = run_script(addr, &["STATS".to_string(), "SHUTDOWN".to_string()]).unwrap();
    std::fs::remove_file(&target_path).ok();
    assert!(responses[0].contains("\"queries_served\":5"));
    // All four clients keyed the same (pattern, target, algorithm) entry.
    assert!(
        responses[0].contains("\"misses\":1"),
        "stats: {}",
        responses[0]
    );
    server.join().unwrap();
}

#[test]
fn explain_round_trips_with_order_costs_and_strategy() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-explain");
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        format!("EXPLAIN target=k5 pattern={triangle}"),
        format!("EXPLAIN target=k5 strategy=least-frequent-label pattern={triangle}"),
        format!("EXPLAIN target=k5 strategy=degree-descending algo=ri pattern={triangle}"),
        // The default-strategy EXPLAIN warmed the cache for the same query.
        format!("QUERY target=k5 pattern={triangle}"),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    assert_eq!(responses.len(), 6, "{responses:?}");

    // Default EXPLAIN: RI-greedy plan with 3 positions, costs per position.
    assert!(responses[1].starts_with("{\"ok\":true"), "{}", responses[1]);
    assert!(responses[1].contains("\"strategy\":\"ri-greedy\""));
    assert!(responses[1].contains("\"positions\":3"));
    assert!(responses[1].contains("\"order\":["));
    assert!(responses[1].contains("\"est_candidates\":["));
    assert!(responses[1].contains("\"est_states\":["));
    assert!(responses[1].contains("\"impossible\":false"));
    assert!(responses[1].contains("\"mode\":\"intersection\""));
    // Strategy selection reaches the plan.
    assert!(responses[2].contains("\"strategy\":\"least-frequent-label\""));
    assert!(responses[3].contains("\"strategy\":\"degree-descending\""));
    assert!(responses[3].contains("\"algorithm\":\"RI\""));
    // EXPLAIN prepared through the shared cache, so the QUERY hits.
    assert!(
        responses[4].contains("\"cache_hit\":true"),
        "{}",
        responses[4]
    );
    assert!(responses[4].contains("\"matches\":60"));
    assert!(responses[5].contains("\"shutdown\":true"));
    server.join().unwrap();
}

#[test]
fn strategy_is_selectable_on_query_and_batch() {
    let (addr, server) = start_server();
    let target_path = write_target_file("sge-tcp-strategy");
    let triangle = encode_inline_pattern(&write_graph(&generators::directed_cycle(3, 0)));
    let script = vec![
        format!("LOAD k5 {}", target_path.display()),
        format!("QUERY target=k5 strategy=least-frequent-label pattern={triangle}"),
        format!("QUERY target=k5 strategy=ri-greedy pattern={triangle}"),
        // Same pattern, different strategy: distinct cache entries, both cold.
        "STATS".to_string(),
        "BATCH target=k5 n=2".to_string(),
        format!("strategy=degree-descending pattern={triangle}"),
        format!("strategy=degree_descending mode=single-parent pattern={triangle}"),
        format!("QUERY target=k5 strategy=bogus pattern={triangle}"),
        "SHUTDOWN".to_string(),
    ];
    let responses = run_script(addr, &script).expect("script round-trip");
    std::fs::remove_file(&target_path).ok();
    assert_eq!(responses.len(), 7, "{responses:?}");
    // All strategies agree on the match count and are echoed back.
    assert!(responses[1].contains("\"matches\":60"));
    assert!(responses[1].contains("\"strategy\":\"least-frequent-label\""));
    assert!(responses[2].contains("\"matches\":60"));
    assert!(responses[2].contains("\"strategy\":\"ri-greedy\""));
    assert!(responses[3].contains("\"misses\":2"), "{}", responses[3]);
    // Batched queries carry their strategy (and candidate mode) too.
    assert!(responses[4].contains("\"succeeded\":2"));
    assert!(responses[4].contains("\"total_matches\":120"));
    assert!(responses[4].contains("\"strategy\":\"degree-descending\""));
    // An unknown strategy is a structured protocol error.
    assert!(
        responses[5].starts_with("{\"ok\":false"),
        "{}",
        responses[5]
    );
    assert!(responses[5].contains("unknown strategy"));
    assert!(responses[6].contains("\"shutdown\":true"));
    server.join().unwrap();
}

//! `sge-sim` — run the deterministic simulator from the command line.
//!
//! ```text
//! sge-sim --list                                  list corpus scenarios
//! sge-sim --corpus                                run the pinned corpus
//! sge-sim --scenario NAME [--seed N] [--trace]    run one scenario
//! sge-sim --swarm N [--start-seed S] [--budget-ms M]
//!                                                 run N random scenarios
//! sge-sim --seed N [--trace]                      replay one swarm seed
//! ```
//!
//! Every failure prints the scenario name and the seed that reproduces it;
//! the exit code is 1 when anything failed.

use sge_sim::{corpus, swarm};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(mode) => run(mode),
        Err(message) => {
            eprintln!("sge-sim: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  sge-sim --list
  sge-sim --corpus
  sge-sim --scenario NAME [--seed N] [--trace]
  sge-sim --swarm N [--start-seed S] [--budget-ms M]
  sge-sim --seed N [--trace]";

enum Mode {
    List,
    Corpus,
    Scenario {
        name: String,
        seed: Option<u64>,
        show_trace: bool,
    },
    Swarm {
        count: usize,
        start_seed: u64,
        budget: Option<Duration>,
    },
    Replay {
        seed: u64,
        show_trace: bool,
    },
}

fn parse(args: &[String]) -> Result<Mode, String> {
    let mut list = false;
    let mut run_corpus = false;
    let mut scenario: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut swarm_count: Option<usize> = None;
    let mut start_seed: u64 = 1;
    let mut budget: Option<Duration> = None;
    let mut show_trace = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--list" => list = true,
            "--corpus" => run_corpus = true,
            "--scenario" => scenario = Some(value("--scenario")?),
            "--seed" => {
                seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|_| "--seed must be a u64".to_string())?,
                )
            }
            "--swarm" => {
                swarm_count = Some(
                    value("--swarm")?
                        .parse()
                        .map_err(|_| "--swarm must be a count".to_string())?,
                )
            }
            "--start-seed" => {
                start_seed = value("--start-seed")?
                    .parse()
                    .map_err(|_| "--start-seed must be a u64".to_string())?
            }
            "--budget-ms" => {
                budget = Some(Duration::from_millis(
                    value("--budget-ms")?
                        .parse()
                        .map_err(|_| "--budget-ms must be milliseconds".to_string())?,
                ))
            }
            "--trace" => show_trace = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }

    if list {
        return Ok(Mode::List);
    }
    if run_corpus {
        return Ok(Mode::Corpus);
    }
    if let Some(name) = scenario {
        return Ok(Mode::Scenario {
            name,
            seed,
            show_trace,
        });
    }
    if let Some(count) = swarm_count {
        return Ok(Mode::Swarm {
            count,
            start_seed,
            budget,
        });
    }
    if let Some(seed) = seed {
        return Ok(Mode::Replay { seed, show_trace });
    }
    Err("pick a mode".to_string())
}

fn run(mode: Mode) -> ExitCode {
    match mode {
        Mode::List => {
            for scenario in corpus::corpus() {
                println!(
                    "{:<28} seed {:#010x}  {} client(s)",
                    scenario.name,
                    scenario.seed,
                    scenario.clients.len()
                );
            }
            ExitCode::SUCCESS
        }
        Mode::Corpus => report_swarm("corpus", swarm::run_corpus()),
        Mode::Scenario {
            name,
            seed,
            show_trace,
        } => {
            let Some(scenario) = corpus::find(&name) else {
                eprintln!("sge-sim: no corpus scenario named '{name}' (try --list)");
                return ExitCode::FAILURE;
            };
            let seed = seed.unwrap_or(scenario.seed);
            run_one(&scenario, seed, show_trace)
        }
        Mode::Replay { seed, show_trace } => {
            let scenario = swarm::random_scenario(seed);
            run_one(&scenario, seed, show_trace)
        }
        Mode::Swarm {
            count,
            start_seed,
            budget,
        } => report_swarm("swarm", swarm::run_random(start_seed, count, budget)),
    }
}

fn run_one(scenario: &sge_sim::Scenario, seed: u64, show_trace: bool) -> ExitCode {
    match sge_sim::check_determinism(scenario, seed) {
        Ok(report) => {
            if show_trace {
                print!("{}", report.trace);
            }
            if report.passed() {
                println!(
                    "PASS {} seed {seed} ({} queries, {} streams, {} errors)",
                    report.scenario,
                    report.stats.queries_served,
                    report.stats.streams_served,
                    report.stats.errors
                );
                ExitCode::SUCCESS
            } else {
                for violation in &report.violations {
                    eprintln!("VIOLATION {violation}");
                }
                eprintln!(
                    "FAIL {} — replay with: sge-sim --scenario {} --seed {seed} --trace",
                    report.scenario, report.scenario
                );
                ExitCode::FAILURE
            }
        }
        Err(divergence) => {
            eprintln!("NONDETERMINISM {divergence}");
            eprintln!("replay with: sge-sim --seed {seed} --trace");
            ExitCode::FAILURE
        }
    }
}

fn report_swarm(what: &str, outcome: swarm::SwarmOutcome) -> ExitCode {
    if outcome.skipped > 0 {
        println!(
            "{what}: {} run(s), {} skipped (budget exhausted)",
            outcome.runs, outcome.skipped
        );
    } else {
        println!("{what}: {} run(s)", outcome.runs);
    }
    if outcome.passed() {
        println!("{what}: all passed");
        ExitCode::SUCCESS
    } else {
        for failure in &outcome.failures {
            eprintln!(
                "FAIL {} seed {} — {}",
                failure.scenario, failure.seed, failure.reason
            );
            eprintln!("  replay with: sge-sim --seed {} --trace", failure.seed);
        }
        eprintln!("{what}: {} failure(s)", outcome.failures.len());
        ExitCode::FAILURE
    }
}

//! The pinned regression corpus: named scenarios, each with a pinned seed,
//! covering every fault class the simulator knows how to inject.
//!
//! These run on every `cargo test` (byte-identical-trace determinism check)
//! and in CI's `sim-swarm` job.  A swarm failure is added here as a new
//! scenario pinned to the seed that found it — the corpus is the fossil
//! record of every interleaving bug the harness has caught.

use crate::scenario::{edge_inline, inline, pinned_config, ClientScript, Scenario, TargetKind};
use crate::transport::{ReadFault, WriteFault};
use sge_graph::generators;
use sge_service::protocol::MAX_REQUEST_LINE_BYTES;
use sge_service::ServiceConfig;
use std::time::Duration;

fn tri() -> String {
    crate::scenario::triangle_inline()
}

fn query(pattern: &str) -> String {
    format!("QUERY target=k5 pattern={pattern}")
}

fn stream_query(chunk: usize, extra: &str) -> String {
    let mut line = format!("QUERY target=k5 emit=stream chunk={chunk}");
    if !extra.is_empty() {
        line.push(' ');
        line.push_str(extra);
    }
    line.push_str(&format!(" pattern={}", tri()));
    line
}

/// Every pinned scenario, in a stable order.
pub fn corpus() -> Vec<Scenario> {
    vec![
        smoke(),
        stream_happy(),
        disconnect_mid_stream(),
        slow_reader_stall(),
        oversized_line(),
        invalid_utf8(),
        truncated_request(),
        reset_mid_request(),
        shutdown_during_drain(),
        batch_inflight_vs_shutdown(),
        batch_malformed_header(),
        cache_interleave(),
        cache_eviction_churn(),
        metrics_and_analyze(),
        idle_swarm_interleaved_queries(),
        disconnect_while_writable(),
        routing_keys(),
        dense_target_bitmap_kernels(),
        sharded_scatter_gather(),
        shard_disconnect_mid_stream(),
    ]
}

/// Looks a corpus scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    corpus().into_iter().find(|scenario| scenario.name == name)
}

/// One well-behaved client: buffered QUERY, EXPLAIN, STATS, clean EOF.
pub fn smoke() -> Scenario {
    Scenario::new("smoke", 0x5EED_0001)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(ClientScript::new(vec![
            query(&tri()),
            format!("EXPLAIN target=k5 pattern={}", tri()),
            "STATS".to_string(),
        ]))
}

/// A full streamed QUERY: header, 4 frames (16+16+16+12 of 60 triangle
/// matches), footer — nothing cancelled, so every count stays in the trace.
pub fn stream_happy() -> Scenario {
    Scenario::new("stream_happy", 0x5EED_0002)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(ClientScript::new(vec![
            stream_query(16, ""),
            "STATS".to_string(),
        ]))
}

/// PR 5's regression path: the client vanishes between a row frame and the
/// footer.  The write fails with `BrokenPipe`, enumeration is cancelled
/// cooperatively, the connection dies with an I/O error — while a second,
/// healthy client keeps being served.  Counts are normalized: how far the
/// producer got before observing the cancel token is OS scheduling, not seed.
pub fn disconnect_mid_stream() -> Scenario {
    Scenario::new("disconnect_mid_stream", 0x5EED_0003)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(
            ClientScript::new(vec![stream_query(8, "")])
                .with_write_fault(WriteFault::disconnect_after_lines(3)),
        )
        .with_client(ClientScript::new(vec![
            query(&edge_inline()),
            "STATS".to_string(),
        ]))
        .with_normalized_counts()
}

/// A slow reader: every response line written to client 0 stalls the virtual
/// clock 5 ms, so its streamed QUERY's latency includes the backpressure —
/// visible in the trace timestamps and the STATS latency fields, all derived
/// from the injected clock.
pub fn slow_reader_stall() -> Scenario {
    Scenario::new("slow_reader_stall", 0x5EED_0004)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(
            ClientScript::new(vec![stream_query(8, ""), "STATS".to_string()])
                .with_write_fault(WriteFault::slow_reader(Duration::from_millis(5))),
        )
        .with_client(ClientScript::new(vec![query(&edge_inline())]))
}

/// A request line over the 1 MiB cap: answered with a structured error and
/// the connection is closed without the server buffering the whole line.
pub fn oversized_line() -> Scenario {
    Scenario::new("oversized_line", 0x5EED_0005)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(ClientScript::new(vec![format!(
            "QUERY target=k5 pattern={}",
            "x".repeat(MAX_REQUEST_LINE_BYTES)
        )]))
        .with_client(ClientScript::new(vec![query(&tri())]))
}

/// A non-UTF-8 request line: structured error, connection closed.
pub fn invalid_utf8() -> Scenario {
    Scenario::new("invalid_utf8", 0x5EED_0006)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(
            ClientScript::new(vec!["STATS".to_string()])
                .with_trailing_bytes(vec![0xFF, 0xFE, 0x80, b'\n']),
        )
}

/// The client's stream ends mid-line (half-closed socket): the server sees a
/// partial request with no newline, answers a parse error, then EOF.
pub fn truncated_request() -> Scenario {
    let first = query(&tri());
    let cut = first.len() + 1 + 10; // 10 bytes into the second request
    Scenario::new("truncated_request", 0x5EED_0007)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(
            ClientScript::new(vec![first, query(&edge_inline())])
                .with_read_fault(ReadFault::TruncateAtByte(cut)),
        )
}

/// The client's stream aborts with `ECONNRESET` mid-connection: the step
/// surfaces an I/O error and the connection dies without a response.
pub fn reset_mid_request() -> Scenario {
    let first = "STATS".to_string();
    let cut = first.len() + 1; // reset right after the first request
    Scenario::new("reset_mid_request", 0x5EED_0008)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(
            ClientScript::new(vec![first, query(&tri())])
                .with_read_fault(ReadFault::ResetAfterByte(cut)),
        )
        .with_client(ClientScript::new(vec![query(&edge_inline())]))
}

/// SHUTDOWN while other clients still have scripted requests queued: the
/// seed decides how many of them get served before the flag goes up; the
/// rest drain unserved, exactly like the real accept loop.
pub fn shutdown_during_drain() -> Scenario {
    // Seed 13 pins the interesting ordering: client 0 gets one query served,
    // then the SHUTDOWN lands and clients 0 and 2 drain with work queued.
    Scenario::new("shutdown_during_drain", 13)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(ClientScript::new(vec![
            query(&tri()),
            query(&edge_inline()),
            "STATS".to_string(),
        ]))
        .with_client(ClientScript::new(vec!["SHUTDOWN".to_string()]))
        .with_client(ClientScript::new(vec![
            query(&edge_inline()),
            query(&tri()),
        ]))
}

/// SHUTDOWN racing an in-flight BATCH: one client submits a 3-query batch
/// (header + continuation lines consumed in one step, so the batch either
/// fully runs or fully drains — never half), another issues SHUTDOWN.
pub fn batch_inflight_vs_shutdown() -> Scenario {
    Scenario::new("batch_inflight_vs_shutdown", 0x5EED_000A)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(ClientScript::new(vec![
            "BATCH target=k5 n=3".to_string(),
            format!("pattern={}", tri()),
            format!("pattern={}", edge_inline()),
            format!("pattern={}", tri()),
            "STATS".to_string(),
        ]))
        .with_client(ClientScript::new(vec!["SHUTDOWN".to_string()]))
}

/// Malformed batches: an unparsable header (continuation lines still
/// drained, connection stays in sync), a batch with one bad continuation
/// line, then a clean STATS proving the connection survived both.
pub fn batch_malformed_header() -> Scenario {
    Scenario::new("batch_malformed_header", 0x5EED_000B)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(ClientScript::new(vec![
            "BATCH target=k5 n=banana".to_string(),
            "BATCH target=k5 n=2".to_string(),
            format!("pattern={}", tri()),
            "pattern=not;a;graph".to_string(),
            "STATS".to_string(),
        ]))
}

/// Two clients interleaving the same two patterns: cache hits depend on who
/// prepared first, which the seed pins — the `cache_hit` flags in the trace
/// are the regression assertion for registry/cache races.
pub fn cache_interleave() -> Scenario {
    Scenario::new("cache_interleave", 0x5EED_000C)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(ClientScript::new(vec![
            query(&tri()),
            query(&edge_inline()),
            query(&tri()),
        ]))
        .with_client(ClientScript::new(vec![
            query(&edge_inline()),
            query(&tri()),
            query(&edge_inline()),
            "STATS".to_string(),
        ]))
}

/// Five distinct patterns through a 2-entry cache, twice over: constant
/// eviction churn; the second pass's `cache_hit` flags pin the LRU policy.
pub fn cache_eviction_churn() -> Scenario {
    let patterns = vec![
        inline(&generators::directed_cycle(3, 0)),
        inline(&generators::directed_path(2, 0)),
        inline(&generators::directed_path(3, 0)),
        inline(&generators::directed_cycle(4, 0)),
        inline(&generators::directed_path(4, 0)),
    ];
    let mut requests: Vec<String> = Vec::new();
    for _ in 0..2 {
        for pattern in &patterns {
            requests.push(query(pattern));
        }
    }
    requests.push("STATS".to_string());
    Scenario::new("cache_eviction_churn", 0x5EED_000D)
        .with_config(ServiceConfig {
            cache_capacity: 2,
            ..pinned_config()
        })
        .with_target("k5", TargetKind::Clique(5))
        .with_client(ClientScript::new(requests))
}

/// The observability verbs under simulated time: a buffered QUERY warms the
/// cache and counters, EXPLAIN ANALYZE re-runs the same pattern with a trace
/// sink attached (sequential scheduler, so per-position observed counts and
/// span timestamps are seed-stable), then METRICS snapshots the registry.
/// Byte-identical replay proves every clock-derived timestamp in spans,
/// latencies and histogram summaries is virtual-clock deterministic.
pub fn metrics_and_analyze() -> Scenario {
    Scenario::new("metrics_and_analyze", 0x5EED_000E)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(ClientScript::new(vec![
            query(&tri()),
            format!("EXPLAIN ANALYZE target=k5 pattern={}", tri()),
            "METRICS".to_string(),
            "STATS".to_string(),
        ]))
}

/// The event-loop capacity story in miniature: 100+ connections where most
/// clients connect, send nothing and disconnect, while a handful interleave
/// routed (`sched=auto`) and default queries.  The seed pins which idle
/// EOFs land between which query steps — the trace is the regression
/// assertion that idle churn never perturbs served results.
pub fn idle_swarm_interleaved_queries() -> Scenario {
    let mut scenario = Scenario::new("idle_swarm_interleaved_queries", 0x5EED_000F)
        .with_target("k5", TargetKind::Clique(5));
    for i in 0..104 {
        scenario = if i % 26 == 0 {
            scenario.with_client(ClientScript::new(vec![
                format!("QUERY target=k5 sched=auto pattern={}", tri()),
                query(&edge_inline()),
            ]))
        } else {
            // An idle client: connects, sends nothing, EOF.
            scenario.with_client(ClientScript::new(Vec::<String>::new()))
        };
    }
    scenario.with_client(ClientScript::new(vec!["STATS".to_string()]))
}

/// The peer vanishes while the server holds a finished response: the
/// buffered QUERY runs to completion, then the very first response write
/// fails.  The connection dies with an I/O error, the completed run's
/// counters stay (the enumeration was never cancelled), and a healthy
/// client is unaffected.
pub fn disconnect_while_writable() -> Scenario {
    Scenario::new("disconnect_while_writable", 0x5EED_0010)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(
            ClientScript::new(vec![query(&tri()), "STATS".to_string()])
                .with_write_fault(WriteFault::disconnect_after_lines(0)),
        )
        .with_client(ClientScript::new(vec![
            query(&edge_inline()),
            "STATS".to_string(),
        ]))
}

/// Every scheduler-routing surface in one connection: routed (`sched=auto`
/// and absent), pinned sequential, pinned work-stealing, EXPLAIN's routing
/// object and EXPLAIN ANALYZE's — then STATS with the dispatch counters and
/// the cost-model correction gauge.  The pinned `RoutingConfig` in
/// [`pinned_config`] keeps the decisions host-independent.
pub fn routing_keys() -> Scenario {
    Scenario::new("routing_keys", 0x5EED_0011)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(ClientScript::new(vec![
            format!("QUERY target=k5 sched=auto pattern={}", tri()),
            query(&tri()),
            format!("QUERY target=k5 sched=seq pattern={}", tri()),
            format!("QUERY target=k5 sched=ws:2 pattern={}", tri()),
            format!("EXPLAIN target=k5 pattern={}", tri()),
            format!("EXPLAIN ANALYZE target=k5 pattern={}", tri()),
            "STATS".to_string(),
        ]))
}

/// PR 9's kernel story under simulated time: a dense target (K16, every
/// neighborhood over the bitmap threshold) routes its constrained positions
/// onto the bitmap intersection kernel.  EXPLAIN pins the per-position
/// kernel array, EXPLAIN ANALYZE pins the observed `kernel_usage` counts
/// (schedule-invariant, so seed-stable), and METRICS pins the cumulative
/// `engine.kernel.*` counters — byte-identical replay is the regression
/// assertion that kernel selection is deterministic.
pub fn dense_target_bitmap_kernels() -> Scenario {
    let square = inline(&generators::directed_cycle(4, 0));
    Scenario::new("dense_target_bitmap_kernels", 0x5EED_0012)
        .with_target("k16", TargetKind::Clique(16))
        .with_client(ClientScript::new(vec![
            format!("EXPLAIN target=k16 pattern={square}"),
            // Pinned sequential, run to completion: kernel counts are only
            // schedule-invariant on complete runs, and a limited parallel
            // run would leak interleaving into the observed counters.
            format!("QUERY target=k16 algo=ri-ds sched=seq pattern={square}"),
            format!("EXPLAIN ANALYZE target=k16 algo=ri-ds sched=seq pattern={square}"),
            "METRICS".to_string(),
            "STATS".to_string(),
        ]))
}

/// PR 10's coordination plane under simulated time: a 2-shard coordinator
/// serving buffered and streamed queries over a vertex-cut clique(5).  The
/// trace pins the merged responses' per-shard `"shards"` breakdowns, the
/// in-shard-order row frames of the scatter-gather stream, and the STATS
/// separation between `coordinator.*` counters and the per-shard blocks —
/// byte-identical replay proves the whole fan-out/merge path (thread-per-
/// shard bridges included) is virtual-clock deterministic.
pub fn sharded_scatter_gather() -> Scenario {
    Scenario::new("sharded_scatter_gather", 0x5EED_0013)
        .with_shards(2)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(ClientScript::new(vec![
            format!("QUERY target=k5 sched=seq pattern={}", tri()),
            stream_query(8, "sched=seq"),
            format!("EXPLAIN target=k5 pattern={}", tri()),
            "STATS".to_string(),
            "METRICS".to_string(),
        ]))
}

/// A client vanishing mid-stream *under sharding*: the coordinator's merged
/// stream loses its client between row frames, so it severs the per-shard
/// bridges (remaining shards cancel cooperatively) and counts the stream
/// under `coordinator.streams_cancelled` — which the healthy second client's
/// STATS pins in the trace.  Counts are normalized: how far each shard's
/// producer gets before observing the severed bridge is OS scheduling.
pub fn shard_disconnect_mid_stream() -> Scenario {
    Scenario::new("shard_disconnect_mid_stream", 0x5EED_0014)
        .with_shards(2)
        .with_target("k5", TargetKind::Clique(5))
        .with_client(
            ClientScript::new(vec![stream_query(8, "sched=seq")])
                .with_write_fault(WriteFault::disconnect_after_lines(3)),
        )
        .with_client(ClientScript::new(vec![
            query(&edge_inline()),
            "STATS".to_string(),
        ]))
        .with_normalized_counts()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_plentiful() {
        let corpus = corpus();
        assert!(corpus.len() >= 8, "the corpus must stay ≥8 scenarios");
        let mut names: Vec<&str> = corpus.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len(), "duplicate scenario name");
    }

    #[test]
    fn find_resolves_names() {
        assert!(find("disconnect_mid_stream").is_some());
        assert!(find("nope").is_none());
    }
}

//! `sge-sim`: deterministic simulation + chaos harness for the serving layer.
//!
//! The simulator drives the **real** serving stack — [`sge_service`]'s
//! [`Connection`](sge_service::Connection) loop, protocol parser, admission
//! gate, prepared cache and statistics — through scripted virtual clients
//! over in-memory transports, under a [`VirtualClock`](sge_util::VirtualClock).
//! Execution is single-threaded and every choice (which client steps next,
//! how much virtual time passes, where a fault lands) comes from a
//! [`SplitMix64`](sge_util::SplitMix64) stream, so **a `u64` seed is a
//! complete reproduction of a run**: same seed, same scenario → the same
//! event trace, byte for byte.
//!
//! The pieces:
//!
//! * [`scenario`] — the DSL: targets, client scripts, faults, pinned config.
//! * [`transport`] — `ScriptReader`/`FaultWriter`: in-memory transports with
//!   truncation, reset, slow-reader stalls and mid-response disconnects.
//! * [`sim`] — the seeded scheduler: [`sim::run_scenario`] executes one
//!   scenario, [`sim::check_determinism`] runs it twice and diffs traces.
//! * [`trace`] — the normalized event trace (the determinism witness).
//! * [`corpus`] — pinned regression scenarios (≥8, each with a pinned seed).
//! * [`swarm`] — randomized scenario generation + CI batch runners.
//!
//! The `sge-sim` binary fronts all of it: `--corpus`, `--scenario NAME`,
//! `--swarm N`, and `--seed N` to replay any swarm failure.

pub mod corpus;
pub mod scenario;
pub mod sim;
pub mod swarm;
pub mod trace;
pub mod transport;

pub use scenario::{ClientScript, Scenario, Target, TargetKind};
pub use sim::{check_determinism, run_scenario, run_scenario_with_seed, Divergence, SimReport};
pub use swarm::{random_scenario, run_corpus, run_random, SwarmFailure, SwarmOutcome};
pub use transport::{FaultWriter, ReadFault, ScriptReader, WriteFault};
